"""The storage-introspection advisor behind ``repro explain``.

Rules over a :class:`~repro.obs.heatmap.DatasetHeatmap` produce
concrete, counter-backed :class:`Recommendation`\\ s — each one cites
the registry counters (by name and value) that justify it, so a
recommendation can always be traced back to measured behaviour:

- **project-fewer-columns** — a column's files were opened and paid
  I/O, but the map function never deserialized a single value from it.
- **enable-skip-lists** — a ``plain``-layout column skipped more rows
  than it read; plain skips walk every value's bytes (Section 5.2),
  so a skip-list layout would turn them into block jumps.
- **switch-codec** — a ``cblock`` column whose skips never managed to
  hop a whole compressed block (decompression amplification), or a
  zlib column paying heavy inflation on mostly-skipped data.
- **re-run-balancer** — split directories are no longer co-located
  (CPP health), or reads crossed the network for a CPP dataset.

Layout detection prefers ground truth — the format byte in each column
file's header via :func:`column_layouts` — and falls back to inferring
from counters when only a recorded trace is available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.heatmap import DatasetHeatmap


@dataclass
class Recommendation:
    """One actionable finding, with the counters that prove it."""

    action: str        # stable machine-readable slug
    column: Optional[str]
    title: str
    rationale: str
    evidence: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        where = f" [{self.column}]" if self.column else ""
        cited = ", ".join(
            f"{name}={value:,}" for name, value in sorted(self.evidence.items())
        )
        return f"{self.action}{where}: {self.title}\n    {self.rationale}\n    evidence: {cited}"


def column_layouts(fs, dataset: str) -> Dict[str, str]:
    """``column -> layout`` read from column-file headers (ground truth).

    Looks at the first split directory that has each column; absent
    columns (declared-with-default) are omitted.
    """
    from repro.core import columnio
    from repro.core.cof import split_dirs_of
    from repro.util.buffers import ByteReader

    by_format = {v: k for k, v in columnio._FORMAT_NAMES.items()}
    layouts: Dict[str, str] = {}
    for split_dir in split_dirs_of(fs, dataset):
        for name in fs.listdir(split_dir):
            if name.startswith(".") or name in layouts:
                continue
            head = fs.open(f"{split_dir}/{name}").read(16)
            reader = ByteReader(head)
            if reader.read_bytes(len(columnio.MAGIC)) != columnio.MAGIC:
                continue
            layouts[name] = by_format.get(reader.read_byte(), "?")
    return layouts


def infer_layouts(heatmap: DatasetHeatmap) -> Dict[str, str]:
    """Best-effort ``column -> layout`` from counters alone (used for

    ``repro explain --job TRACE``, where the filesystem is gone).
    Columns that only ever read or skipped rows are indistinguishable
    between plain and skip-list until a jump or a cblock byte shows up;
    those default to ``plain`` — the conservative assumption for the
    enable-skip-lists rule.
    """
    layouts: Dict[str, str] = {}
    for column in heatmap.columns:
        total = heatmap.column_total(column)
        if total.cblock_bytes_compressed or total.cblock_bytes_skipped:
            layouts[column] = "cblock"
        elif total.skiplist_jumps or total.skiplist_jumped_records:
            layouts[column] = "skiplist"
        else:
            layouts[column] = "plain"
    return layouts


def advise(
    heatmap: DatasetHeatmap,
    layouts: Optional[Dict[str, str]] = None,
    codecs: Optional[Dict[str, str]] = None,
    colocated_fraction: Optional[float] = None,
) -> List[Recommendation]:
    """Run every rule; returns recommendations in a deterministic order."""
    if layouts is None:
        layouts = infer_layouts(heatmap)
    codecs = codecs or {}
    out: List[Recommendation] = []

    for column in heatmap.columns:
        total = heatmap.column_total(column)
        layout = layouts.get(column, "plain")

        if total.bytes_total > 0 and total.rows_read == 0:
            out.append(Recommendation(
                action="project-fewer-columns",
                column=column,
                title="drop this column from the projection",
                rationale=(
                    f"its files cost {total.bytes_total:,} bytes of I/O but"
                    " the map function never deserialized a value from it"
                ),
                evidence={
                    "hdfs.bytes.disk": total.bytes_disk,
                    "hdfs.bytes.net": total.bytes_net,
                    "column.rows.read": total.rows_read,
                    "column.rows.skipped": total.rows_skipped,
                },
            ))

        if (
            layout == "plain"
            and total.rows_skipped > total.rows_read
            and total.rows_skipped > 0
        ):
            out.append(Recommendation(
                action="enable-skip-lists",
                column=column,
                title="re-load this column with the skip-list layout",
                rationale=(
                    f"{total.rows_skipped:,} rows were skipped vs"
                    f" {total.rows_read:,} read, and plain-layout skips"
                    " byte-walk every value (no I/O savings); skip lists"
                    " would jump whole blocks"
                ),
                evidence={
                    "column.rows.read": total.rows_read,
                    "column.rows.skipped": total.rows_skipped,
                    "column.skiplist.jumps": total.skiplist_jumps,
                },
            ))

        if layout == "cblock" and total.rows_skipped > total.rows_read:
            if total.cblock_blocks_skipped == 0 and total.cblock_bytes_inflated:
                out.append(Recommendation(
                    action="switch-codec",
                    column=column,
                    title=(
                        "shrink this column's compression blocks (or use"
                        " skip lists)"
                    ),
                    rationale=(
                        "mostly-skipped rows, yet not one compressed block"
                        " was hopped whole — every block held at least one"
                        f" wanted value, inflating"
                        f" {total.cblock_bytes_inflated:,} raw bytes from"
                        f" {total.cblock_bytes_compressed:,} compressed"
                        " (decompression amplification)"
                    ),
                    evidence={
                        "column.cblock.blocks_skipped_compressed":
                            total.cblock_blocks_skipped,
                        "column.cblock.bytes.compressed":
                            total.cblock_bytes_compressed,
                        "column.cblock.bytes.inflated":
                            total.cblock_bytes_inflated,
                        "column.rows.skipped": total.rows_skipped,
                    },
                ))
            elif (
                codecs.get(column) == "zlib"
                and total.cblock_bytes_inflated
                > 2 * total.cblock_bytes_compressed
            ):
                out.append(Recommendation(
                    action="switch-codec",
                    column=column,
                    title="switch this column from zlib to lzo",
                    rationale=(
                        "zlib's decompression CPU is charged on every"
                        " touched block"
                        f" ({total.cblock_bytes_inflated:,} bytes inflated);"
                        " lzo trades a little compression ratio for much"
                        " cheaper inflation (Section 5.3)"
                    ),
                    evidence={
                        "column.cblock.bytes.compressed":
                            total.cblock_bytes_compressed,
                        "column.cblock.bytes.inflated":
                            total.cblock_bytes_inflated,
                    },
                ))

    net = heatmap.total("bytes_net")
    broken_colocation = (
        colocated_fraction is not None and colocated_fraction < 1.0
    )
    if broken_colocation or net > 0:
        evidence: Dict[str, float] = {"hdfs.bytes.net": net}
        if colocated_fraction is not None:
            evidence["colocation.split_dir_fraction"] = colocated_fraction
        rationale = []
        if broken_colocation:
            rationale.append(
                f"only {colocated_fraction:.0%} of split directories still"
                " have all their column files co-located"
            )
        if net > 0:
            rationale.append(
                f"{net:,} bytes were read over the network instead of"
                " from local disk"
            )
        out.append(Recommendation(
            action="re-run-balancer",
            column=None,
            title="restore column co-location (CPP) for this dataset",
            rationale="; ".join(rationale)
            + " — re-run the placement repair so every split directory's"
            " files share a node set",
            evidence=evidence,
        ))

    return out


#: Which operator's measured cost backs each rule's advice: projection
#: waste is paid by the raw scan, skip/codec waste by the cells the
#: settle stage actually decoded or hopped, locality by scan I/O.
_ACTION_OPERATOR = {
    "project-fewer-columns": "scan",
    "enable-skip-lists": "materialize",
    "switch-codec": "materialize",
    "re-run-balancer": "scan",
}


def annotate_with_profiles(
    recommendations: List[Recommendation], profiles: Dict[str, Dict[str, dict]]
) -> List[Recommendation]:
    """Cite measured per-operator cost on each recommendation.

    ``profiles`` is the ``{engine: {op: totals}}`` mapping from
    :func:`repro.obs.opprofile.operator_profiles`.  Each rule's
    evidence gains the measured simulated time and cell counts of the
    operator its advice targets (summed across engines), so ``repro
    explain --analyze`` recommendations are backed by the profiled
    scan, not only by heatmap counters.
    """
    merged: Dict[str, Dict[str, float]] = {}
    for engine in sorted(profiles):
        for op, totals in profiles[engine].items():
            agg = merged.setdefault(
                op, {"sim_time": 0.0, "cells_decoded": 0, "cells_skipped": 0}
            )
            agg["sim_time"] += totals.get("sim_time", 0.0)
            agg["cells_decoded"] += totals.get("cells_decoded", 0)
            agg["cells_skipped"] += totals.get("cells_skipped", 0)
    for recommendation in recommendations:
        op = _ACTION_OPERATOR.get(recommendation.action)
        totals = merged.get(op)
        if totals is None:
            continue
        recommendation.evidence[f"op.{op}.sim_time"] = round(
            totals["sim_time"], 9
        )
        recommendation.evidence[f"op.{op}.cells_decoded"] = int(
            totals["cells_decoded"]
        )
        recommendation.evidence[f"op.{op}.cells_skipped"] = int(
            totals["cells_skipped"]
        )
    return recommendations
