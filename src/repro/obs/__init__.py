"""repro.obs — tracing, metrics, and the per-job flight recorder.

The observability subsystem gives every run three instruments:

- a **metric registry** (:mod:`repro.obs.registry`): labeled counters,
  gauges and fixed-boundary histograms with snapshot/merge semantics;
- a **tracer** (:mod:`repro.obs.trace`): nested job → phase → task →
  op spans on both the wall clock and the simulated clock;
- a **flight recorder** (:mod:`repro.obs.recorder`): collects spans,
  registry snapshots, ``sim.Metrics`` and job ``Counters`` into one
  :class:`RunReport`, exportable as JSONL and renderable as ASCII.

Everything is zero-overhead by default: code paths hold the ambient
:data:`NULL_OBS` (no-op tracer/registry) until a recorder is activated::

    from repro.obs import FlightRecorder

    rec = FlightRecorder()
    with rec.activate():
        result = run_job(fs, job)          # instrumented automatically
    rec.report().write_jsonl("run.jsonl")  # `repro report run.jsonl`

See ``docs/observability.md`` for the span model, the metric naming
scheme, and the JSONL schema.
"""

from __future__ import annotations

from contextvars import ContextVar

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullRegistry,
    NULL_REGISTRY,
)
from repro.obs.trace import NullTracer, Span, Tracer, NULL_TRACER
from repro.obs.events import (
    Event,
    EventBus,
    JsonlEventSink,
    NullEventBus,
    NULL_BUS,
)
from repro.obs.recorder import (
    FlightRecorder,
    NULL_OBS,
    NULL_STREAM_PROBE,
    Observability,
    RunReport,
    StreamProbe,
)
from repro.obs.export import (
    chrome_trace,
    parse_prometheus_text,
    prometheus_text,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.heatmap import CellStats, DatasetHeatmap, load_sidecar, reconcile
from repro.obs.tsdb import (
    Series,
    TimeSeriesStore,
    TSDB_VERSION,
    reconcile_tsdb,
    tsdb_prometheus_text,
)
from repro.obs.slo import (
    SloConfig,
    SloStatus,
    burn_rate,
    evaluate_slo,
    evaluate_slos,
    render_slo_table,
)
from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    ClusterMonitor,
    burn_rate_rules,
    render_alert_timeline,
)
from repro.obs.advisor import Recommendation, advise, column_layouts, infer_layouts
from repro.obs.live import LiveMonitor
from repro.obs.opprofile import (
    NULL_PROFILER,
    NullOperatorProfiler,
    OperatorDiff,
    OperatorProfiler,
    OperatorStats,
    OPS,
    diff_operators,
    fallback_totals,
    kernel_call_totals,
    operator_profiles,
    reconcile_profiles,
    render_operators,
)
from repro.obs.analysis import (
    CriticalPath,
    RunDiff,
    SpanNode,
    build_tree,
    critical_path,
    detect_stragglers,
    diff_runs,
    io_breakdown,
    partition_skew,
    render_breakdown,
    render_stragglers,
    render_timeline,
    timeline,
)

#: the ambient observability; FlightRecorder.activate() swaps it in
_ACTIVE: ContextVar[Observability] = ContextVar("repro_obs", default=NULL_OBS)


def current_obs() -> Observability:
    """The active observability (the no-op :data:`NULL_OBS` by default).

    Task contexts, the job runner and the bench harness call this at
    construction time, so activating a :class:`FlightRecorder` is all it
    takes to instrument a run — no parameter plumbing.
    """
    return _ACTIVE.get()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "NullTracer",
    "Span",
    "Tracer",
    "NULL_TRACER",
    "Event",
    "EventBus",
    "JsonlEventSink",
    "NullEventBus",
    "NULL_BUS",
    "FlightRecorder",
    "NULL_OBS",
    "NULL_STREAM_PROBE",
    "Observability",
    "RunReport",
    "StreamProbe",
    "current_obs",
    "chrome_trace",
    "parse_prometheus_text",
    "prometheus_text",
    "validate_chrome_trace",
    "write_chrome_trace",
    "CellStats",
    "DatasetHeatmap",
    "load_sidecar",
    "reconcile",
    "Series",
    "TimeSeriesStore",
    "TSDB_VERSION",
    "reconcile_tsdb",
    "tsdb_prometheus_text",
    "SloConfig",
    "SloStatus",
    "burn_rate",
    "evaluate_slo",
    "evaluate_slos",
    "render_slo_table",
    "AlertEngine",
    "AlertRule",
    "ClusterMonitor",
    "burn_rate_rules",
    "render_alert_timeline",
    "Recommendation",
    "advise",
    "column_layouts",
    "infer_layouts",
    "LiveMonitor",
    "NULL_PROFILER",
    "NullOperatorProfiler",
    "OperatorDiff",
    "OperatorProfiler",
    "OperatorStats",
    "OPS",
    "diff_operators",
    "fallback_totals",
    "kernel_call_totals",
    "operator_profiles",
    "reconcile_profiles",
    "render_operators",
    "CriticalPath",
    "RunDiff",
    "SpanNode",
    "build_tree",
    "critical_path",
    "detect_stragglers",
    "diff_runs",
    "io_breakdown",
    "partition_skew",
    "render_breakdown",
    "render_stragglers",
    "render_timeline",
    "timeline",
]
