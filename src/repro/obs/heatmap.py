"""Per-split/per-column storage access heatmaps (``repro explain``).

The instrumented readers attribute every byte, seek, row touch,
skip-list jump and compressed-block event to labeled counters carrying
``file=<dataset>/s<N>/<column>``.  A :class:`DatasetHeatmap` folds one
run's registry snapshot into a grid of :class:`CellStats` keyed by
``(split_dir, column)`` — the storage-introspection view behind
``repro explain``: which columns were touched where, what skipping
actually saved, and how much decompression amplification CBLOCK paid.

Heatmaps accumulate across runs in a sidecar JSON file stored *inside
the dataset directory* of the simulated filesystem (``.heatmap`` — the
leading dot keeps it out of ``split_dirs_of``).  :func:`reconcile`
cross-checks the heatmap's totals EXACTLY (zero tolerance) against the
independent byte/seek probes and the run's ``sim.Metrics`` snapshots;
any drift means an attribution bug, and ``repro explain`` fails loudly.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

#: registry counter name -> CellStats field
_COUNTER_FIELDS = {
    "column.rows.read": "rows_read",
    "column.rows.skipped": "rows_skipped",
    "hdfs.bytes.disk": "bytes_disk",
    "hdfs.bytes.net": "bytes_net",
    "hdfs.bytes.requested": "bytes_requested",
    "hdfs.seeks": "seeks",
    "hdfs.fetches": "fetches",
    "column.skiplist.jumps": "skiplist_jumps",
    "column.skiplist.jumped_records": "skiplist_jumped_records",
    "column.skiplist.jumped_bytes": "skiplist_jumped_bytes",
    "column.cblock.blocks_skipped_compressed": "cblock_blocks_skipped",
    "column.cblock.bytes.compressed": "cblock_bytes_compressed",
    "column.cblock.bytes.inflated": "cblock_bytes_inflated",
    "column.cblock.bytes.skipped_compressed": "cblock_bytes_skipped",
}

_FIELDS = tuple(_COUNTER_FIELDS.values())

#: sidecar file name inside the dataset directory (dot-prefixed so
#: ``split_dirs_of`` and column listings never mistake it for data)
SIDECAR_FILE = ".heatmap"

#: density ramp for the ASCII grid, blank = untouched
_RAMP = " .:-=+*#@"


class CellStats:
    """Accumulated access statistics for one (split_dir, column) cell."""

    __slots__ = _FIELDS

    def __init__(self, **values) -> None:
        for name in _FIELDS:
            setattr(self, name, values.get(name, 0))

    def add(self, other: "CellStats") -> None:
        for name in _FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    @property
    def bytes_total(self) -> int:
        return self.bytes_disk + self.bytes_net

    @property
    def rows_touched(self) -> int:
        return self.rows_read + self.rows_skipped

    def to_dict(self) -> dict:
        return {
            name: getattr(self, name)
            for name in _FIELDS
            if getattr(self, name)
        }

    @classmethod
    def from_dict(cls, record: dict) -> "CellStats":
        return cls(**{k: v for k, v in record.items() if k in _FIELDS})

    def __repr__(self) -> str:
        return f"CellStats({self.to_dict()})"


class DatasetHeatmap:
    """Grid of :class:`CellStats` for one dataset's split directories."""

    def __init__(self, dataset: str) -> None:
        self.dataset = dataset.rstrip("/")
        self.cells: Dict[Tuple[str, str], CellStats] = {}
        #: number of runs folded in (sidecar merges accumulate this)
        self.runs = 0

    # -- construction --------------------------------------------------

    @classmethod
    def from_registry(cls, dataset: str, entries: List[dict]) -> "DatasetHeatmap":
        """Fold one registry snapshot (live or from a ``RunReport``).

        Only counters whose ``file`` label lies under ``dataset`` are
        attributed; everything else (other datasets, row-format files)
        is ignored.
        """
        heatmap = cls(dataset)
        prefix = heatmap.dataset + "/"
        for entry in entries:
            if entry.get("kind") != "counter":
                continue
            field = _COUNTER_FIELDS.get(entry.get("name", ""))
            if field is None:
                continue
            labels = entry.get("labels", {})
            path = labels.get("file")
            if not path or not path.startswith(prefix):
                continue
            column = labels.get("column")
            if column is None:
                continue
            rel = path[len(prefix):]
            split_dir = rel.rsplit("/", 1)[0] if "/" in rel else ""
            cell = heatmap.cell(split_dir, column)
            setattr(cell, field, getattr(cell, field) + entry["value"])
        heatmap.runs = 1
        return heatmap

    def cell(self, split_dir: str, column: str) -> CellStats:
        key = (split_dir, column)
        if key not in self.cells:
            self.cells[key] = CellStats()
        return self.cells[key]

    def merge(self, other: "DatasetHeatmap") -> None:
        for key, stats in other.cells.items():
            self.cell(*key).add(stats)
        self.runs += other.runs

    # -- aggregate views -----------------------------------------------

    @property
    def split_dirs(self) -> List[str]:
        return sorted({key[0] for key in self.cells})

    @property
    def columns(self) -> List[str]:
        """Data columns, in deterministic order (dot-files excluded)."""
        return sorted(
            {key[1] for key in self.cells if not key[1].startswith(".")}
        )

    def column_total(self, column: str) -> CellStats:
        total = CellStats()
        for (_, col), stats in self.cells.items():
            if col == column:
                total.add(stats)
        return total

    def total(self, field: str, data_only: bool = False) -> int:
        return sum(
            getattr(stats, field)
            for (_, col), stats in self.cells.items()
            if not (data_only and col.startswith("."))
        )

    # -- sidecar persistence -------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "dataset": self.dataset,
            "runs": self.runs,
            "cells": [
                {"split": split, "column": column, **stats.to_dict()}
                for (split, column), stats in sorted(self.cells.items())
            ],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "DatasetHeatmap":
        heatmap = cls(record.get("dataset", ""))
        heatmap.runs = record.get("runs", 0)
        for cell in record.get("cells", []):
            heatmap.cell(cell["split"], cell["column"]).add(
                CellStats.from_dict(cell)
            )
        return heatmap

    def sidecar_path(self) -> str:
        return f"{self.dataset}/{SIDECAR_FILE}"

    def save(self, fs, merge: bool = True) -> "DatasetHeatmap":
        """Write (optionally merge-accumulating) the sidecar stats file.

        With ``merge`` the existing sidecar's cells are folded in first,
        so repeated jobs against a dataset build up a long-run picture
        of its access pattern.  Returns the heatmap actually written.
        """
        out = self
        if merge:
            previous = load_sidecar(fs, self.dataset)
            if previous is not None:
                previous.merge(self)
                out = previous
        payload = json.dumps(out.to_dict(), sort_keys=True).encode("utf-8")
        path = out.sidecar_path()
        if fs.exists(path):
            # HDFS files are immutable: replace, don't append.
            fs.delete(path)
        fs.write_file(path, payload)
        return out

    # -- rendering ------------------------------------------------------

    def render(self, width: int = 10) -> str:
        """ASCII heat grid: one row per column, one cell per split dir.

        Glyph density encodes the fraction of the column's rows the
        reader *deserialized* in that split (reads, not skips); ``␣``
        means the file was never touched.
        """
        splits = self.split_dirs
        columns = self.columns
        if not splits or not columns:
            return "(no storage accesses recorded for this dataset)"
        name_w = max(len(c) for c in columns)
        cell_w = max(3, min(width, max(len(s) for s in splits)))
        header = " " * (name_w + 2) + " ".join(
            s[:cell_w].rjust(cell_w) for s in splits
        )
        lines = [header]
        for column in columns:
            glyphs = []
            for split in splits:
                stats = self.cells.get((split, column))
                if stats is None or not stats.rows_touched:
                    glyphs.append("·".rjust(cell_w))
                    continue
                frac = stats.rows_read / stats.rows_touched
                glyph = _RAMP[min(len(_RAMP) - 1,
                                  int(frac * (len(_RAMP) - 1) + 0.5))]
                if glyph == " ":
                    glyph = "."
                glyphs.append((glyph * 3).rjust(cell_w))
            total = self.column_total(column)
            lines.append(
                f"{column.ljust(name_w)}  " + " ".join(glyphs)
                + f"  read={total.rows_read:,} skip={total.rows_skipped:,}"
                + f" bytes={total.bytes_total:,}"
            )
        lines.append(
            "legend: glyph density = fraction of touched rows deserialized"
            " (· = file untouched)"
        )
        return "\n".join(lines)


def load_sidecar(fs, dataset: str) -> Optional[DatasetHeatmap]:
    """Load a dataset's accumulated ``.heatmap`` sidecar, if present."""
    path = f"{dataset.rstrip('/')}/{SIDECAR_FILE}"
    if not fs.exists(path):
        return None
    raw = fs.read_file(path)
    return DatasetHeatmap.from_dict(json.loads(raw.decode("utf-8")))


def reconcile(
    heatmap: DatasetHeatmap,
    report,
    scan_only: bool = False,
    check_lazy: bool = True,
) -> List[str]:
    """Cross-check the heatmap against the run's independent probes.

    Every comparison is EXACT — both sides count the same physical
    events through different code paths (stream probes vs ``Metrics``
    charging vs heatmap attribution), so any nonzero difference is an
    accounting bug, not noise.  Returns mismatch descriptions (empty
    when everything reconciles).

    With ``scan_only`` the run is known to have read nothing but this
    dataset, so heatmap byte/seek totals must also equal the aggregate
    ``sim.Metrics`` snapshots.
    """
    problems: List[str] = []

    def check(what: str, got: float, want: float) -> None:
        if got != want:
            problems.append(
                f"{what}: heatmap={got!r} probes={want!r}"
                f" (delta {got - want!r})"
            )

    # Per-column disk+net bytes vs the stream-probe aggregation the
    # report computes independently of the heatmap's grid logic.
    per_column = report.per_column_bytes()
    for column in sorted(
        {key[1] for key in heatmap.cells} | set(per_column)
    ):
        check(
            f"column {column!r} bytes",
            heatmap.column_total(column).bytes_total,
            per_column.get(column, 0),
        )

    # Totals vs raw probe counters (filtered to this dataset's files).
    prefix = heatmap.dataset + "/"
    for name, field in (
        ("hdfs.bytes.disk", "bytes_disk"),
        ("hdfs.bytes.net", "bytes_net"),
        ("hdfs.bytes.requested", "bytes_requested"),
        ("hdfs.seeks", "seeks"),
        ("hdfs.fetches", "fetches"),
    ):
        want = sum(
            entry["value"]
            for entry in report.registry
            if entry["kind"] == "counter"
            and entry["name"] == name
            and str(entry["labels"].get("file", "")).startswith(prefix)
        )
        check(f"total {name}", heatmap.total(field), want)

    # Row accounting vs the lazy-materialization counters: a lazy CIF
    # scan deserializes exactly one value per materialized cell.  Only
    # meaningful when the whole run was lazy reads of this dataset
    # (``check_lazy=False`` for arbitrary job traces, where eager scans
    # may coexist).
    materialized = report.counter_total("lazy.cells.materialized")
    if check_lazy and materialized:
        check(
            "rows read vs lazy cells materialized",
            heatmap.total("rows_read", data_only=True),
            materialized,
        )

    if scan_only:
        checks = [
            ("disk_bytes", "bytes_disk"),
            ("net_bytes", "bytes_net"),
            ("requested_bytes", "bytes_requested"),
        ]
        # ``Metrics.seeks`` models disk-arm movement and is charged only
        # when a fetch is served by a local replica; a seeking fetch
        # served remotely pays network latency instead of a disk seek.
        # The probe-side ``hdfs.seeks`` counts the logical stream seek
        # either way, so the two agree exactly only for all-local runs.
        if heatmap.total("bytes_net") == 0:
            checks.append(("seeks", "seeks"))
        for metrics_field, field in checks:
            check(
                f"total sim.Metrics {metrics_field}",
                heatmap.total(field),
                report.metrics_total(metrics_field),
            )
    return problems
