"""Operator-level query profiling: EXPLAIN ANALYZE for both engines.

A scan — scalar or vectorized — is logically the same operator chain:

    scan -> decode -> filter -> materialize -> aggregate

This module turns that chain into measured numbers.  An
:class:`OperatorProfiler` rides along on a ``TaskContext``
(``ctx.profiler``); instrumented code switches the *current operator*
at the chain's boundaries (:meth:`OperatorProfiler.switch`) and the
shared column readers attribute every decoded/skipped cell to whatever
operator is current.  Because both engines hit the identical
``ColumnReader`` counting sites — the same sites the access heatmap
already reconciles exactly — per-operator rows and cells agree
*exactly* across engines, which the differential suite asserts.

Simulated time is accrued per operator from the deltas of
``metrics.io_time + metrics.cpu_time`` at each switch; wall time from a
clock (the tracer's injectable clock, so fake-clock runs stay
byte-identical).  Batch-kernel and scalar-fallback invocations inside
:mod:`repro.serde.vecdecode` are routed here through a module sink
(:meth:`OperatorProfiler.install`), giving the ``vecdecode.fallback.*``
counters that make silent loss of the batched fast path visible.

On :meth:`OperatorProfiler.finish` the profile is published through the
ambient :class:`~repro.obs.recorder.Observability`:

- one ``kind="operator"`` span per operator (``op:scan`` ... —
  ``sim_duration`` carries the operator's simulated seconds, attrs
  carry rows/cells/batches/invocations/wall time), which the JSONL
  trace, Chrome exporter (per-operator lanes) and ``repro perf
  diff`` (``span op:*.sim_time`` entries) all pick up for free;
- one ``operator.profile`` event on the bus (folded into the ``.tsdb``
  sidecar for cluster runs);
- labeled registry counters (``op.rows.*``, ``op.cells.*``,
  ``op.invocations.*``, ``vecdecode.kernel.calls``,
  ``vecdecode.fallback.<method>``) that the Prometheus exporter
  serves without further wiring.

The report-side helpers (:func:`operator_profiles`,
:func:`render_operators`, :func:`diff_operators`) read those spans and
counters back out of a :class:`~repro.obs.recorder.RunReport` for
``repro perf operators`` / ``repro perf diff --operators`` /
``repro explain --analyze``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

#: The operator chain, in pipeline order.  Every profile reports all
#: five, zero-valued where an engine/mode has no work for a stage
#: (e.g. ``decode`` is empty under lazy materialization).
OPS = ("scan", "decode", "filter", "materialize", "aggregate")

#: Per-operator integer fields that must agree exactly across engines.
_RECONCILE_FIELDS = ("rows_in", "rows_out", "cells_decoded")


class _ZeroMetrics:
    """Stand-in metrics for a profiler built before its task context."""

    io_time = 0.0
    cpu_time = 0.0
    records = 0


_ZERO_METRICS = _ZeroMetrics()


class OperatorStats:
    """One operator's accumulated profile."""

    __slots__ = (
        "op", "rows_in", "rows_out", "cells_decoded", "cells_skipped",
        "batches", "batch_rows", "kernel_calls", "fallback_calls",
        "sim_time", "wall_time",
    )

    def __init__(self, op: str) -> None:
        self.op = op
        self.rows_in = 0
        self.rows_out = 0
        self.cells_decoded = 0
        self.cells_skipped = 0
        self.batches = 0
        self.batch_rows = 0
        self.kernel_calls = 0
        self.fallback_calls = 0
        self.sim_time = 0.0
        self.wall_time = 0.0

    @property
    def selectivity(self) -> float:
        """Effective selectivity: rows out per row in (1.0 when idle)."""
        return self.rows_out / self.rows_in if self.rows_in else 1.0

    @property
    def mean_batch_rows(self) -> float:
        return self.batch_rows / self.batches if self.batches else 0.0

    def as_dict(self) -> dict:
        out = {name: getattr(self, name) for name in self.__slots__}
        out["selectivity"] = self.selectivity
        out["mean_batch_rows"] = self.mean_batch_rows
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OperatorStats({self.as_dict()!r})"


class OperatorProfiler:
    """Accrues per-operator rows/cells/time for one scan or map task.

    ``engine`` is ``"scalar"`` or ``"vectorized"``; ``metrics`` is the
    task's ``sim.Metrics`` (simulated time is read as
    ``io_time + cpu_time`` deltas, scan rows as ``records`` deltas).
    ``clock`` defaults to :func:`time.perf_counter`; pass the tracer's
    clock for deterministic traces.
    """

    active = True

    def __init__(
        self,
        engine: str,
        metrics=None,
        meta: Optional[dict] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.engine = engine
        self.meta = dict(meta or {})
        self.stats: Dict[str, OperatorStats] = {
            op: OperatorStats(op) for op in OPS
        }
        #: kernel name -> batched-kernel invocation count
        self.kernel_counts: Dict[str, int] = {}
        #: (method, reader type) -> scalar-fallback delegation count
        self.fallback_counts: Dict[Tuple[str, str], int] = {}
        self._clock = clock
        self._current = "scan"
        self._wall_mark = clock()
        self._prev_sink = None
        self._installed = False
        self._finished = False
        self.bind(metrics if metrics is not None else _ZERO_METRICS)

    # -- lifecycle -----------------------------------------------------

    def bind(self, metrics) -> "OperatorProfiler":
        """Re-point sim-time accrual at a (new) task ``Metrics``.

        Resets the sim and record marks, so time and rows charged to
        the old metrics object before the call are not re-counted.
        Lets callers construct a profiler before the task context that
        owns the metrics exists.
        """
        self._metrics = metrics
        self._sim_mark = metrics.io_time + metrics.cpu_time
        self._records_mark = metrics.records
        return self

    def install(self) -> "OperatorProfiler":
        """Route vecdecode kernel/fallback notes here until finish."""
        from repro.serde import vecdecode

        self._prev_sink = vecdecode.profile_sink()
        vecdecode.set_profile_sink(self)
        self._installed = True
        return self

    def finish(self, obs=None, sim_time: Optional[float] = None):
        """Close out the profile and publish it through ``obs``.

        Derives the ``scan`` operator's rows from the ``records``
        metric delta (both engines count records at the reader), emits
        one ``kind="operator"`` span per operator plus an
        ``operator.profile`` event and labeled counters, and restores
        any previously-installed vecdecode sink.  Idempotent.
        """
        if self._finished:
            return self.stats
        self._finished = True
        self._accrue()
        if self._installed:
            from repro.serde import vecdecode

            vecdecode.set_profile_sink(self._prev_sink)
            self._installed = False
        scanned = self._metrics.records - self._records_mark
        scan = self.stats["scan"]
        scan.rows_in += scanned
        scan.rows_out += scanned
        if obs is not None and obs.enabled:
            self._publish(obs, sim_time)
        return self.stats

    # -- instrumentation hooks -----------------------------------------

    def switch(self, op: str) -> str:
        """Make ``op`` the current operator; returns the previous one.

        Time accrued since the last switch is charged to the operator
        that was current.  Callers bracketing a stage restore the
        returned value afterwards.
        """
        prev = self._current
        if op != prev:
            self._accrue()
            self._current = op
        return prev

    def add_rows(self, op: str, rows_in: int, rows_out: int) -> None:
        stats = self.stats[op]
        stats.rows_in += rows_in
        stats.rows_out += rows_out

    def on_cells(self, n: int) -> None:
        """``n`` cells were decoded under the current operator."""
        self.stats[self._current].cells_decoded += n

    def on_cells_skipped(self, n: int) -> None:
        """``n`` cells were skipped (never decoded)."""
        self.stats[self._current].cells_skipped += n

    def on_batch(self, rows: int) -> None:
        """One vector batch of ``rows`` rows was produced by the scan."""
        scan = self.stats["scan"]
        scan.batches += 1
        scan.batch_rows += rows

    def kernel(self, name: str) -> None:
        """A vecdecode batch kernel ran under the current operator."""
        self.stats[self._current].kernel_calls += 1
        self.kernel_counts[name] = self.kernel_counts.get(name, 0) + 1

    def fallback(self, reader, method: str) -> None:
        """A kernel delegated one value back to the scalar decode path.

        ``reader`` is the byte reader the kernel was inlining over; the
        owning column reader stamps its class name on it
        (``_vec_owner``) so the counter is labeled by reader type.
        """
        self.stats[self._current].fallback_calls += 1
        owner = getattr(reader, "_vec_owner", None) or type(reader).__name__
        key = (method, owner)
        self.fallback_counts[key] = self.fallback_counts.get(key, 0) + 1

    # -- internals -----------------------------------------------------

    def _accrue(self) -> None:
        now_wall = self._clock()
        now_sim = self._metrics.io_time + self._metrics.cpu_time
        stats = self.stats[self._current]
        stats.wall_time += now_wall - self._wall_mark
        stats.sim_time += now_sim - self._sim_mark
        self._wall_mark = now_wall
        self._sim_mark = now_sim

    def _publish(self, obs, sim_time: Optional[float]) -> None:
        registry = obs.registry
        event_ops = {}
        for op in OPS:
            stats = self.stats[op]
            obs.tracer.record_span(
                f"op:{op}",
                "operator",
                None,
                stats.sim_time,
                engine=self.engine,
                op=op,
                rows_in=stats.rows_in,
                rows_out=stats.rows_out,
                selectivity=round(stats.selectivity, 6),
                cells_decoded=stats.cells_decoded,
                cells_skipped=stats.cells_skipped,
                batches=stats.batches,
                batch_rows=stats.batch_rows,
                kernel_calls=stats.kernel_calls,
                fallback_calls=stats.fallback_calls,
                wall_time=stats.wall_time,
                **self.meta,
            )
            labels = {"engine": self.engine, "op": op}
            if stats.rows_in:
                registry.counter("op.rows.in", **labels).inc(stats.rows_in)
            if stats.rows_out:
                registry.counter("op.rows.out", **labels).inc(stats.rows_out)
            if stats.cells_decoded:
                registry.counter(
                    "op.cells.decoded", **labels
                ).inc(stats.cells_decoded)
            if stats.cells_skipped:
                registry.counter(
                    "op.cells.skipped", **labels
                ).inc(stats.cells_skipped)
            if stats.batches:
                registry.counter("op.batches", **labels).inc(stats.batches)
            if stats.kernel_calls:
                registry.counter(
                    "op.invocations.kernel", **labels
                ).inc(stats.kernel_calls)
            if stats.fallback_calls:
                registry.counter(
                    "op.invocations.fallback", **labels
                ).inc(stats.fallback_calls)
            event_ops[op] = {
                "rows_in": stats.rows_in,
                "rows_out": stats.rows_out,
                "cells_decoded": stats.cells_decoded,
                "cells_skipped": stats.cells_skipped,
                "sim_time": stats.sim_time,
            }
        for name, calls in self.kernel_counts.items():
            registry.counter(
                "vecdecode.kernel.calls", kernel=name, engine=self.engine
            ).inc(calls)
        for (method, owner), calls in self.fallback_counts.items():
            registry.counter(
                f"vecdecode.fallback.{method}", reader=owner,
                engine=self.engine,
            ).inc(calls)
        if sim_time is None:
            sim_time = self._metrics.io_time + self._metrics.cpu_time
        obs.emit(
            "operator.profile",
            sim_time=sim_time,
            engine=self.engine,
            ops=event_ops,
            **self.meta,
        )


class NullOperatorProfiler:
    """Shared no-op profiler: the default ``ctx.profiler``."""

    __slots__ = ()
    active = False
    engine = "none"

    def bind(self, metrics) -> "NullOperatorProfiler":
        return self

    def install(self) -> "NullOperatorProfiler":
        return self

    def finish(self, obs=None, sim_time=None):
        return {}

    def switch(self, op: str) -> str:
        return "scan"

    def add_rows(self, op, rows_in, rows_out) -> None:
        pass

    def on_cells(self, n) -> None:
        pass

    def on_cells_skipped(self, n) -> None:
        pass

    def on_batch(self, rows) -> None:
        pass

    def kernel(self, name) -> None:
        pass

    def fallback(self, reader, method) -> None:
        pass


NULL_PROFILER = NullOperatorProfiler()


def reconcile_profiles(scalar, vectorized) -> List[str]:
    """Cross-engine profile reconciliation; returns mismatch strings.

    Per operator, rows in/out (hence selectivity) and decoded cells
    must agree *exactly* — both engines count at the same
    ``ColumnReader`` sites and switch operators at logically identical
    boundaries.  Skipped cells must agree exactly in total (which
    operator observes a deferred skip legitimately differs between
    row-at-a-time and frame-at-a-time settling).  Times, batch counts
    and kernel invocations are engine-specific and excluded.

    Accepts ``{op: OperatorStats}`` dicts or profiler instances.
    """
    scalar = getattr(scalar, "stats", scalar)
    vectorized = getattr(vectorized, "stats", vectorized)
    mismatches: List[str] = []
    for op in OPS:
        a = scalar.get(op)
        b = vectorized.get(op)
        if a is None or b is None:
            if a is not b:
                mismatches.append(f"{op}: present in only one profile")
            continue
        for field in _RECONCILE_FIELDS:
            va = getattr(a, field)
            vb = getattr(b, field)
            if va != vb:
                mismatches.append(
                    f"{op}.{field}: scalar={va!r} vectorized={vb!r} "
                    f"(exact match required)"
                )
    skipped_a = sum(s.cells_skipped for s in scalar.values())
    skipped_b = sum(s.cells_skipped for s in vectorized.values())
    if skipped_a != skipped_b:
        mismatches.append(
            f"total cells_skipped: scalar={skipped_a!r} "
            f"vectorized={skipped_b!r} (exact match required)"
        )
    return mismatches


# -- report-side: reading profiles back out of a RunReport -------------

#: Additive span-attr fields aggregated by :func:`operator_profiles`.
_SUM_FIELDS = (
    "rows_in", "rows_out", "cells_decoded", "cells_skipped",
    "batches", "batch_rows", "kernel_calls", "fallback_calls",
    "wall_time",
)


def operator_profiles(report) -> Dict[str, Dict[str, dict]]:
    """``{engine: {op: totals}}`` from a report's operator spans.

    Sums every ``kind="operator"`` span per (engine, operator) — a
    multi-task run contributes one span set per task — and recomputes
    the derived ``selectivity`` / ``mean_batch_rows`` / ``profiles``
    (span count) fields from the sums.
    """
    out: Dict[str, Dict[str, dict]] = {}
    for span in report.spans:
        if span.get("kind") != "operator":
            continue
        attrs = span.get("attrs", {})
        engine = attrs.get("engine", "?")
        op = attrs.get("op") or span.get("name", "op:?")[3:]
        ops = out.setdefault(engine, {})
        totals = ops.setdefault(
            op,
            {field: 0 for field in _SUM_FIELDS} | {
                "op": op, "engine": engine, "sim_time": 0.0,
                "wall_time": 0.0, "profiles": 0,
            },
        )
        totals["profiles"] += 1
        totals["sim_time"] += span.get("sim_duration") or 0.0
        for field in _SUM_FIELDS:
            totals[field] += attrs.get(field, 0)
    for ops in out.values():
        for totals in ops.values():
            rows_in = totals["rows_in"]
            totals["selectivity"] = (
                totals["rows_out"] / rows_in if rows_in else 1.0
            )
            batches = totals["batches"]
            totals["mean_batch_rows"] = (
                totals["batch_rows"] / batches if batches else 0.0
            )
    return out


def kernel_call_totals(report) -> Dict[str, int]:
    """``{kernel name: batched invocations}`` from report counters."""
    out: Dict[str, int] = {}
    for entry in report.registry:
        if entry["kind"] != "counter":
            continue
        if entry["name"] != "vecdecode.kernel.calls":
            continue
        kernel = entry["labels"].get("kernel", "?")
        out[kernel] = out.get(kernel, 0) + int(entry["value"])
    return out


def fallback_totals(report) -> Dict[str, int]:
    """``{"method/ReaderType": delegations}`` from report counters."""
    out: Dict[str, int] = {}
    for entry in report.registry:
        if entry["kind"] != "counter":
            continue
        name = entry["name"]
        if not name.startswith("vecdecode.fallback."):
            continue
        method = name[len("vecdecode.fallback."):]
        reader = entry["labels"].get("reader", "?")
        key = f"{method}/{reader}"
        out[key] = out.get(key, 0) + int(entry["value"])
    return out


def render_operators(report, pal=None, width: int = 0) -> str:
    """ASCII operator tree for ``repro perf operators``.

    One chain per engine found in the trace, pipeline order, with
    rows in/out, selectivity, cells decoded/skipped, batch shape,
    kernel/fallback invocations and sim+wall time per operator.
    """
    from repro.util.term import PLAIN

    pal = pal if pal is not None else PLAIN
    profiles = operator_profiles(report)
    if not profiles:
        return "(no operator profiles in this trace)"
    sections: List[str] = []
    for engine in sorted(profiles):
        ops = profiles[engine]
        tasks = max((t["profiles"] for t in ops.values()), default=0)
        lines = [pal.bold(
            f"operator profile — engine={engine}"
            f" ({tasks} task{'s' if tasks != 1 else ''})"
        )]
        present = [op for op in OPS if op in ops]
        present += [op for op in sorted(ops) if op not in OPS]
        for depth, op in enumerate(present):
            totals = ops[op]
            indent = "  " * depth
            branch = "└ " if depth else ""
            parts = [
                f"rows {totals['rows_in']:,} → {totals['rows_out']:,}"
                f" ({totals['selectivity']:.1%})",
                f"cells {totals['cells_decoded']:,} dec"
                f" / {totals['cells_skipped']:,} skip",
            ]
            if totals["batches"]:
                parts.append(
                    f"batches {totals['batches']:,}"
                    f" (mean {totals['mean_batch_rows']:.1f} rows)"
                )
            if totals["kernel_calls"] or totals["fallback_calls"]:
                parts.append(
                    f"kernels {totals['kernel_calls']:,}"
                    f" / fallbacks {totals['fallback_calls']:,}"
                )
            parts.append(
                f"sim {totals['sim_time']:.6f}s"
                f" wall {totals['wall_time']:.4f}s"
            )
            lines.append(
                f"{indent}{branch}{pal.bold(op.ljust(11))} "
                + "  ".join(parts)
            )
        fallbacks = fallback_totals(report)
        if engine == "vectorized" and fallbacks:
            lines.append(
                "  fallbacks: " + ", ".join(
                    f"{key}={calls:,}"
                    for key, calls in sorted(fallbacks.items())
                )
            )
        sections.append("\n".join(lines))
    return "\n\n".join(sections)


class OperatorDiffEntry:
    """One per-operator delta between two profiled runs."""

    __slots__ = ("engine", "op", "field", "a", "b", "delta", "ratio")

    def __init__(self, engine, op, field, a, b):
        self.engine = engine
        self.op = op
        self.field = field
        self.a = a
        self.b = b
        self.delta = b - a
        self.ratio = (b / a) if a else (float("inf") if b else 1.0)


class OperatorDiff:
    """`diff_operators` result: deltas plus a blamed operator/kernel."""

    def __init__(self, entries, attribution, kernel_deltas,
                 has_profiles=True):
        self.entries = entries
        #: {engine: {"op", "sim_delta", "wall_delta", "kernel",
        #:  "kernel_delta"}} — the operator (and busiest kernel) a
        #: regression is attributed to, per engine; empty when no
        #: operator slowed down.
        self.attribution = attribution
        self.kernel_deltas = kernel_deltas
        self.has_profiles = has_profiles

    def render(self, pal=None) -> str:
        from repro.util.term import PLAIN

        pal = pal if pal is not None else PLAIN
        if not self.entries:
            if self.has_profiles:
                return "operator diff: no per-operator deltas beyond tolerance"
            return "(no operator profiles to diff)"
        lines = [pal.bold("operator diff (baseline → fresh)")]
        for entry in self.entries:
            if entry.field in ("sim_time", "wall_time"):
                rendered = (
                    f"{entry.a:.6f}s → {entry.b:.6f}s"
                    f" ({entry.delta:+.6f}s)"
                )
            else:
                rendered = f"{entry.a:,} → {entry.b:,} ({entry.delta:+,})"
            lines.append(
                f"  {entry.engine}/{entry.op}.{entry.field}: {rendered}"
            )
        for engine in sorted(self.attribution):
            blame = self.attribution[engine]
            line = (
                f"slowdown attributed to operator "
                f"{pal.bold(blame['op'])} ({engine}): "
                f"sim {blame['sim_delta']:+.6f}s, "
                f"wall {blame['wall_delta']:+.4f}s"
            )
            if blame.get("kernel"):
                line += (
                    f"; kernel {pal.bold(blame['kernel'])} "
                    f"calls {blame['kernel_delta']:+,}"
                )
            lines.append(pal.yellow(line))
        if not self.attribution:
            lines.append("no operator slowed down")
        return "\n".join(lines)


def diff_operators(baseline, fresh, rel_tol: float = 0.01) -> OperatorDiff:
    """Attribute a time delta between two runs to operators/kernels.

    Compares per-operator totals of two :class:`RunReport`-likes and
    names, per engine, the operator with the largest simulated-time
    growth (falling back to wall time when simulated costs are
    identical — the vectorized engine's whole point is moving wall
    time without moving simulated time), plus the kernel whose
    invocation count grew the most under that engine.
    """
    a_profiles = operator_profiles(baseline)
    b_profiles = operator_profiles(fresh)
    kernels_a = kernel_call_totals(baseline)
    kernels_b = kernel_call_totals(fresh)
    kernel_deltas = {
        name: kernels_b.get(name, 0) - kernels_a.get(name, 0)
        for name in sorted(set(kernels_a) | set(kernels_b))
    }
    entries: List[OperatorDiffEntry] = []
    attribution: Dict[str, dict] = {}
    for engine in sorted(set(a_profiles) | set(b_profiles)):
        a_ops = a_profiles.get(engine, {})
        b_ops = b_profiles.get(engine, {})
        worst = None
        for op in OPS:
            a = a_ops.get(op)
            b = b_ops.get(op)
            if a is None and b is None:
                continue
            blank = {f: 0 for f in _SUM_FIELDS} | {
                "sim_time": 0.0, "wall_time": 0.0,
            }
            a = a if a is not None else blank
            b = b if b is not None else blank
            for field in (
                "rows_in", "rows_out", "cells_decoded", "cells_skipped",
                "kernel_calls", "fallback_calls", "sim_time", "wall_time",
            ):
                va, vb = a[field], b[field]
                if isinstance(va, float) or isinstance(vb, float):
                    scale = max(abs(va), abs(vb), 1e-12)
                    changed = abs(vb - va) > rel_tol * scale
                else:
                    changed = va != vb
                if changed:
                    entries.append(
                        OperatorDiffEntry(engine, op, field, va, vb)
                    )
            sim_delta = b["sim_time"] - a["sim_time"]
            wall_delta = b["wall_time"] - a["wall_time"]
            sim_scale = max(abs(a["sim_time"]), abs(b["sim_time"]), 1e-12)
            score = (
                sim_delta if abs(sim_delta) > rel_tol * sim_scale
                else wall_delta
            )
            if score > 0 and (worst is None or score > worst[0]):
                worst = (score, op, sim_delta, wall_delta)
        if worst is not None:
            kernel, kernel_delta = None, 0
            for name, delta in kernel_deltas.items():
                if abs(delta) > abs(kernel_delta):
                    kernel, kernel_delta = name, delta
            attribution[engine] = {
                "op": worst[1],
                "sim_delta": worst[2],
                "wall_delta": worst[3],
                "kernel": kernel,
                "kernel_delta": kernel_delta,
            }
    return OperatorDiff(
        entries, attribution, kernel_deltas,
        has_profiles=bool(a_profiles or b_profiles),
    )
