"""Trace exporters: Chrome trace-event JSON and Prometheus text.

Both exporters work from a :class:`~repro.obs.recorder.RunReport`, so
they serve live runs (``recorder.report()``) and saved artifacts
(``RunReport.load("run.jsonl")``) identically — that is what lets
``repro export chrome run.jsonl.gz`` post-process a CI recording.

**Chrome trace** (:func:`chrome_trace`) emits the trace-event JSON
format that Perfetto and ``chrome://tracing`` load.  Wall-clock spans
(job/phase/scan) become B/E duration pairs on one "wall clock" process;
simulated-clock task spans are laid out on a second "simulated cluster"
process with one thread lane per ``(node, slot)`` (reduce tasks get a
lane per partition), so the scheduler's packing is visible at a glance.
Faults and bus events are instant (``"i"``) markers.  The event array
is globally sorted by timestamp with End-before-Begin tie-breaking, so
every lane's B/E nesting is balanced in file order — the invariant the
tests assert.

**Prometheus** (:func:`prometheus_text`) renders the metric registry in
the text exposition format: ``repro_``-prefixed names, ``_total``
suffix on counters, cumulative ``_bucket`` series for histograms.
:func:`parse_prometheus_text` is a small validating parser used by the
round-trip tests.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Tuple

_MICROS = 1_000_000.0

#: pid of the wall-clock span process in the Chrome trace
WALL_PID = 1
#: pid of the simulated-cluster process (one tid lane per node/slot)
SIM_PID = 2


def _span_depths(spans: List[dict]) -> Dict[int, int]:
    """Depth of each span in the parent tree (roots are depth 0)."""
    by_id = {span["id"]: span for span in spans}
    depths: Dict[int, int] = {}

    def depth_of(span_id: int) -> int:
        if span_id in depths:
            return depths[span_id]
        parent = by_id[span_id].get("parent")
        d = 0 if parent is None or parent not in by_id else depth_of(parent) + 1
        depths[span_id] = d
        return d

    for span in spans:
        depth_of(span["id"])
    return depths


def _sim_lane(span: dict) -> str:
    """The simulated-process thread lane a task span belongs on.

    Lanes must be sequential (no overlapping spans) for B/E pairs to
    balance: a scheduler slot runs one attempt at a time, and a reduce
    partition is one sequential task, so both qualify.
    """
    attrs = span.get("attrs", {})
    if span["name"] == "reduce_task" or "partition" in attrs:
        return f"reduce p{attrs.get('partition', '?')}"
    node = attrs.get("node")
    slot = attrs.get("slot")
    if node is not None:
        return f"node {node} slot {slot if slot is not None else 0}"
    return span.get("kind", "op")


def chrome_trace(report) -> dict:
    """Render a report as a Chrome trace-event JSON object.

    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` ready
    for ``json.dump``; load the file in Perfetto or chrome://tracing.
    """
    op_spans = [s for s in report.spans if s.get("kind") == "operator"]
    wall_spans = [
        s for s in report.spans
        if s.get("sim_start") is None and s.get("kind") != "operator"
    ]
    sim_spans = [s for s in report.spans if s.get("sim_start") is not None]
    depths = _span_depths(report.spans)
    t0 = min((s["wall_start"] for s in wall_spans), default=0.0)

    events: List[Tuple[float, int, int, dict]] = []

    def add(ts: float, phase: str, depth: int, record: dict) -> None:
        # Sort key: ts, then End before Begin/instant at equal ts, then
        # deeper Ends first / shallower Begins first — this keeps B/E
        # nesting balanced per lane in file order.
        if phase == "E":
            rank, tie = 0, -depth
        else:
            rank, tie = 1, depth
        record = {"ts": ts, "ph": phase, **record}
        events.append((ts, rank, tie, record))

    for span in wall_spans:
        args = dict(span.get("attrs", {}))
        args["span_id"] = span["id"]
        base = {
            "name": span["name"],
            "cat": span.get("kind", "op"),
            "pid": WALL_PID,
            "tid": 1,
            "args": args,
        }
        depth = depths.get(span["id"], 0)
        start = (span["wall_start"] - t0) * _MICROS
        end = (span["wall_end"] - t0) * _MICROS
        if end <= start:
            add(start, "i", depth, {**base, "s": "t"})
        else:
            add(start, "B", depth, base)
            add(end, "E", depth, {k: base[k] for k in ("name", "cat", "pid", "tid")})

    lanes: Dict[str, int] = {}
    for span in sim_spans:
        lane = _sim_lane(span)
        tid = lanes.setdefault(lane, len(lanes) + 1)
        args = dict(span.get("attrs", {}))
        args["span_id"] = span["id"]
        base = {
            "name": span["name"],
            "cat": span.get("kind", "op"),
            "pid": SIM_PID,
            "tid": tid,
            "args": args,
        }
        start = span["sim_start"] * _MICROS
        duration = span.get("sim_duration") or 0.0
        if duration <= 0:
            add(start, "i", 0, {**base, "s": "t"})
        else:
            add(start, "B", 0, base)
            add(
                start + duration * _MICROS, "E", 0,
                {k: base[k] for k in ("name", "cat", "pid", "tid")},
            )

    # Operator-profile spans have a simulated *duration* but no start
    # (they annotate time already inside a task span).  Give each
    # engine its own lane and lay its operators out back-to-back in
    # pipeline order, as "X" complete events, so relative operator
    # cost is visible at a glance without perturbing the task lanes.
    cursors: Dict[str, float] = {}
    for span in op_spans:
        attrs = span.get("attrs", {})
        lane = f"operators:{attrs.get('engine', '?')}"
        tid = lanes.setdefault(lane, len(lanes) + 1)
        duration = (span.get("sim_duration") or 0.0) * _MICROS
        start = cursors.get(lane, 0.0)
        cursors[lane] = start + duration
        args = dict(attrs)
        args["span_id"] = span["id"]
        add(start, "X", 0, {
            "name": span["name"],
            "cat": "operator",
            "pid": SIM_PID,
            "tid": tid,
            "dur": duration,
            "args": args,
        })

    for record in getattr(report, "events", []):
        sim = record.get("sim")
        ts = sim * _MICROS if sim is not None else (
            (record.get("wall", 0.0) - t0) * _MICROS
        )
        pid = SIM_PID if sim is not None else WALL_PID
        add(max(ts, 0.0), "i", 0, {
            "name": record.get("kind", "event"),
            "cat": "event",
            "pid": pid,
            "tid": 0,
            "s": "p",
            "args": dict(record.get("attrs", {})),
        })

    meta_events = [
        {"ph": "M", "pid": WALL_PID, "tid": 0, "ts": 0,
         "name": "process_name", "args": {"name": "wall clock"}},
        {"ph": "M", "pid": SIM_PID, "tid": 0, "ts": 0,
         "name": "process_name", "args": {"name": "simulated cluster"}},
    ]
    for lane, tid in sorted(lanes.items(), key=lambda kv: kv[1]):
        meta_events.append({
            "ph": "M", "pid": SIM_PID, "tid": tid, "ts": 0,
            "name": "thread_name", "args": {"name": lane},
        })

    events.sort(key=lambda item: item[:3])
    return {
        "traceEvents": meta_events + [record for *_key, record in events],
        "displayTimeUnit": "ms",
        "otherData": dict(report.meta) if report.meta else {},
    }


def write_chrome_trace(report, path: str) -> None:
    """Write :func:`chrome_trace` output as a Perfetto-loadable file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(report), handle, sort_keys=True)
        handle.write("\n")


# -- Prometheus text exposition ---------------------------------------

_NAME_PREFIX = "repro_"
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str, kind: str) -> str:
    base = _NAME_PREFIX + _INVALID_CHARS.sub("_", name)
    if kind == "counter" and not base.endswith("_total"):
        base += "_total"
    return base


def _prom_label_value(value: object) -> str:
    text = str(value)
    text = text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    return f'"{text}"'


def _prom_labels(labels: Dict[str, object], extra: Optional[dict] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f"{_INVALID_CHARS.sub('_', str(k))}={_prom_label_value(v)}"
        for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _format_value(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def prometheus_text(source) -> str:
    """Render a registry (or a report's frozen registry) as Prometheus

    text exposition.  ``source`` is a ``MetricRegistry``, a
    ``RunReport``, or a raw snapshot list.
    """
    if hasattr(source, "snapshot"):
        entries = source.snapshot()
    elif hasattr(source, "registry") and not isinstance(source, list):
        entries = source.registry
    else:
        entries = source

    # Group by (exposed name, kind) so each family gets one TYPE line.
    families: Dict[Tuple[str, str], List[dict]] = {}
    order: List[Tuple[str, str]] = []
    for entry in entries:
        key = (_prom_name(entry["name"], entry["kind"]), entry["kind"])
        if key not in families:
            families[key] = []
            order.append(key)
        families[key].append(entry)

    lines: List[str] = []
    for name, kind in sorted(order):
        lines.append(f"# TYPE {name} {kind}")
        for entry in families[(name, kind)]:
            labels = entry.get("labels", {})
            if kind == "histogram":
                cumulative = 0
                for boundary, count in zip(
                    entry["boundaries"], entry["counts"]
                ):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_prom_labels(labels, {'le': _format_value(float(boundary))})}"
                        f" {cumulative}"
                    )
                total = cumulative + entry["counts"][len(entry["boundaries"])]
                lines.append(
                    f"{name}_bucket{_prom_labels(labels, {'le': '+Inf'})}"
                    f" {total}"
                )
                lines.append(
                    f"{name}_sum{_prom_labels(labels)}"
                    f" {_format_value(entry['sum'])}"
                )
                lines.append(f"{name}_count{_prom_labels(labels)} {total}")
            else:
                lines.append(
                    f"{name}{_prom_labels(labels)}"
                    f" {_format_value(entry['value'])}"
                )
    return "\n".join(lines) + "\n" if lines else ""


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[-+0-9.eE]+|[-+]?Inf|NaN)\s*$"
)
_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


class PromSample:
    """One parsed exposition sample."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str], value: float):
        self.name = name
        self.labels = labels
        self.value = value

    def __repr__(self) -> str:
        return f"PromSample({self.name!r}, {self.labels!r}, {self.value!r})"


def parse_prometheus_text(text: str) -> Tuple[Dict[str, str], List[PromSample]]:
    """Parse (and validate) Prometheus text exposition.

    Returns ``(types, samples)`` where ``types`` maps family name to
    declared type.  Raises ``ValueError`` on malformed lines — the
    round-trip tests lean on this as a format validator.
    """
    types: Dict[str, str] = {}
    samples: List[PromSample] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        labels: Dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            pos = 0
            while pos < len(raw):
                lmatch = _LABEL_RE.match(raw, pos)
                if not lmatch:
                    raise ValueError(
                        f"line {lineno}: malformed labels: {raw!r}"
                    )
                labels[lmatch.group("key")] = (
                    lmatch.group("value")
                    .replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
                pos = lmatch.end()
                if pos < len(raw):
                    if raw[pos] != ",":
                        raise ValueError(
                            f"line {lineno}: malformed labels: {raw!r}"
                        )
                    pos += 1
        value_text = match.group("value")
        value = float(value_text)
        family = match.group("name")
        for suffix in ("_bucket", "_sum", "_count"):
            if family.endswith(suffix) and family[: -len(suffix)] in types:
                family = family[: -len(suffix)]
                break
        if family not in types:
            raise ValueError(
                f"line {lineno}: sample {family!r} has no TYPE declaration"
            )
        samples.append(PromSample(match.group("name"), labels, value))
    return types, samples


def validate_chrome_trace(trace: dict) -> List[str]:
    """Check trace-event invariants; returns a list of violations.

    Used by tests and ``repro export --check``: per-(pid, tid) lane,
    B/E events must balance like parentheses, and timestamps must be
    monotonically non-decreasing in file order.
    """
    problems: List[str] = []
    events = trace.get("traceEvents", [])
    stacks: Dict[Tuple[int, int], List[str]] = {}
    last_ts: Optional[float] = None
    for i, event in enumerate(events):
        phase = event.get("ph")
        if phase == "M":
            continue
        ts = event.get("ts")
        if ts is None:
            problems.append(f"event {i}: missing ts")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"event {i}: ts {ts} < previous {last_ts} (not monotonic)"
            )
        last_ts = ts
        lane = (event.get("pid"), event.get("tid"))
        if phase == "B":
            stacks.setdefault(lane, []).append(event.get("name", "?"))
        elif phase == "E":
            stack = stacks.setdefault(lane, [])
            if not stack:
                problems.append(
                    f"event {i}: E {event.get('name')!r} with empty stack"
                    f" on lane {lane}"
                )
            else:
                opened = stack.pop()
                if opened != event.get("name"):
                    problems.append(
                        f"event {i}: E {event.get('name')!r} closes"
                        f" B {opened!r} on lane {lane}"
                    )
    for lane, stack in stacks.items():
        if stack:
            problems.append(f"lane {lane}: unclosed spans {stack}")
    return problems
