"""Per-job flight recorder: spans + metrics + counters in one artifact.

An :class:`Observability` bundles the two instruments — a
:class:`~repro.obs.trace.Tracer` and a
:class:`~repro.obs.registry.MetricRegistry` — that instrumented code
reaches through ``ctx.obs``.  The default instance is :data:`NULL_OBS`,
whose parts are all no-ops, so instrumentation costs nothing until a
recorder is activated.

A :class:`FlightRecorder` is a *live* Observability that additionally
collects :class:`~repro.sim.metrics.Metrics` snapshots and
``mapreduce.Counters`` dumps as jobs/scans complete.  ``report()``
freezes everything into a :class:`RunReport`, which serializes to JSONL
(one self-describing record per line) and renders as ASCII tables.

JSONL schema (see ``docs/observability.md``):

- ``{"type": "meta", ...}`` — one header line
- ``{"type": "span", "id", "parent", "name", "kind", "wall_start",
  "wall_end", ["sim_start", "sim_duration", "sim_io", "sim_cpu",]
  ["attrs"]}``
- ``{"type": "counter"|"gauge", "name", "labels", "value"}``
- ``{"type": "histogram", "name", "labels", "boundaries", "counts",
  "sum", "count"}``
- ``{"type": "metrics", "label", <Metrics fields>}``
- ``{"type": "counters", "label", "values"}``
- ``{"type": "event", "seq", "kind", "wall", ["sim", "span", "attrs"]}``
  — one per event-bus emission, in emission order

Artifacts are written one flushed line at a time (and may be gzipped:
``run.jsonl.gz``); a run that crashes mid-write leaves a readable
prefix, and :meth:`RunReport.from_jsonl` tolerates the torn final line
with a warning instead of raising.
"""

from __future__ import annotations

import gzip as _gzip
import json
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.events import NULL_BUS, EventBus
from repro.obs.registry import (
    NULL_REGISTRY,
    MetricRegistry,
    NullRegistry,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

#: Metrics fields serialized into ``metrics`` records, in schema order.
_METRICS_FIELDS = (
    "disk_bytes", "net_bytes", "requested_bytes", "seeks",
    "io_time", "cpu_time", "records", "cells", "objects",
)

#: fetch-size histogram buckets: readahead-window-ish byte sizes
FETCH_BOUNDARIES = (
    1024, 4096, 12 * 1024, 32 * 1024, 128 * 1024, 512 * 1024, 4 * 1024 * 1024,
)


class StreamProbe:
    """Per-stream byte/seek attribution, bound to labeled counters.

    One probe is attached per opened :class:`HdfsInputStream` (labels
    identify the file — and for CIF, the column), so per-column bytes,
    seeks and readahead waste can be reconciled against the task's
    aggregate ``sim.Metrics``.
    """

    __slots__ = ("_disk", "_net", "_requested", "_seeks", "_fetches", "_sizes")

    def __init__(self, registry: MetricRegistry, labels: Dict[str, object]):
        self._disk = registry.counter("hdfs.bytes.disk", **labels)
        self._net = registry.counter("hdfs.bytes.net", **labels)
        self._requested = registry.counter("hdfs.bytes.requested", **labels)
        self._seeks = registry.counter("hdfs.seeks", **labels)
        self._fetches = registry.counter("hdfs.fetches", **labels)
        self._sizes = registry.histogram(
            "hdfs.fetch.bytes", FETCH_BOUNDARIES, **labels
        )

    def on_request(self, nbytes: int) -> None:
        """The reader asked for ``nbytes`` (pre-readahead)."""
        self._requested.inc(nbytes)

    def on_fetch(self, local_bytes: int, remote_bytes: int, seek: bool) -> None:
        """One readahead fetch hit disk/network for this many bytes."""
        if local_bytes:
            self._disk.inc(local_bytes)
        if remote_bytes:
            self._net.inc(remote_bytes)
        if seek:
            self._seeks.inc()
        self._fetches.inc()
        self._sizes.observe(local_bytes + remote_bytes)


class NullStreamProbe(StreamProbe):
    """Shared no-op probe installed on every stream by default."""

    __slots__ = ()

    def __init__(self) -> None:
        pass

    def on_request(self, nbytes: int) -> None:
        pass

    def on_fetch(self, local_bytes, remote_bytes, seek) -> None:
        pass


NULL_STREAM_PROBE = NullStreamProbe()


class Observability:
    """What instrumented code holds: tracer, registry and event bus."""

    __slots__ = ("tracer", "registry", "bus", "enabled")

    def __init__(
        self,
        tracer: Tracer,
        registry: MetricRegistry,
        enabled: bool = True,
        bus: Optional[EventBus] = None,
    ) -> None:
        self.tracer = tracer
        self.registry = registry
        self.bus = bus if bus is not None else NULL_BUS
        self.enabled = enabled

    def stream_probe(self, **labels) -> StreamProbe:
        """A byte-attribution probe for one stream (no-op when off)."""
        if not self.enabled:
            return NULL_STREAM_PROBE
        return StreamProbe(self.registry, labels)

    def emit(self, kind: str, /, sim_time: Optional[float] = None, **attrs):
        """Publish a structured event on the bus, correlated with the

        tracer's innermost open span.  A no-op (returning None) until a
        flight recorder is active.
        """
        if not self.enabled:
            return None
        return self.bus.emit(
            kind,
            sim_time=sim_time,
            span_id=self.tracer.current_span_id,
            **attrs,
        )

    # Collection hooks; only the FlightRecorder stores anything.

    def record_metrics(self, label: str, metrics) -> None:
        pass

    def record_counters(self, label: str, counters) -> None:
        pass


NULL_OBS = Observability(NULL_TRACER, NULL_REGISTRY, enabled=False)


class _Activation:
    """Context manager installing a recorder as the ambient obs."""

    __slots__ = ("_obs", "_token")

    def __init__(self, obs: Observability) -> None:
        self._obs = obs
        self._token = None

    def __enter__(self) -> Observability:
        from repro import obs as _obs_pkg

        self._token = _obs_pkg._ACTIVE.set(self._obs)
        return self._obs

    def __exit__(self, *exc) -> None:
        from repro import obs as _obs_pkg

        _obs_pkg._ACTIVE.reset(self._token)


class FlightRecorder(Observability):
    """A live recording: activate it, run work, then ``report()``.

    ``clock`` is injectable for determinism — pass a fake monotonic
    counter and two identical runs produce byte-identical JSONL (wall
    timestamps included), which the accounting-invariant tests assert.
    """

    __slots__ = ("meta", "metrics_log", "counters_log", "events_log")

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        meta: Optional[dict] = None,
    ) -> None:
        super().__init__(
            Tracer(clock=clock), MetricRegistry(), enabled=True,
            bus=EventBus(clock=clock),
        )
        self.meta = dict(meta or {})
        self.metrics_log: List[Tuple[str, dict]] = []
        self.counters_log: List[Tuple[str, Dict[str, int]]] = []
        #: every bus event, in emission order (the recorder subscribes
        #: to its own bus, like any other consumer)
        self.events_log: List = []
        self.bus.subscribe(self.events_log.append)

    def activate(self) -> _Activation:
        """``with recorder.activate(): ...`` — contexts created inside

        (TaskContext, JobRunner, harness.scan) pick this recorder up as
        their ambient observability.
        """
        return _Activation(self)

    def record_metrics(self, label: str, metrics) -> None:
        snap = {name: getattr(metrics, name) for name in _METRICS_FIELDS}
        extra = getattr(metrics, "extra", None)
        if extra:
            snap["extra"] = dict(sorted(extra.items()))
        self.metrics_log.append((label, snap))

    def record_counters(self, label: str, counters) -> None:
        self.counters_log.append(
            (label, dict(sorted(counters.as_dict().items())))
        )

    def report(self) -> "RunReport":
        return RunReport(
            meta=dict(self.meta),
            spans=[span.to_dict() for span in self.tracer.spans],
            metrics=[
                {"label": label, **snap} for label, snap in self.metrics_log
            ],
            counters=[
                {"label": label, "values": values}
                for label, values in self.counters_log
            ],
            registry=self.registry.snapshot(),
            events=[event.to_dict() for event in self.events_log],
        )


class RunReport:
    """The frozen artifact: everything one run's flight recorder saw."""

    def __init__(
        self,
        meta: dict,
        spans: List[dict],
        metrics: List[dict],
        counters: List[dict],
        registry: List[dict],
        events: Optional[List[dict]] = None,
        warnings: Optional[List[str]] = None,
    ) -> None:
        self.meta = meta
        self.spans = spans
        self.metrics = metrics
        self.counters = counters
        self.registry = registry
        self.events = events if events is not None else []
        #: loader warnings (e.g. a truncated final line from a crashed
        #: run); surfaced by ``repro report|perf|explain``
        self.warnings = warnings if warnings is not None else []

    # -- aggregate views ----------------------------------------------

    def counter_total(self, name: str, /, **labels) -> float:
        """Sum of every registry counter matching ``name`` + labels."""
        want = set((k, str(v)) for k, v in labels.items())
        return sum(
            entry["value"]
            for entry in self.registry
            if entry["kind"] == "counter"
            and entry["name"] == name
            and want <= set(entry["labels"].items())
        )

    def metrics_total(self, field: str) -> float:
        """Sum of one Metrics field across every recorded snapshot."""
        return sum(snap.get(field, 0) for snap in self.metrics)

    def per_column_bytes(self) -> Dict[str, int]:
        """``column -> disk+net bytes`` from the stream-probe counters."""
        out: Dict[str, int] = {}
        for entry in self.registry:
            if entry["kind"] != "counter":
                continue
            if entry["name"] not in ("hdfs.bytes.disk", "hdfs.bytes.net"):
                continue
            column = entry["labels"].get("column")
            if column is None:
                continue
            out[column] = out.get(column, 0) + entry["value"]
        return out

    def task_duration_stats(self) -> Dict[str, dict]:
        """Per-task-kind duration stats from the snapshot quantiles.

        Keyed by the ``kind`` label of the ``task.duration.seconds``
        histograms (``map``/``reduce``).  Quantile keys are absent for
        artifacts recorded before snapshots carried them.
        """
        out: Dict[str, dict] = {}
        for entry in self.registry:
            if entry["kind"] != "histogram":
                continue
            if entry["name"] != "task.duration.seconds":
                continue
            if not entry.get("count"):
                continue
            stats = {
                "count": entry["count"],
                "mean": entry["sum"] / entry["count"],
            }
            for key in ("min", "max", "p50", "p95", "p99"):
                if key in entry:
                    stats[key] = entry[key]
            out[entry["labels"].get("kind", "task")] = stats
        return out

    def summary(self) -> dict:
        """A structured (JSON-ready) digest for tooling.

        The machine-readable sibling of :meth:`render`; surfaced by
        ``repro report --json``.
        """
        by_kind: Dict[str, int] = {}
        sim_by_name: Dict[str, float] = {}
        for span in self.spans:
            kind = span.get("kind", "op")
            by_kind[kind] = by_kind.get(kind, 0) + 1
            sim = span.get("sim_duration")
            if sim:
                name = span["name"]
                sim_by_name[name] = sim_by_name.get(name, 0.0) + sim
        fetched = self.counter_total("hdfs.bytes.disk") + self.counter_total(
            "hdfs.bytes.net"
        )
        requested = self.counter_total("hdfs.bytes.requested")
        events_by_kind: Dict[str, int] = {}
        for event in self.events:
            kind = event.get("kind", "?")
            events_by_kind[kind] = events_by_kind.get(kind, 0) + 1
        return {
            "meta": dict(self.meta),
            "events": {
                "count": len(self.events),
                "by_kind": dict(sorted(events_by_kind.items())),
            },
            "warnings": list(self.warnings),
            "spans": {
                "count": len(self.spans),
                "by_kind": dict(sorted(by_kind.items())),
                "sim_time_by_name": {
                    name: sim_by_name[name] for name in sorted(sim_by_name)
                },
            },
            "metrics": {
                field: self.metrics_total(field) for field in _METRICS_FIELDS
            },
            "per_column_bytes": dict(sorted(self.per_column_bytes().items())),
            "readahead": {
                "requested_bytes": int(requested),
                "fetched_bytes": int(fetched),
                "waste_bytes": int(fetched - requested),
                "seeks": int(self.counter_total("hdfs.seeks")),
                "fetches": int(self.counter_total("hdfs.fetches")),
            },
            "task_durations": self.task_duration_stats(),
            "counters": [
                {"label": dump["label"], "values": dict(dump["values"])}
                for dump in self.counters
            ],
        }

    # -- serialization -------------------------------------------------

    def iter_jsonl(self):
        """Yield the artifact's lines (no trailing newlines), in order."""
        yield json.dumps({"type": "meta", **self.meta}, sort_keys=True)
        for span in self.spans:
            yield json.dumps({"type": "span", **span}, sort_keys=True)
        for event in self.events:
            yield json.dumps({"type": "event", **event}, sort_keys=True)
        for entry in self.registry:
            yield json.dumps({"type": entry["kind"], **{
                k: v for k, v in entry.items() if k != "kind"
            }}, sort_keys=True)
        for snap in self.metrics:
            yield json.dumps({"type": "metrics", **snap}, sort_keys=True)
        for dump in self.counters:
            yield json.dumps({"type": "counters", **dump}, sort_keys=True)

    def to_jsonl(self) -> str:
        return "\n".join(self.iter_jsonl()) + "\n"

    def write_jsonl(self, path: str, gzipped: Optional[bool] = None) -> None:
        """Write the artifact, one flushed line per record.

        Flushing per line means a crash mid-write loses at most the
        line in flight — readers tolerate that torn tail.  ``gzipped``
        forces gzip framing; by default a ``.gz`` suffix decides.
        """
        if gzipped is None:
            gzipped = path.endswith(".gz")
        opener = _gzip.open if gzipped else open
        with opener(path, "wt", encoding="utf-8") as handle:
            for line in self.iter_jsonl():
                handle.write(line + "\n")
                handle.flush()

    @classmethod
    def from_jsonl(cls, text: str) -> "RunReport":
        meta: dict = {}
        spans: List[dict] = []
        metrics: List[dict] = []
        counters: List[dict] = []
        registry: List[dict] = []
        events: List[dict] = []
        warnings: List[str] = []
        lines = text.splitlines()
        last_payload = next(
            (i for i in range(len(lines) - 1, -1, -1) if lines[i].strip()),
            None,
        )
        parsed = 0
        for lineno, line in enumerate(lines, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                if parsed and lineno - 1 == last_payload:
                    # A crashed run tore its final line mid-write; the
                    # prefix is still a valid recording.
                    warnings.append(
                        f"truncated final line (line {lineno}) dropped: {exc}"
                    )
                    break
                raise ValueError(
                    f"line {lineno} is not a flight-recorder record: {exc}"
                ) from exc
            try:
                kind = record.pop("type")
            except (KeyError, TypeError, AttributeError) as exc:
                raise ValueError(
                    f"line {lineno} is not a flight-recorder record: {exc}"
                ) from exc
            parsed += 1
            if kind == "meta":
                meta = record
            elif kind == "span":
                spans.append(record)
            elif kind == "event":
                events.append(record)
            elif kind in ("counter", "gauge", "histogram"):
                registry.append({"kind": kind, **record})
            elif kind == "metrics":
                metrics.append(record)
            elif kind == "counters":
                counters.append(record)
            else:
                raise ValueError(f"line {lineno}: unknown record type {kind!r}")
        return cls(
            meta, spans, metrics, counters, registry,
            events=events, warnings=warnings,
        )

    @classmethod
    def load(cls, path: str) -> "RunReport":
        """Load an artifact, accepting gzip framing transparently.

        Detection is by content (the two gzip magic bytes), not by file
        name, so ``run.jsonl.gz`` and a gzipped ``run.jsonl`` both load.
        """
        with open(path, "rb") as handle:
            head = handle.read(2)
        if head == b"\x1f\x8b":
            with _gzip.open(path, "rt", encoding="utf-8") as handle:
                return cls.from_jsonl(handle.read())
        with open(path, encoding="utf-8") as handle:
            return cls.from_jsonl(handle.read())

    # -- rendering -----------------------------------------------------

    def render(
        self,
        top: int = 12,
        width: int = 48,
        pal=None,
        quiet: bool = False,
    ) -> str:
        """ASCII flight-recorder readout: top spans, per-column bytes,

        recorded metrics and counters.  Uses the same terminal plotting
        helpers as the figure experiments.  ``pal`` is an optional
        :class:`repro.util.term.Palette`; ``quiet`` keeps only the
        header, warnings and counter sections.
        """
        from repro.bench.ascii_plot import bar_chart
        from repro.util.term import PLAIN

        pal = pal if pal is not None else PLAIN
        sections: List[str] = []
        if self.meta:
            sections.append(
                pal.bold("flight recorder: ")
                + ", ".join(f"{k}={v}" for k, v in sorted(self.meta.items()))
            )
        for warning in self.warnings:
            sections.append(pal.yellow(f"WARNING: {warning}"))
        if quiet:
            if self.counters:
                lines = ["Job counters"]
                for dump in self.counters:
                    lines.append(f"  {dump['label']}:")
                    for name, value in sorted(dump["values"].items()):
                        lines.append(f"    {name} = {value:,}")
                sections.append("\n".join(lines))
            if not sections:
                sections.append("(empty flight recording)")
            return "\n\n".join(sections)

        timed = [
            span for span in self.spans
            if span.get("sim_duration") or span["wall_end"] > span["wall_start"]
        ]

        def span_time(span: dict) -> float:
            sim = span.get("sim_duration")
            return sim if sim is not None else span["wall_end"] - span["wall_start"]

        timed.sort(key=span_time, reverse=True)
        if timed:
            bars = {}
            for span in timed[:top]:
                label = f"{span['name']}#{span['id']} ({span['kind']})"
                bars[label] = span_time(span)
            sections.append(bar_chart(
                bars,
                title=f"Top spans by time ({len(self.spans)} spans total)",
                width=width,
                unit=" s",
            ))

        columns = self.per_column_bytes()
        if columns:
            lines = ["Per-column bytes read (disk + net)"]
            col_width = max(len(c) for c in columns)
            for column in sorted(columns):
                lines.append(
                    f"  {column.ljust(col_width)}  {columns[column]:>12,}"
                )
            lines.append(
                f"  {'TOTAL'.ljust(col_width)}  {sum(columns.values()):>12,}"
            )
            sections.append("\n".join(lines))

        if self.metrics:
            lines = ["Recorded metrics snapshots"]
            for snap in self.metrics:
                lines.append(
                    f"  {snap['label']}: "
                    f"disk={snap.get('disk_bytes', 0):,}B "
                    f"net={snap.get('net_bytes', 0):,}B "
                    f"seeks={snap.get('seeks', 0)} "
                    f"io={snap.get('io_time', 0.0):.4f}s "
                    f"cpu={snap.get('cpu_time', 0.0):.4f}s"
                )
            sections.append("\n".join(lines))

        durations = self.task_duration_stats()
        if durations:
            lines = ["Task durations (simulated seconds)"]
            for kind in sorted(durations):
                stats = durations[kind]
                line = (
                    f"  {kind}: n={stats['count']} "
                    f"mean={stats['mean']:.6f}"
                )
                for key in ("p50", "p95", "p99", "max"):
                    if key in stats:
                        line += f" {key}={stats[key]:.6f}"
                lines.append(line)
            sections.append("\n".join(lines))

        if self.counters:
            lines = ["Job counters"]
            for dump in self.counters:
                lines.append(f"  {dump['label']}:")
                for name, value in sorted(dump["values"].items()):
                    lines.append(f"    {name} = {value:,}")
            sections.append("\n".join(lines))

        if self.events:
            by_kind: Dict[str, int] = {}
            for event in self.events:
                kind = event.get("kind", "?")
                by_kind[kind] = by_kind.get(kind, 0) + 1
            lines = [f"Events ({len(self.events)} total)"]
            for kind in sorted(by_kind):
                lines.append(f"  {kind} = {by_kind[kind]:,}")
            sections.append("\n".join(lines))

        waste = self.counter_total("hdfs.bytes.disk") + self.counter_total(
            "hdfs.bytes.net"
        ) - self.counter_total("hdfs.bytes.requested")
        if self.counter_total("hdfs.fetches"):
            sections.append(
                f"Readahead waste: {int(waste):,} bytes over "
                f"{int(self.counter_total('hdfs.fetches')):,} fetches, "
                f"{int(self.counter_total('hdfs.seeks')):,} seeks"
            )

        if not sections:
            sections.append("(empty flight recording)")
        return "\n\n".join(sections)
