"""The embedded time-series store behind continuous cluster monitoring.

Every observability surface before this module was per-run and
point-in-time: a flight recording is one job's story, ``repro top``
shows the current frame, the advisor reads one heatmap.  The
:class:`TimeSeriesStore` adds the missing axis — *metrics over time* —
so a cluster serving sustained traffic can answer "is the interactive
tenant burning its latency budget right now?" and feed the SLO/alerting
engine (:mod:`repro.obs.slo`, :mod:`repro.obs.alerts`) with continuous
signals.

Design rules, inherited from the rest of the simulator:

- **Driven by the simulated clock.**  Samples are folded into
  fixed-interval buckets keyed by ``floor(sim_time / step)``; wall time
  never appears.  Two seeded runs therefore produce *byte-identical*
  ``.tsdb`` sidecars, the same determinism contract the WAL keeps.
- **Three series kinds.**  ``counter`` buckets hold per-interval sums
  of increments, ``gauge`` buckets hold the last value written in the
  interval, and ``hist`` buckets hold the *exact* sample list observed
  in the interval.  Exact samples (affordable at simulation scale) are
  what let :func:`reconcile_tsdb` cross-check the folded per-tenant
  latency quantiles against :class:`~repro.cluster.report.ClusterReport`
  with **zero tolerance**, in the style of
  :func:`repro.obs.heatmap.reconcile`.
- **Step-down downsampling + retention.**  With ``retention=N`` fine
  buckets older than N steps are folded into coarse buckets of width
  ``downsample * step`` (counters sum, gauges keep the newest value,
  histograms merge their samples); ``coarse_retention`` bounds the
  coarse level the same way.  The defaults (0 = unbounded) keep
  everything, which a reconciling cluster run wants.
- **Merge-accumulating sidecar.**  ``save(path)`` folds any existing
  sidecar in first (like :meth:`DatasetHeatmap.save`), so successive
  runs accumulate; the file is gzip-framed JSONL written with
  ``mtime=0`` (byte-stable) and the loader tolerates a torn final line
  and even a torn gzip stream, like :meth:`ClusterWAL.load`.
"""

from __future__ import annotations

import gzip as _gzip
import json
import zlib
from typing import Dict, List, Optional, Tuple

#: bump when the sidecar schema changes incompatibly
TSDB_VERSION = 1

SERIES_KINDS = ("counter", "gauge", "hist")


def _label_key(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Series:
    """One named, labeled series: fine and coarse fixed-width buckets."""

    __slots__ = ("name", "kind", "labels", "fine", "coarse", "last_t")

    def __init__(self, name: str, kind: str, labels: Dict[str, object]):
        if kind not in SERIES_KINDS:
            raise ValueError(f"unknown series kind {kind!r}")
        self.name = name
        self.kind = kind
        self.labels = {str(k): str(v) for k, v in labels.items()}
        #: fine bucket -> sum (counter) | last value (gauge) | samples
        self.fine: Dict[int, object] = {}
        #: coarse bucket -> same shape, folded by retention
        self.coarse: Dict[int, object] = {}
        #: simulated time of the newest sample ever folded
        self.last_t: Optional[float] = None

    def observe(self, bucket: int, value: float, t: float) -> None:
        if self.last_t is None or t > self.last_t:
            self.last_t = t
        if self.kind == "counter":
            self.fine[bucket] = self.fine.get(bucket, 0.0) + float(value)
        elif self.kind == "gauge":
            self.fine[bucket] = float(value)
        else:
            self.fine.setdefault(bucket, []).append(float(value))

    def fold_coarse(self, bucket: int, value) -> None:
        """Fold one aged-out fine bucket into its coarse bucket."""
        if self.kind == "counter":
            self.coarse[bucket] = self.coarse.get(bucket, 0.0) + value
        elif self.kind == "gauge":
            self.coarse[bucket] = value  # callers fold oldest-first
        else:
            self.coarse.setdefault(bucket, []).extend(value)
            self.coarse[bucket].sort()

    def to_dict(self) -> dict:
        def dump(buckets: Dict[int, object]) -> list:
            return [
                [b, sorted(v) if isinstance(v, list) else v]
                for b, v in sorted(buckets.items())
            ]

        out = {
            "type": "series",
            "name": self.name,
            "kind": self.kind,
            "labels": self.labels,
            "fine": dump(self.fine),
        }
        if self.coarse:
            out["coarse"] = dump(self.coarse)
        if self.last_t is not None:
            out["last_t"] = self.last_t
        return out

    @classmethod
    def from_dict(cls, record: dict) -> "Series":
        series = cls(
            record["name"], record["kind"], dict(record.get("labels") or {})
        )
        for bucket, value in record.get("fine", []):
            series.fine[int(bucket)] = (
                list(value) if isinstance(value, list) else float(value)
            )
        for bucket, value in record.get("coarse", []):
            series.coarse[int(bucket)] = (
                list(value) if isinstance(value, list) else float(value)
            )
        series.last_t = record.get("last_t")
        return series


class TimeSeriesStore:
    """Fixed-interval series folded from bus events on the sim clock."""

    def __init__(
        self,
        step: float = 0.05,
        retention: int = 0,
        downsample: int = 8,
        coarse_retention: int = 0,
        meta: Optional[dict] = None,
    ) -> None:
        if step <= 0:
            raise ValueError("step must be > 0")
        if retention < 0 or coarse_retention < 0:
            raise ValueError("retention must be >= 0 (0 = unbounded)")
        if downsample < 1:
            raise ValueError("downsample must be >= 1")
        self.step = float(step)
        self.retention = int(retention)
        self.downsample = int(downsample)
        self.coarse_retention = int(coarse_retention)
        #: free-form header fields persisted in the sidecar meta line
        #: (the cluster monitor stores SLO declarations + rules here)
        self.meta: dict = dict(meta or {})
        #: alert lifecycle timeline, appended by the alert engine
        self.alerts: List[dict] = []
        #: final SLO statuses, set before save
        self.statuses: List[dict] = []
        #: sidecar runs folded together (save() accumulates)
        self.runs: int = 1
        #: loader warnings (torn tail), empty for in-memory stores
        self.warnings: List[str] = []
        self.watermark: float = 0.0
        self._series: Dict[Tuple[str, tuple], Series] = {}
        #: running-jobs gauge state folded from admission/finish events
        self._running_jobs: Dict[str, int] = {}

    # -- folding -------------------------------------------------------

    def bucket_of(self, t: float) -> int:
        # The epsilon keeps samples landing exactly on a boundary in
        # the bucket they open instead of one float ulp below it.
        return int((t + 1e-12) // self.step)

    def bucket_start(self, bucket: int, coarse: bool = False) -> float:
        width = self.step * (self.downsample if coarse else 1)
        return bucket * width

    def series(self, name: str, kind: str, /, **labels) -> Series:
        key = (name, _label_key(labels))
        found = self._series.get(key)
        if found is None:
            found = self._series[key] = Series(name, kind, labels)
        elif found.kind != kind:
            raise ValueError(
                f"series {name!r} already registered as {found.kind!r}"
            )
        return found

    def get(self, name: str, /, **labels) -> Optional[Series]:
        return self._series.get((name, _label_key(labels)))

    def __iter__(self):
        for key in sorted(self._series):
            yield self._series[key]

    def __len__(self) -> int:
        return len(self._series)

    def _advance(self, t: float) -> None:
        if t > self.watermark:
            self.watermark = t
            self._enforce_retention()

    def record_counter(
        self, name: str, t: float, value: float = 1.0, /, **labels
    ) -> None:
        self.series(name, "counter", **labels).observe(
            self.bucket_of(t), value, t
        )
        self._advance(t)

    def record_gauge(
        self, name: str, t: float, value: float, /, **labels
    ) -> None:
        self.series(name, "gauge", **labels).observe(
            self.bucket_of(t), value, t
        )
        self._advance(t)

    def record_hist(
        self, name: str, t: float, value: float, /, **labels
    ) -> None:
        self.series(name, "hist", **labels).observe(
            self.bucket_of(t), value, t
        )
        self._advance(t)

    def _enforce_retention(self) -> None:
        if not self.retention:
            return
        cutoff = self.bucket_of(self.watermark) - self.retention
        for series in self._series.values():
            stale = sorted(b for b in series.fine if b < cutoff)
            for bucket in stale:
                series.fold_coarse(
                    bucket // self.downsample, series.fine.pop(bucket)
                )
            if self.coarse_retention:
                coarse_cutoff = (
                    cutoff // self.downsample - self.coarse_retention
                )
                for bucket in [
                    b for b in series.coarse if b < coarse_cutoff
                ]:
                    del series.coarse[bucket]

    # -- the cluster event vocabulary ----------------------------------

    def fold_event(self, event) -> None:
        """Fold one cluster-manager bus event into the store.

        Unknown kinds still land in the ``cluster.events`` counter, so
        absence rules can watch any event family without a dedicated
        series.  Alert/SLO lifecycle events (which the engine emits back
        onto the same bus) are ignored — the store must never feed on
        its own output.
        """
        kind = event.kind
        if kind.startswith("alert.") or kind.startswith("slo."):
            return
        t = event.sim_time
        if t is None:
            return
        attrs = event.attrs
        self.record_counter("cluster.events", t, 1.0, kind=kind)
        tenant = attrs.get("tenant")
        if kind == "cluster.start":
            self.record_gauge("cluster.slots", t, attrs.get("slots", 0))
        elif kind == "cluster.finish":
            self.record_gauge(
                "cluster.utilization", t, attrs.get("utilization", 0.0)
            )
        elif kind == "job.submitted":
            self.record_counter("cluster.jobs.submitted", t, 1.0,
                                tenant=tenant)
        elif kind == "admission.accept":
            self.record_counter("cluster.jobs.accepted", t, 1.0,
                                tenant=tenant)
            self._bump_running(tenant, +1, t)
        elif kind == "admission.reject":
            self.record_counter("cluster.jobs.rejected", t, 1.0,
                                tenant=tenant)
        elif kind == "admission.shed":
            self.record_counter("cluster.jobs.shed", t, 1.0, tenant=tenant)
        elif kind == "job.finish":
            if attrs.get("outcome") == "completed":
                self.record_counter("cluster.jobs.completed", t, 1.0,
                                    tenant=tenant)
                self.record_hist("cluster.job.latency", t,
                                 attrs.get("latency", 0.0), tenant=tenant)
                if attrs.get("deadline_miss"):
                    self.record_counter("cluster.jobs.deadline_missed", t,
                                        1.0, tenant=tenant)
            elif attrs.get("outcome") == "failed":
                self.record_counter("cluster.jobs.failed", t, 1.0,
                                    tenant=tenant)
            if tenant is not None:
                self._bump_running(tenant, -1, t)
        elif kind == "task.preempted":
            self.record_counter("cluster.tasks.preempted", t, 1.0,
                                tenant=tenant)
        elif kind == "retry.backoff":
            self.record_counter("cluster.retries", t, 1.0)
        elif kind == "node.lost":
            self.record_counter("cluster.nodes.lost", t, 1.0)
        elif kind == "mapoutput.lost":
            self.record_counter("cluster.mapoutputs.lost", t, 1.0)
        elif kind == "task.speculative":
            self.record_counter("cluster.tasks.speculative", t, 1.0)
        elif kind == "operator.profile":
            engine = attrs.get("engine", "none")
            for op, stats in (attrs.get("ops") or {}).items():
                self.record_counter(
                    "cluster.operator.rows", t,
                    float(stats.get("rows_out", 0)), engine=engine, op=op,
                )
                cells = stats.get("cells_decoded", 0)
                if cells:
                    self.record_counter(
                        "cluster.operator.cells", t,
                        float(cells), engine=engine, op=op,
                    )
                self.record_hist(
                    "cluster.operator.sim_time", t,
                    float(stats.get("sim_time", 0.0)), engine=engine, op=op,
                )

    def _bump_running(self, tenant: Optional[str], delta: int, t: float):
        if tenant is None:
            return
        count = max(0, self._running_jobs.get(tenant, 0) + delta)
        self._running_jobs[tenant] = count
        self.record_gauge("cluster.jobs.running", t, count, tenant=tenant)

    def ingest_registry(self, source, t: float) -> int:
        """Fold a metric-registry snapshot as gauges at sim time ``t``.

        ``source`` is a :class:`~repro.obs.registry.MetricRegistry` or
        an already-snapshotted entry list; counter and gauge entries
        become ``registry.<name>`` gauge points (cumulative values on
        the run timeline).  Returns the number of entries folded.
        """
        entries = source.snapshot() if hasattr(source, "snapshot") else source
        folded = 0
        for entry in entries:
            if entry.get("kind") not in ("counter", "gauge"):
                continue
            self.record_gauge(
                f"registry.{entry['name']}", t, float(entry["value"]),
                **entry.get("labels", {}),
            )
            folded += 1
        return folded

    # -- queries -------------------------------------------------------

    def _bucket_range(
        self, since: Optional[float], until: Optional[float], coarse: bool
    ) -> Tuple[Optional[int], Optional[int]]:
        width = self.downsample if coarse else 1
        lo = None if since is None else self.bucket_of(since) // width
        hi = None if until is None else self.bucket_of(until) // width
        return lo, hi

    def _selected(self, buckets, since, until, coarse):
        lo, hi = self._bucket_range(since, until, coarse)
        for bucket in sorted(buckets):
            if lo is not None and bucket < lo:
                continue
            if hi is not None and bucket > hi:
                continue
            yield bucket, buckets[bucket]

    def counter_total(
        self,
        name: str,
        since: Optional[float] = None,
        until: Optional[float] = None,
        **labels,
    ) -> float:
        series = self.get(name, **labels)
        if series is None:
            return 0.0
        total = sum(
            v for _, v in self._selected(series.fine, since, until, False)
        )
        total += sum(
            v for _, v in self._selected(series.coarse, since, until, True)
        )
        return total

    def gauge_last(
        self,
        name: str,
        since: Optional[float] = None,
        until: Optional[float] = None,
        **labels,
    ) -> Optional[float]:
        series = self.get(name, **labels)
        if series is None:
            return None
        fine = list(self._selected(series.fine, since, until, False))
        if fine:
            return fine[-1][1]
        coarse = list(self._selected(series.coarse, since, until, True))
        if coarse:
            return coarse[-1][1]
        return None

    def samples(
        self,
        name: str,
        since: Optional[float] = None,
        until: Optional[float] = None,
        **labels,
    ) -> List[float]:
        series = self.get(name, **labels)
        if series is None:
            return []
        out: List[float] = []
        for _, values in self._selected(series.coarse, since, until, True):
            out.extend(values)
        for _, values in self._selected(series.fine, since, until, False):
            out.extend(values)
        return sorted(out)

    def points(
        self,
        name: str,
        since: Optional[float] = None,
        until: Optional[float] = None,
        **labels,
    ) -> List[Tuple[float, float]]:
        """Per-bucket ``(start_time, value)`` pairs, coarse then fine.

        Counters yield per-interval sums, gauges the interval's last
        value, histograms the interval's sample count.
        """
        series = self.get(name, **labels)
        if series is None:
            return []
        out: List[Tuple[float, float]] = []
        for bucket, value in self._selected(series.coarse, since, until, True):
            out.append((
                self.bucket_start(bucket, coarse=True),
                float(len(value)) if isinstance(value, list) else value,
            ))
        for bucket, value in self._selected(series.fine, since, until, False):
            out.append((
                self.bucket_start(bucket),
                float(len(value)) if isinstance(value, list) else value,
            ))
        return out

    # -- merging -------------------------------------------------------

    def merge(self, other: "TimeSeriesStore") -> None:
        """Fold ``other`` (a newer run) into this store, in place."""
        if abs(other.step - self.step) > 1e-12:
            raise ValueError(
                f"cannot merge step={other.step} into step={self.step}"
            )
        for series in other:
            mine = self.series(series.name, series.kind, **series.labels)
            for buckets, theirs in (
                (mine.fine, series.fine), (mine.coarse, series.coarse)
            ):
                for bucket, value in sorted(theirs.items()):
                    if series.kind == "counter":
                        buckets[bucket] = buckets.get(bucket, 0.0) + value
                    elif series.kind == "gauge":
                        buckets[bucket] = value
                    else:
                        merged = list(buckets.get(bucket, [])) + list(value)
                        buckets[bucket] = sorted(merged)
            if series.last_t is not None and (
                mine.last_t is None or series.last_t > mine.last_t
            ):
                mine.last_t = series.last_t
        self.alerts.extend(
            {**entry, "run": entry.get("run", self.runs)}
            for entry in other.alerts
        )
        self.statuses = list(other.statuses)
        self.meta.update(other.meta)
        self.watermark = max(self.watermark, other.watermark)
        self.runs += other.runs

    # -- the .tsdb sidecar ---------------------------------------------

    def to_lines(self) -> List[dict]:
        header = {
            "type": "meta",
            "format": "tsdb",
            "v": TSDB_VERSION,
            "step": self.step,
            "retention": self.retention,
            "downsample": self.downsample,
            "coarse_retention": self.coarse_retention,
            "runs": self.runs,
            "watermark": self.watermark,
            **self.meta,
        }
        lines = [header]
        lines.extend(series.to_dict() for series in self)
        for entry in self.alerts:
            lines.append({
                "type": "alert", "run": entry.get("run", 0), **entry,
            })
        for entry in self.statuses:
            lines.append({"type": "slo", **entry})
        return lines

    def save(self, path: str, merge: bool = True) -> "TimeSeriesStore":
        """Persist the sidecar, folding any existing file in first.

        Returns the store that was written (``self`` on a fresh path,
        the merged accumulation otherwise).  The gzip frame is written
        with ``mtime=0`` so identical runs produce identical bytes.
        """
        target = self
        if merge:
            try:
                previous, _ = TimeSeriesStore.load(path)
            except FileNotFoundError:
                previous = None
            except (OSError, ValueError):
                previous = None
            if previous is not None:
                previous.merge(self)
                target = previous
        text = "".join(
            json.dumps(line, sort_keys=True) + "\n"
            for line in target.to_lines()
        )
        blob = _gzip.compress(text.encode("utf-8"), 9, mtime=0)
        with open(path, "wb") as handle:
            handle.write(blob)
        return target

    @classmethod
    def load(cls, path: str) -> Tuple["TimeSeriesStore", List[str]]:
        """Read a sidecar; returns ``(store, warnings)``.

        Gzip framing is sniffed by magic bytes.  A torn gzip stream is
        salvaged to its readable prefix and a torn final line is
        dropped — both with warnings — exactly like the WAL loader; any
        earlier malformed line is a hard error.
        """
        with open(path, "rb") as handle:
            blob = handle.read()
        warnings: List[str] = []
        if blob[:2] == b"\x1f\x8b":
            try:
                text = _gzip.decompress(blob).decode("utf-8")
            except (EOFError, OSError, zlib.error) as exc:
                decompressor = zlib.decompressobj(31)
                try:
                    salvaged = decompressor.decompress(blob)
                except zlib.error:
                    raise ValueError(
                        f"{path}: unreadable gzip stream: {exc}"
                    ) from exc
                text = salvaged.decode("utf-8", errors="replace")
                warnings.append(
                    f"torn gzip stream salvaged to {len(salvaged)} byte(s)"
                )
        else:
            text = blob.decode("utf-8")
        lines = text.splitlines()
        last_payload = next(
            (i for i in range(len(lines) - 1, -1, -1) if lines[i].strip()),
            None,
        )
        records: List[dict] = []
        for lineno, line in enumerate(lines, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                if records and lineno - 1 == last_payload:
                    warnings.append(
                        f"torn final record (line {lineno}) dropped: {exc}"
                    )
                    break
                raise ValueError(
                    f"line {lineno} is not a tsdb record: {exc}"
                ) from exc
            if not isinstance(record, dict) or "type" not in record:
                raise ValueError(f"line {lineno} is not a tsdb record")
            records.append(record)
        if not records or records[0].get("type") != "meta":
            raise ValueError(f"{path}: missing tsdb meta header")
        header = records[0]
        if header.get("format") != "tsdb":
            raise ValueError(f"{path}: not a tsdb sidecar")
        if header.get("v") != TSDB_VERSION:
            raise ValueError(
                f"{path}: tsdb version {header.get('v')!r} "
                f"(this build reads {TSDB_VERSION})"
            )
        store = cls(
            step=float(header.get("step", 0.05)),
            retention=int(header.get("retention", 0)),
            downsample=int(header.get("downsample", 8)),
            coarse_retention=int(header.get("coarse_retention", 0)),
            meta={
                k: v for k, v in header.items()
                if k not in (
                    "type", "format", "v", "step", "retention",
                    "downsample", "coarse_retention", "runs", "watermark",
                )
            },
        )
        store.runs = int(header.get("runs", 1))
        store.watermark = float(header.get("watermark", 0.0))
        for record in records[1:]:
            if record["type"] == "series":
                series = Series.from_dict(record)
                store._series[(series.name, _label_key(series.labels))] = (
                    series
                )
            elif record["type"] == "alert":
                store.alerts.append(
                    {k: v for k, v in record.items() if k != "type"}
                )
            elif record["type"] == "slo":
                store.statuses.append(
                    {k: v for k, v in record.items() if k != "type"}
                )
        store.warnings = list(warnings)
        return store, warnings


# -- exact reconciliation (heatmap style) ----------------------------------


def reconcile_tsdb(store: TimeSeriesStore, report) -> List[str]:
    """Cross-check the folded series against a ClusterReport, exactly.

    Zero tolerance, like :func:`repro.obs.heatmap.reconcile`: the tsdb
    watched the same event stream the report was built from, so every
    per-tenant count and every nearest-rank latency quantile must agree
    bit-for-bit.  Returns a list of mismatch descriptions (empty =
    reconciled).
    """
    from repro.cluster.report import percentile

    problems: List[str] = []

    def check(what: str, got, want) -> None:
        if got != want:
            problems.append(f"{what}: tsdb has {got!r}, report has {want!r}")

    for tenant, summary in report.tenant_summaries().items():
        base = f"tenant {tenant}"
        check(
            f"{base} completed",
            int(store.counter_total("cluster.jobs.completed", tenant=tenant)),
            summary.completed,
        )
        check(
            f"{base} rejected",
            int(store.counter_total("cluster.jobs.rejected", tenant=tenant)),
            summary.rejected,
        )
        check(
            f"{base} shed",
            int(store.counter_total("cluster.jobs.shed", tenant=tenant)),
            summary.shed,
        )
        check(
            f"{base} failed",
            int(store.counter_total("cluster.jobs.failed", tenant=tenant)),
            summary.failed,
        )
        check(
            f"{base} deadline misses",
            int(store.counter_total(
                "cluster.jobs.deadline_missed", tenant=tenant
            )),
            summary.deadline_misses,
        )
        latencies = store.samples("cluster.job.latency", tenant=tenant)
        check(f"{base} latency samples", len(latencies), summary.completed)
        for label, p in (("p50", 50), ("p95", 95), ("p99", 99)):
            check(
                f"{base} latency {label}",
                percentile(latencies, p),
                getattr(summary, label),
            )
    total_completed = int(store.counter_total("cluster.jobs.completed"))
    if total_completed:
        check(
            "total completed (unlabeled)", total_completed,
            len(report.completed),
        )
    return problems


# -- Prometheus export ------------------------------------------------------


def tsdb_prometheus_text(
    store: TimeSeriesStore,
    since: Optional[float] = None,
    until: Optional[float] = None,
) -> str:
    """Render a (time-range of a) store as Prometheus text exposition.

    Counters expose their range totals, gauges the last value in range,
    histogram series a summary family (``_count``/``_sum`` plus
    p50/p95/p99 quantile samples over the pooled range).
    """
    from repro.obs.export import _format_value, _prom_labels, _prom_name

    from repro.cluster.report import percentile

    grouped: Dict[Tuple[str, str], List[Series]] = {}
    for series in store:
        grouped.setdefault((series.name, series.kind), []).append(series)

    lines: List[str] = []
    for (name, kind) in sorted(grouped):
        if kind == "hist":
            exposed = _prom_name(name, "gauge")
            lines.append(f"# TYPE {exposed} summary")
        else:
            exposed = _prom_name(name, kind)
            lines.append(f"# TYPE {exposed} {kind}")
        for series in grouped[(name, kind)]:
            labels = series.labels
            if kind == "counter":
                value = store.counter_total(
                    name, since=since, until=until, **labels
                )
                lines.append(
                    f"{exposed}{_prom_labels(labels)} {_format_value(value)}"
                )
            elif kind == "gauge":
                value = store.gauge_last(
                    name, since=since, until=until, **labels
                )
                if value is None:
                    continue
                lines.append(
                    f"{exposed}{_prom_labels(labels)} {_format_value(value)}"
                )
            else:
                sample = store.samples(
                    name, since=since, until=until, **labels
                )
                for quantile, p in (("0.5", 50), ("0.95", 95), ("0.99", 99)):
                    lines.append(
                        f"{exposed}"
                        f"{_prom_labels(labels, {'quantile': quantile})}"
                        f" {_format_value(percentile(sample, p))}"
                    )
                lines.append(
                    f"{exposed}_sum{_prom_labels(labels)}"
                    f" {_format_value(float(sum(sample)))}"
                )
                lines.append(
                    f"{exposed}_count{_prom_labels(labels)} {len(sample)}"
                )
    return "\n".join(lines) + "\n" if lines else ""
