"""The alert-rule engine: thresholds, absence, multi-window burn rate.

Rules are declarative and JSON-serializable (they ride in the traffic
profile next to the SLO declarations) and the engine is evaluated on
the **simulated clock**: every time the time-series store's watermark
crosses an evaluation boundary the engine re-checks every rule, walks
each alert's ``inactive → pending → firing → resolved`` lifecycle, and
emits ``alert.pending`` / ``alert.firing`` / ``alert.resolved`` events
back onto the event bus — so the live monitor, the flight recording and
the ``.tsdb`` sidecar's alert timeline all see the same deterministic
sequence.

Three rule kinds:

- ``static`` — reduce one series over a lookback window (``sum``,
  ``last``, ``count`` or ``max``) and compare against a threshold.
- ``absence`` — fire when a series has produced **no** sample for
  ``window`` simulated seconds (a dead tenant, a stuck queue).
- ``burn_rate`` — the Google-SRE multi-window form: fire when an SLO's
  error-budget burn rate exceeds ``factor`` over BOTH a long and a
  short window.  The long window proves the burn is sustained, the
  short window proves it is still happening (and lets the alert
  resolve quickly once the burn stops).

``for_seconds`` arms a pending period: the condition must hold that
long (simulated) before the alert escalates from pending to firing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.events import EventBus
from repro.obs.slo import (
    SloConfig,
    burn_rate,
    evaluate_slo,
    evaluate_slos,
)
from repro.obs.tsdb import TimeSeriesStore

RULE_KINDS = ("static", "absence", "burn_rate")
_REDUCERS = ("sum", "last", "count", "max")
_OPS = (">", ">=", "<", "<=")


@dataclass(frozen=True)
class AlertRule:
    """One declarative alerting rule (see module docstring)."""

    name: str
    kind: str                       # static | absence | burn_rate
    # static + absence:
    series: str = ""
    labels: Dict[str, str] = field(default_factory=dict)
    window: float = 0.25            # lookback, simulated seconds
    # static only:
    reduce: str = "sum"
    op: str = ">"
    threshold: float = 0.0
    # burn_rate only:
    slo: str = ""                   # name of the SLO it watches
    factor: float = 2.0             # burn-rate threshold
    short_window: float = 0.0       # 0 = window / 12
    # lifecycle:
    for_seconds: float = 0.0        # pending dwell before firing

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("alert rule needs a name")
        if self.kind not in RULE_KINDS:
            raise ValueError(
                f"rule {self.name!r}: unknown kind {self.kind!r} "
                f"(known: {', '.join(RULE_KINDS)})"
            )
        if self.window <= 0:
            raise ValueError(f"rule {self.name!r}: window must be > 0")
        if self.kind in ("static", "absence") and not self.series:
            raise ValueError(f"rule {self.name!r}: needs a series")
        if self.kind == "static":
            if self.reduce not in _REDUCERS:
                raise ValueError(
                    f"rule {self.name!r}: unknown reduce {self.reduce!r}"
                )
            if self.op not in _OPS:
                raise ValueError(
                    f"rule {self.name!r}: unknown op {self.op!r}"
                )
        if self.kind == "burn_rate":
            if not self.slo:
                raise ValueError(f"rule {self.name!r}: needs an slo")
            if self.factor <= 0:
                raise ValueError(f"rule {self.name!r}: factor must be > 0")
        if self.for_seconds < 0:
            raise ValueError(f"rule {self.name!r}: for_seconds must be >= 0")

    def to_dict(self) -> dict:
        out = {"name": self.name, "kind": self.kind, "window": self.window}
        if self.kind in ("static", "absence"):
            out["series"] = self.series
            if self.labels:
                out["labels"] = dict(self.labels)
        if self.kind == "static":
            out["reduce"] = self.reduce
            out["op"] = self.op
            out["threshold"] = self.threshold
        if self.kind == "burn_rate":
            out["slo"] = self.slo
            out["factor"] = self.factor
            if self.short_window:
                out["short_window"] = self.short_window
        if self.for_seconds:
            out["for_seconds"] = self.for_seconds
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "AlertRule":
        return cls(
            name=data["name"],
            kind=data["kind"],
            series=data.get("series", ""),
            labels={
                str(k): str(v)
                for k, v in (data.get("labels") or {}).items()
            },
            window=float(data.get("window", 0.25)),
            reduce=data.get("reduce", "sum"),
            op=data.get("op", ">"),
            threshold=float(data.get("threshold", 0.0)),
            slo=data.get("slo", ""),
            factor=float(data.get("factor", 2.0)),
            short_window=float(data.get("short_window", 0.0)),
            for_seconds=float(data.get("for_seconds", 0.0)),
        )


def burn_rate_rules(slo: SloConfig, step: float = 0.05) -> List[AlertRule]:
    """The default multi-window burn-rate pair for one SLO.

    A *page*-severity fast-burn rule (high factor, short windows — the
    budget is disappearing now) and a *ticket*-severity slow-burn rule
    (low factor, long windows — a sustained leak).  Windows are floored
    at a few store steps so they stay meaningful at simulation scale.
    """
    fast_long = max(4 * step, slo.window / 8)
    slow_long = max(8 * step, slo.window / 2)
    return [
        AlertRule(
            name=f"{slo.name}-fast-burn", kind="burn_rate", slo=slo.name,
            factor=8.0, window=fast_long,
            short_window=max(2 * step, fast_long / 4),
        ),
        AlertRule(
            name=f"{slo.name}-slow-burn", kind="burn_rate", slo=slo.name,
            factor=2.0, window=slow_long,
            short_window=max(2 * step, slow_long / 4),
            for_seconds=2 * step,
        ),
    ]


class AlertState:
    """One rule's live lifecycle state."""

    __slots__ = ("rule", "state", "pending_since", "value")

    def __init__(self, rule: AlertRule) -> None:
        self.rule = rule
        self.state = "inactive"      # inactive | pending | firing
        self.pending_since: Optional[float] = None
        self.value: float = 0.0


class AlertEngine:
    """Evaluates rules on the simulated clock, emits lifecycle events.

    Attach it downstream of a :class:`TimeSeriesStore` that is folding
    the same event stream; call :meth:`observe_watermark` with each
    event's sim time (the :class:`ClusterMonitor` does this) and the
    engine evaluates at every crossed ``eval_every`` boundary.
    """

    def __init__(
        self,
        store: TimeSeriesStore,
        rules: Sequence[AlertRule],
        slos: Sequence[SloConfig] = (),
        bus: Optional[EventBus] = None,
        eval_every: Optional[float] = None,
    ) -> None:
        self.store = store
        self.rules = list(rules)
        self.slos = {slo.name: slo for slo in slos}
        self.bus = bus
        self.eval_every = eval_every if eval_every else store.step
        self.states = {rule.name: AlertState(rule) for rule in self.rules}
        self._last_eval_bucket = -1
        #: healthy-bit per SLO, to emit slo.status only on transitions
        self._slo_health: Dict[str, bool] = {}
        for rule in self.rules:
            if rule.kind == "burn_rate" and rule.slo not in self.slos:
                raise ValueError(
                    f"rule {rule.name!r} watches unknown slo {rule.slo!r}"
                )

    # -- clock plumbing ------------------------------------------------

    def observe_watermark(self, now: float) -> None:
        """Evaluate every ``eval_every`` boundary crossed up to ``now``."""
        bucket = int((now + 1e-12) // self.eval_every)
        if bucket <= self._last_eval_bucket:
            return
        start = self._last_eval_bucket + 1
        if self._last_eval_bucket < 0:
            start = bucket  # jump straight to the first live boundary
        for crossed in range(start, bucket + 1):
            self.evaluate(crossed * self.eval_every)
        self._last_eval_bucket = bucket

    # -- evaluation ----------------------------------------------------

    def _condition(self, rule: AlertRule, now: float) -> Tuple[bool, float]:
        if rule.kind == "burn_rate":
            slo = self.slos[rule.slo]
            short = rule.short_window or rule.window / 12
            long_burn = burn_rate(self.store, slo, rule.window, now)
            short_burn = burn_rate(self.store, slo, short, now)
            # report the long-window burn; both must exceed the factor
            return (
                long_burn >= rule.factor and short_burn >= rule.factor,
                long_burn,
            )
        if rule.kind == "absence":
            series = [
                s for s in self.store
                if s.name == rule.series and all(
                    s.labels.get(k) == v for k, v in rule.labels.items()
                )
            ]
            last = max(
                (s.last_t for s in series if s.last_t is not None),
                default=None,
            )
            if last is None:
                # Nothing ever arrived: only meaningful once the run is
                # older than the window.
                gap = now
            else:
                gap = now - last
            return gap > rule.window, gap
        # static
        since = max(0.0, now - rule.window)
        if rule.reduce == "sum":
            value = self.store.counter_total(
                rule.series, since=since, until=now, **rule.labels
            )
        elif rule.reduce == "last":
            found = self.store.gauge_last(
                rule.series, since=since, until=now, **rule.labels
            )
            value = 0.0 if found is None else found
        elif rule.reduce == "count":
            value = float(len(self.store.samples(
                rule.series, since=since, until=now, **rule.labels
            )))
        else:  # max
            points = self.store.points(
                rule.series, since=since, until=now, **rule.labels
            )
            value = max((v for _, v in points), default=0.0)
        met = {
            ">": value > rule.threshold,
            ">=": value >= rule.threshold,
            "<": value < rule.threshold,
            "<=": value <= rule.threshold,
        }[rule.op]
        return met, value

    def evaluate(self, now: float) -> None:
        """One evaluation pass over every rule at simulated ``now``."""
        for rule in self.rules:
            state = self.states[rule.name]
            met, value = self._condition(rule, now)
            state.value = value
            if met:
                if state.state == "inactive":
                    state.pending_since = now
                    if now - state.pending_since >= rule.for_seconds:
                        state.state = "firing"
                        self._transition(rule, "firing", now, value)
                    else:
                        state.state = "pending"
                        self._transition(rule, "pending", now, value)
                elif state.state == "pending":
                    if now - state.pending_since >= rule.for_seconds:
                        state.state = "firing"
                        self._transition(rule, "firing", now, value)
            else:
                if state.state == "firing":
                    state.state = "inactive"
                    state.pending_since = None
                    self._transition(rule, "resolved", now, value)
                elif state.state == "pending":
                    # never fired: quietly disarm (the SRE convention —
                    # a pending alert that clears was never an incident)
                    state.state = "inactive"
                    state.pending_since = None
                    self._transition(rule, "resolved", now, value)
        self._emit_slo_transitions(now)

    def _transition(
        self, rule: AlertRule, transition: str, now: float, value: float
    ) -> None:
        entry = {
            "t": now,
            "alert": rule.name,
            "transition": transition,
            "kind": rule.kind,
            "value": value,
        }
        if rule.kind == "burn_rate":
            entry["slo"] = rule.slo
            entry["factor"] = rule.factor
        elif rule.kind == "static":
            entry["threshold"] = rule.threshold
        self.store.alerts.append(entry)
        if self.bus is not None:
            self.bus.emit(
                f"alert.{transition}", sim_time=now,
                **{k: v for k, v in entry.items() if k != "transition"},
            )

    def _emit_slo_transitions(self, now: float) -> None:
        if self.bus is None:
            return
        for name, slo in self.slos.items():
            status = evaluate_slo(self.store, slo, at=now)
            previous = self._slo_health.get(name)
            if previous is None or previous != status.healthy:
                self._slo_health[name] = status.healthy
                self.bus.emit(
                    "slo.status", sim_time=now, **status.to_dict()
                )

    # -- reporting -----------------------------------------------------

    def firing(self) -> List[str]:
        return sorted(
            name for name, s in self.states.items() if s.state == "firing"
        )

    def pending(self) -> List[str]:
        return sorted(
            name for name, s in self.states.items() if s.state == "pending"
        )


def render_alert_timeline(
    alerts: Sequence[dict], pal=None, runs: int = 1
) -> str:
    """Fixed-width alert-transition table for the CLI."""
    from repro.util.term import PLAIN

    pal = pal or PLAIN
    if not alerts:
        return "(no alert transitions recorded)"
    lines = [
        f"{'t(s)':>10}  {'alert':<26}{'transition':<12}"
        f"{'value':>10}  detail"
    ]
    paint = {
        "firing": pal.red, "pending": pal.yellow, "resolved": pal.green,
    }
    for entry in alerts:
        transition = entry.get("transition", "?")
        detail = ""
        if entry.get("kind") == "burn_rate":
            detail = (
                f"slo={entry.get('slo')} burn>={entry.get('factor')}"
            )
        elif entry.get("kind") == "static":
            detail = f"threshold={entry.get('threshold')}"
        if runs > 1:
            detail = (f"run={entry.get('run', 0)} " + detail).strip()
        lines.append(
            f"{entry.get('t', 0.0):>10.4f}  {entry.get('alert', '?'):<26}"
            f"{paint.get(transition, str)(f'{transition:<12}')}"
            f"{entry.get('value', 0.0):>10.3f}  {detail}"
        )
    return "\n".join(lines)


class ClusterMonitor:
    """tsdb + SLOs + alerting bound to one cluster run's event bus.

    The continuous-monitoring front door: build one from the declared
    SLOs (and optional extra rules), :meth:`attach` it to the bus the
    :class:`~repro.cluster.manager.ClusterManager` emits on, run the
    traffic, then :meth:`save` the ``.tsdb`` sidecar.  Monitoring is
    strictly an observer — it never touches the manager's state, so the
    simulated timeline is bit-identical with or without it (the
    ``cluster_slo`` bench gates exactly that).
    """

    def __init__(
        self,
        slos: Sequence[SloConfig] = (),
        rules: Optional[Sequence[AlertRule]] = None,
        step: float = 0.05,
        retention: int = 0,
        downsample: int = 8,
        coarse_retention: int = 0,
    ) -> None:
        self.slos = list(slos)
        if rules is None:
            rules = [
                rule for slo in self.slos
                for rule in burn_rate_rules(slo, step=step)
            ]
        self.rules = list(rules)
        self.store = TimeSeriesStore(
            step=step, retention=retention, downsample=downsample,
            coarse_retention=coarse_retention,
            meta={
                "slos": [slo.to_dict() for slo in self.slos],
                "rules": [rule.to_dict() for rule in self.rules],
            },
        )
        self.engine = AlertEngine(
            self.store, self.rules, self.slos, bus=None,
        )
        self.finished = False

    @classmethod
    def for_policy(cls, policy, step: float = 0.05, **kwargs) -> "ClusterMonitor":
        """Monitor for a :class:`ClusterPolicy`-shaped object.

        Expands each declared SLO into its default burn-rate pair and
        appends the policy's extra rules.
        """
        slos = list(getattr(policy, "slos", ()) or ())
        rules = [
            rule for slo in slos for rule in burn_rate_rules(slo, step=step)
        ]
        rules.extend(getattr(policy, "alerts", ()) or ())
        return cls(slos=slos, rules=rules, step=step, **kwargs)

    def attach(self, bus: EventBus) -> "ClusterMonitor":
        self.engine.bus = bus
        bus.subscribe(self)
        return self

    def __call__(self, event) -> None:
        kind = event.kind
        if kind.startswith("alert.") or kind.startswith("slo."):
            return
        self.store.fold_event(event)
        if event.sim_time is not None:
            self.engine.observe_watermark(event.sim_time)
        if kind == "cluster.finish":
            self.finish(event.sim_time or self.store.watermark)

    def finish(self, now: float) -> None:
        """Final evaluation at the horizon + frozen SLO statuses."""
        if self.finished:
            return
        self.finished = True
        self.engine.evaluate(now)
        statuses = evaluate_slos(self.store, self.slos, at=now)
        self.store.statuses = [status.to_dict() for status in statuses]
        if self.engine.bus is not None:
            for status in statuses:
                self.engine.bus.emit(
                    "slo.status", sim_time=now, final=True,
                    **status.to_dict(),
                )

    def statuses(self, at: Optional[float] = None):
        return evaluate_slos(self.store, self.slos, at=at)

    def save(self, path: str, merge: bool = True) -> TimeSeriesStore:
        if not self.finished:
            self.finish(self.store.watermark)
        return self.store.save(path, merge=merge)
