"""Multiple inputs in one job (Hadoop's ``MultipleInputs``).

Each underlying InputFormat gets a *tag*; the merged format unions
their splits and wraps their readers so the map function receives
``(tag, record)`` values and can tell the sources apart — the standard
substrate for reduce-side joins and union jobs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.mapreduce.types import InputFormat, InputSplit, RecordReader, TaskContext


class TaggedSplit(InputSplit):
    """A child split plus the tag of the input it came from."""

    def __init__(self, tag: str, inner: InputSplit) -> None:
        super().__init__(inner.length, inner.locations,
                         label=f"{tag}:{inner.label}")
        self.tag = tag
        self.inner = inner


class _TaggedReader(RecordReader):
    def __init__(self, tag: str, inner: RecordReader, ctx: TaskContext):
        super().__init__(ctx)
        self._tag = tag
        self._inner = inner

    def read_next(self) -> Optional[Tuple[object, object]]:
        pair = self._inner.read_next()
        if pair is None:
            return None
        key, record = pair
        return key, (self._tag, record)

    def close(self) -> None:
        self._inner.close()


class MultiInputFormat(InputFormat):
    """Union of tagged InputFormats; values become ``(tag, record)``."""

    def __init__(self, inputs: Dict[str, InputFormat]) -> None:
        if not inputs:
            raise ValueError("MultiInputFormat needs at least one input")
        self.inputs = dict(inputs)

    def get_splits(self, fs, cluster) -> List[TaggedSplit]:
        splits: List[TaggedSplit] = []
        for tag, input_format in self.inputs.items():
            splits.extend(
                TaggedSplit(tag, inner)
                for inner in input_format.get_splits(fs, cluster)
            )
        return splits

    def open_reader(self, fs, split: TaggedSplit, ctx: TaskContext):
        inner_format = self.inputs[split.tag]
        return _TaggedReader(
            split.tag, inner_format.open_reader(fs, split.inner, ctx), ctx
        )
