"""Job configuration, mirroring the ``main()`` in Figure 1 of the paper."""

from __future__ import annotations

from typing import Callable, Optional

from repro.mapreduce.types import InputFormat, OutputFormat
from repro.sim.cost import CpuCostModel


class Job:
    """Configuration for one MapReduce job.

    ``mapper(key, value, emit, ctx)`` is called once per input record;
    ``reducer(key, values, emit, ctx)`` once per distinct key, with
    ``values`` an iterable of everything the maps emitted under that
    key.  ``emit(k, v)`` collects output pairs.  A map-only job passes
    ``reducer=None``: map output goes straight to the output format.

    ``combiner`` (same signature as ``reducer``) runs on each map task's
    local output before the shuffle, as in Hadoop.
    """

    def __init__(
        self,
        name: str,
        mapper: Callable,
        input_format: InputFormat,
        reducer: Optional[Callable] = None,
        combiner: Optional[Callable] = None,
        output_format: Optional[OutputFormat] = None,
        num_reducers: int = 0,
        cost: Optional[CpuCostModel] = None,
        speculative: bool = False,
        max_attempts: int = 4,
    ) -> None:
        if num_reducers < 0:
            raise ValueError("num_reducers must be >= 0")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if reducer is not None and num_reducers == 0:
            num_reducers = 1
        self.name = name
        self.mapper = mapper
        self.reducer = reducer
        self.combiner = combiner
        self.input_format = input_format
        self.output_format = output_format
        self.num_reducers = num_reducers
        self.cost = cost if cost is not None else CpuCostModel()
        #: enable Hadoop-style speculative execution of map stragglers
        self.speculative = speculative
        #: optional repro.core.vector.BatchOp — when set and the input
        #: format's reader supports read_batch(), the runner drains the
        #: split frame-wise instead of calling ``mapper`` per record
        self.batch_op = None
        #: per-split task attempts before the job fails, as in Hadoop's
        #: ``mapreduce.map.maxattempts`` (default 4)
        self.max_attempts = max_attempts

    @property
    def is_map_only(self) -> bool:
        return self.reducer is None

    def __repr__(self) -> str:
        return f"Job({self.name!r}, reducers={self.num_reducers})"
