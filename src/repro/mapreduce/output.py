"""Output formats: text files on HDFS, or in-memory collection."""

from __future__ import annotations

from typing import List, Tuple

from repro.mapreduce.types import OutputFormat, RecordWriter, TaskContext


def render(value) -> str:
    """Hadoop-style text rendering of a key or value."""
    if value is None:
        return ""
    if isinstance(value, bytes):
        return value.decode("utf-8", "replace")
    return str(value)


class TextRecordWriter(RecordWriter):
    """Tab-separated ``key<TAB>value`` lines, one file per reduce task."""

    def __init__(self, fs, path: str, ctx: TaskContext) -> None:
        self._stream = fs.create(path, metrics=ctx.metrics)
        self._lines: List[str] = []

    def write(self, key, value) -> None:
        key_text = render(key)
        value_text = render(value)
        if key_text:
            self._lines.append(key_text + "\t" + value_text + "\n")
        else:
            self._lines.append(value_text + "\n")

    def close(self) -> None:
        self._stream.write("".join(self._lines).encode("utf-8"))
        self._stream.close()


class TextOutputFormat(OutputFormat):
    """Writes ``part-r-NNNNN`` text files under an output directory."""

    def __init__(self, output_dir: str) -> None:
        self.output_dir = output_dir.rstrip("/")

    def open_writer(self, fs, task_index: int, ctx: TaskContext) -> RecordWriter:
        path = f"{self.output_dir}/part-r-{task_index:05d}"
        return TextRecordWriter(fs, path, ctx)


class CollectWriter(RecordWriter):
    def __init__(self, sink: List[Tuple[object, object]]) -> None:
        self._sink = sink

    def write(self, key, value) -> None:
        self._sink.append((key, value))


class CollectOutputFormat(OutputFormat):
    """Gathers output pairs in memory — the default for tests/benches."""

    def __init__(self) -> None:
        self.collected: List[Tuple[object, object]] = []

    def open_writer(self, fs, task_index: int, ctx: TaskContext) -> RecordWriter:
        return CollectWriter(self.collected)
