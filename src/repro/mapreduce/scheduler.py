"""Locality-aware, event-driven slot scheduling with task attempts.

Reproduces the scheduling behaviour the paper's co-location argument
depends on (Section 4.1): when a map slot frees up, the scheduler
prefers a split whose data is local to that node; if none exists the
task runs anyway and pays remote-read costs.  Task durations are not
known in advance — the scheduler *executes* each task (via a callback)
once it has decided where it runs, because placement determines how much
of the split is read remotely.

On top of that sits Hadoop's fault-tolerance contract: each split is
run as a sequence of *attempts*.  An attempt that raises a
:class:`~repro.hdfs.errors.FaultError` (transient read error, dead
node, missing block) — or that was running on a node when it died — is
retried on a surviving node, up to ``max_attempts`` per split.  Nodes
that repeatedly fail attempts are blacklisted.  When a split exhausts
its attempts the job fails cleanly with a :class:`JobFailedError`
carrying the attempt history.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List, Optional, Sequence

from repro.hdfs.errors import FaultError
from repro.mapreduce.backoff import BackoffLike, resolve_backoff
from repro.mapreduce.types import InputSplit
from repro.obs import NULL_OBS, Observability
from repro.sim.metrics import Metrics


@dataclass
class ScheduledTask:
    """One executed map-task attempt (or speculative duplicate)."""

    split: InputSplit
    node: int
    start: float
    duration: float
    metrics: Metrics
    data_local: bool
    speculative: bool = False
    killed: bool = False  # lost the race against its duplicate/original
    attempt: int = 0      # 0-based attempt number for this split
    failed: bool = False  # attempt died (fault or node loss); was retried
    error: Optional[str] = None
    split_index: int = -1
    slot: int = -1        # which of the node's map slots ran the attempt
    preempted: bool = False  # evicted by a higher-priority queue; requeued

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def produced_output(self) -> bool:
        """Did this attempt's output make it into the job's result?"""
        return not self.killed and not self.failed


class JobFailedError(RuntimeError):
    """A split exhausted its task attempts (or the cluster died).

    ``attempts`` is the failed-attempt history: one dict per failed
    attempt with ``split``, ``node``, ``attempt``, ``start``, ``error``.
    """

    def __init__(self, message: str, attempts: Optional[List[dict]] = None):
        super().__init__(message)
        self.attempts: List[dict] = list(attempts or [])


@dataclass
class _Pending:
    """A split waiting to run (first time or retry)."""

    index: int
    attempt: int
    ready: float = 0.0
    banned: FrozenSet[int] = field(default_factory=frozenset)


class _MapScheduler:
    """Internal state machine behind :func:`schedule_map_tasks`."""

    def __init__(
        self,
        splits: Sequence[InputSplit],
        num_nodes: int,
        slots_per_node: int,
        execute: Callable[[InputSplit, int], Metrics],
        obs: Observability,
        max_attempts: int,
        faults,
        node_usable: Optional[Callable[[int], bool]],
        blacklist_after: int,
        retry_backoff: BackoffLike,
    ) -> None:
        self.splits = splits
        self.execute = execute
        self.obs = obs
        self.max_attempts = max(1, max_attempts)
        self.faults = faults
        self.node_usable = node_usable
        self.blacklist_after = blacklist_after
        self.retry_backoff = resolve_backoff(retry_backoff)
        self.pending: List[_Pending] = [
            _Pending(i, 0) for i in range(len(splits))
        ]
        self.slots = [
            (0.0, node, slot)
            for node in range(num_nodes)
            for slot in range(slots_per_node)
        ]
        heapq.heapify(self.slots)
        self._had_slots = bool(self.slots)
        self.tasks: List[ScheduledTask] = []
        self.attempts_used = [0] * len(splits)
        self.node_failures: dict = {}
        self.blacklist: set = set()
        self.history: List[dict] = []

    # -- liveness -------------------------------------------------------

    def usable(self, node: int) -> bool:
        if node in self.blacklist:
            return False
        if self.node_usable is not None and not self.node_usable(node):
            return False
        return True

    def _remove_slots(self, node: int) -> None:
        self.slots = [s for s in self.slots if s[1] != node]
        heapq.heapify(self.slots)

    # -- fault plumbing -------------------------------------------------

    def _handle_faults(self, now: float) -> None:
        if self.faults is None:
            return
        for node, died_at in self.faults.drain_dead():
            self._node_lost(node, died_at)
        for node in self.faults.drain_retired():
            self._remove_slots(node)

    def _fire_time(self, now: float) -> None:
        if self.faults is None:
            return
        self.faults.advance_time(now)
        self._handle_faults(now)

    def _node_lost(self, node: int, now: float) -> None:
        """A datanode died at ``now``: drop its slots and fail every
        attempt still running on it (their work so far is wasted)."""
        self._remove_slots(node)
        self.obs.emit("node.lost", sim_time=now, node=node)
        for task in self.tasks:
            if (
                task.node == node
                and task.produced_output
                and task.end > now
            ):
                task.failed = True
                task.error = "node died"
                task.duration = max(0.0, now - task.start)
                self.obs.registry.counter(
                    "task.attempts", outcome="node_lost"
                ).inc()
                self.history.append({
                    "split": task.split.label,
                    "node": node,
                    "attempt": task.attempt,
                    "start": task.start,
                    "error": "node died",
                })
                if task.speculative:
                    continue  # the original attempt is still running
                self._requeue(
                    task.split_index, now, frozenset({node}), "node died"
                )

    # -- retry bookkeeping ----------------------------------------------

    def _requeue(
        self, index: int, now: float, banned: FrozenSet[int], error: str
    ) -> None:
        if self.attempts_used[index] >= self.max_attempts:
            raise JobFailedError(
                f"split {self.splits[index].label or index} failed "
                f"{self.attempts_used[index]} of {self.max_attempts} "
                f"allowed attempts (last error: {error})",
                self.history,
            )
        attempt = self.attempts_used[index]
        label = self.splits[index].label or str(index)
        delay = self.retry_backoff.delay(label, max(0, attempt - 1))
        if delay > 0:
            self.obs.emit(
                "retry.backoff", sim_time=now,
                split=label, attempt=attempt, delay=delay,
                ready=now + delay,
            )
        self.pending.append(_Pending(index, attempt, now + delay, banned))

    def _note_node_failure(self, node: int) -> bool:
        """Count a failed attempt against ``node``; True if the node was
        just blacklisted (its freed slot must not return to the pool)."""
        self.node_failures[node] = self.node_failures.get(node, 0) + 1
        if (
            self.blacklist_after > 0
            and self.node_failures[node] >= self.blacklist_after
            and node not in self.blacklist
        ):
            self.blacklist.add(node)
            self.obs.registry.counter(
                "scheduler.blacklisted", node=node
            ).inc()
            self.obs.emit(
                "node.blacklisted", node=node,
                failures=self.node_failures[node],
            )
            self._remove_slots(node)
            return True
        return False

    # -- the event loop --------------------------------------------------

    def run(self) -> List[ScheduledTask]:
        while True:
            self._drain_pending()
            if not self.pending:
                # The last assignment happened; fire remaining timed
                # faults up to the makespan — a node can still die while
                # assigned tasks are "running", failing them retroactively
                # and refilling the pending queue.
                self._fire_time(makespan(self.tasks))
                if not self.pending:
                    return self.tasks

    def _drain_pending(self) -> None:
        while self.pending:
            if not self.slots:
                if not self._had_slots:
                    # Degenerate cluster (zero slots configured): run
                    # nothing, matching pre-fault-tolerance behaviour.
                    self.pending.clear()
                    return
                raise JobFailedError(
                    "no live map slots remain "
                    f"({len(self.pending)} splits unfinished)",
                    self.history,
                )
            now = self.slots[0][0]
            self._fire_time(now)
            if not self.slots or self.slots[0][0] != now:
                continue
            # Take every slot freeing at the same instant as one batch
            # (at t=0 that is the whole cluster) and match data-local
            # pairs first — the effect Hadoop gets from per-node task
            # lists and delay scheduling.  Leftover slots then run
            # non-local tasks.
            batch = []
            while self.slots and self.slots[0][0] == now:
                _, node, slot = heapq.heappop(self.slots)
                if self.usable(node):
                    batch.append((node, slot))
            if not batch:
                continue
            if not any(p.ready <= now for p in self.pending):
                # Every queued attempt is backing off; idle this batch
                # until the earliest one becomes ready.
                ready_at = min(p.ready for p in self.pending)
                for node, slot in batch:
                    heapq.heappush(self.slots, (ready_at, node, slot))
                continue
            spare = []
            for node, slot in batch:
                chosen = self._pick(node, now, local_only=True)
                if chosen is None:
                    spare.append((node, slot))
                else:
                    self._launch(now, node, slot, chosen, True)
            leftover = []
            for node, slot in spare:
                if not self.pending:
                    break
                chosen = self._pick(node, now, local_only=False)
                if chosen is None:
                    leftover.append((node, slot))
                    continue
                local = node in self.splits[chosen.index].locations
                self._launch(now, node, slot, chosen, local)
            # Leftover slots found only retries banned from their node
            # (or attempts still backing off).  Idle them until the next
            # event so the retry can re-place on a different node — but
            # if these are the last slots standing, a banned node beats
            # a deadlocked job.
            for node, slot in leftover:
                if not self.pending:
                    break
                if self.slots:
                    heapq.heappush(
                        self.slots, (self.slots[0][0], node, slot)
                    )
                    continue
                chosen = self._pick(
                    node, now, local_only=False, allow_banned=True
                )
                if chosen is not None:
                    local = node in self.splits[chosen.index].locations
                    self._launch(now, node, slot, chosen, local)

    def _pick(
        self,
        node: int,
        now: float,
        local_only: bool,
        allow_banned: bool = False,
    ) -> Optional[_Pending]:
        for p in self.pending:
            if p.ready > now:
                continue
            if local_only and node not in self.splits[p.index].locations:
                continue
            if not allow_banned and node in p.banned:
                continue
            return p
        return None

    def _launch(
        self, now: float, node: int, slot: int, p: _Pending, local: bool
    ) -> None:
        self.pending.remove(p)
        if self.faults is not None:
            self.faults.on_task_start()
            self._handle_faults(now)
            if not self.usable(node) or (
                self.faults is not None and self.faults.is_dead(node)
            ):
                # A task-boundary fault just took this node out; the
                # attempt never started.
                self.pending.append(p)
                return
        split = self.splits[p.index]
        self.attempts_used[p.index] += 1
        placement = "local" if local else "remote"
        self.obs.registry.counter(
            "scheduler.assignments", placement=placement
        ).inc()
        self.obs.emit(
            "task.start", sim_time=now, kind="map",
            split=split.label, node=node, slot=slot,
            attempt=p.attempt, placement=placement,
        )
        try:
            metrics = self.execute(split, node)
        except FaultError as exc:
            metrics = getattr(exc, "metrics", None) or Metrics()
            duration = metrics.task_time
            error = str(exc) or type(exc).__name__
            self.tasks.append(ScheduledTask(
                split, node, now, duration, metrics, local,
                attempt=p.attempt, failed=True, error=error,
                split_index=p.index, slot=slot,
            ))
            self.obs.registry.counter(
                "task.attempts", outcome="failed"
            ).inc()
            self.obs.emit(
                "task.finish", sim_time=now + duration, kind="map",
                split=split.label, node=node, slot=slot,
                attempt=p.attempt, outcome="failed", error=error,
                duration=duration,
            )
            self.history.append({
                "split": split.label,
                "node": node,
                "attempt": p.attempt,
                "start": now,
                "error": error,
            })
            if not self._note_node_failure(node):
                heapq.heappush(self.slots, (now + duration, node, slot))
            self._requeue(
                p.index, now + duration, p.banned | {node}, error
            )
            return
        duration = metrics.task_time
        self.tasks.append(ScheduledTask(
            split, node, now, duration, metrics, local,
            attempt=p.attempt, split_index=p.index, slot=slot,
        ))
        self.obs.registry.counter("task.attempts", outcome="ok").inc()
        self.obs.emit(
            "task.finish", sim_time=now + duration, kind="map",
            split=split.label, node=node, slot=slot,
            attempt=p.attempt, outcome="ok", duration=duration,
        )
        heapq.heappush(self.slots, (now + duration, node, slot))


def schedule_map_tasks(
    splits: Sequence[InputSplit],
    num_nodes: int,
    slots_per_node: int,
    execute: Callable[[InputSplit, int], Metrics],
    speculative: bool = False,
    obs: Optional[Observability] = None,
    max_attempts: int = 1,
    faults=None,
    node_usable: Optional[Callable[[int], bool]] = None,
    blacklist_after: int = 3,
    retry_backoff: BackoffLike = 0.0,
) -> List[ScheduledTask]:
    """Run every split on the simulated cluster; returns executed tasks.

    ``execute(split, node)`` performs the task's real work and returns
    its metrics; the task's simulated duration is ``metrics.task_time``.
    An ``execute`` that raises a :class:`~repro.hdfs.errors.FaultError`
    marks the attempt failed; the split is retried (total attempts
    capped at ``max_attempts``) with the failing node banned for the
    retry.  ``faults`` is an optional
    :class:`~repro.faults.FaultInjector` driven by the event loop;
    ``node_usable(node)`` filters slots (dead/decommissioned nodes).
    Nodes failing ``blacklist_after`` attempts are blacklisted.
    ``retry_backoff`` delays each retry: either a fixed number of
    seconds or an :class:`~repro.mapreduce.backoff.ExponentialBackoff`
    (seeded exponential delay with jitter; each applied delay emits a
    ``retry.backoff`` event).

    With ``speculative=True``, once no pending work remains, idle slots
    launch duplicates of still-running *non-local* tasks on nodes that
    hold their data (Hadoop's speculative execution); whichever attempt
    finishes first wins and the loser is marked ``killed``.  Both
    attempts' durations count — speculation trades cluster work for
    wall-clock time, exactly as in Hadoop.
    """
    obs = obs if obs is not None else NULL_OBS
    scheduler = _MapScheduler(
        splits, num_nodes, slots_per_node, execute, obs,
        max_attempts, faults, node_usable, blacklist_after, retry_backoff,
    )
    tasks = scheduler.run()
    if speculative:
        _speculate(
            tasks, scheduler.slots, execute, obs, usable=scheduler.usable
        )
    return tasks


def _speculate(
    tasks: List[ScheduledTask],
    slots: List,
    execute: Callable[[InputSplit, int], Metrics],
    obs: Observability = NULL_OBS,
    usable: Optional[Callable[[int], bool]] = None,
) -> None:
    """Duplicate slow non-local tasks onto idle data-local slots."""
    speculated = set()

    def eligible(task: ScheduledTask, now: float) -> bool:
        return (
            task.end > now
            and not task.data_local
            and not task.speculative
            and task.produced_output
            and id(task.split) not in speculated
        )

    while slots:
        now, node, slot = heapq.heappop(slots)
        if usable is not None and not usable(node):
            continue
        candidates = [
            t for t in tasks
            if eligible(t, now)
            and node in t.split.locations
            and t.node != node
        ]
        if not candidates:
            # No-progress check: once nothing running is even eligible
            # (for any node), later-freeing slots cannot speculate
            # either — stop instead of draining the slot heap.
            if not any(eligible(t, now) for t in tasks):
                break
            continue  # this slot has nothing useful to speculate on
        victim = max(candidates, key=lambda t: t.end)
        speculated.add(id(victim.split))
        obs.emit(
            "task.speculative", sim_time=now, split=victim.split.label,
            node=node, slot=slot, victim_node=victim.node,
        )
        try:
            metrics = execute(victim.split, node)
        except FaultError as exc:
            metrics = getattr(exc, "metrics", None) or Metrics()
            duplicate = ScheduledTask(
                victim.split, node, now, metrics.task_time, metrics,
                data_local=True, speculative=True, failed=True,
                error=str(exc) or type(exc).__name__,
                split_index=victim.split_index, slot=slot,
            )
            tasks.append(duplicate)
            obs.registry.counter(
                "scheduler.speculation", outcome="failed"
            ).inc()
            continue  # the original keeps running; slot is dropped
        duration = metrics.task_time
        duplicate = ScheduledTask(
            victim.split, node, now, duration, metrics,
            data_local=True, speculative=True,
            split_index=victim.split_index, slot=slot,
        )
        if duplicate.end < victim.end:
            # The local duplicate wins; the original is killed the
            # moment the duplicate commits.
            victim.duration = duplicate.end - victim.start
            victim.killed = True
            obs.registry.counter("scheduler.speculation", outcome="won").inc()
        else:
            # The original finishes first; the duplicate dies with it.
            duplicate.duration = max(0.0, victim.end - now)
            duplicate.killed = True
            obs.registry.counter("scheduler.speculation", outcome="lost").inc()
        tasks.append(duplicate)
        heapq.heappush(slots, (duplicate.end, node, slot))


def makespan(tasks: Sequence[ScheduledTask]) -> float:
    """Wall-clock end of the last task (0 for an empty task list)."""
    return max((t.end for t in tasks), default=0.0)


def simulate_wave_makespan(durations: Sequence[float], total_slots: int) -> float:
    """Makespan of independent tasks on ``total_slots`` identical slots.

    Used for the reduce phase, where there is no data locality: a simple
    longest-processing-time-first packing over a slot heap.
    """
    if not durations or total_slots < 1:
        return 0.0
    slots = [0.0] * min(total_slots, len(durations))
    heapq.heapify(slots)
    for duration in sorted(durations, reverse=True):
        free = heapq.heappop(slots)
        heapq.heappush(slots, free + duration)
    return max(slots)
