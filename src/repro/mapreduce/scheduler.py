"""Locality-aware, event-driven slot scheduling.

Reproduces the scheduling behaviour the paper's co-location argument
depends on (Section 4.1): when a map slot frees up, the scheduler
prefers a split whose data is local to that node; if none exists the
task runs anyway and pays remote-read costs.  Task durations are not
known in advance — the scheduler *executes* each task (via a callback)
once it has decided where it runs, because placement determines how much
of the split is read remotely.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.mapreduce.types import InputSplit
from repro.obs import NULL_OBS, Observability
from repro.sim.metrics import Metrics


@dataclass
class ScheduledTask:
    """One executed map task (or speculative duplicate) and its placement."""

    split: InputSplit
    node: int
    start: float
    duration: float
    metrics: Metrics
    data_local: bool
    speculative: bool = False
    killed: bool = False  # lost the race against its duplicate/original

    @property
    def end(self) -> float:
        return self.start + self.duration


def schedule_map_tasks(
    splits: Sequence[InputSplit],
    num_nodes: int,
    slots_per_node: int,
    execute: Callable[[InputSplit, int], Metrics],
    speculative: bool = False,
    obs: Optional[Observability] = None,
) -> List[ScheduledTask]:
    """Run every split on the simulated cluster; returns executed tasks.

    ``execute(split, node)`` performs the task's real work and returns
    its metrics; the task's simulated duration is ``metrics.task_time``.

    With ``speculative=True``, once no pending work remains, idle slots
    launch duplicates of still-running *non-local* tasks on nodes that
    hold their data (Hadoop's speculative execution); whichever attempt
    finishes first wins and the loser is marked ``killed``.  Both
    attempts' durations count — speculation trades cluster work for
    wall-clock time, exactly as in Hadoop.
    """
    obs = obs if obs is not None else NULL_OBS
    placements = obs.registry
    pending = list(range(len(splits)))
    # Min-heap of (free_time, node, slot). Node order within equal times
    # keeps ties deterministic.
    slots = [
        (0.0, node, slot)
        for node in range(num_nodes)
        for slot in range(slots_per_node)
    ]
    heapq.heapify(slots)
    tasks: List[ScheduledTask] = []

    def assign(now: float, node: int, slot: int, index: int, local: bool):
        split = splits[index]
        placements.counter(
            "scheduler.assignments", placement="local" if local else "remote"
        ).inc()
        metrics = execute(split, node)
        duration = metrics.task_time
        tasks.append(ScheduledTask(split, node, now, duration, metrics, local))
        heapq.heappush(slots, (now + duration, node, slot))

    while pending and slots:
        # Take every slot freeing at the same instant as one batch (at
        # t=0 that is the whole cluster) and match data-local pairs
        # first — the effect Hadoop gets from per-node task lists and
        # delay scheduling.  Leftover slots then run non-local tasks.
        now = slots[0][0]
        batch = []
        while slots and slots[0][0] == now:
            batch.append(heapq.heappop(slots))
        spare = []
        for _, node, slot in batch:
            chosen = None
            for i, split_idx in enumerate(pending):
                if node in splits[split_idx].locations:
                    chosen = i
                    break
            if chosen is None:
                spare.append((node, slot))
            else:
                assign(now, node, slot, pending.pop(chosen), True)
        for node, slot in spare:
            if not pending:
                break
            assign(now, node, slot, pending.pop(0), False)
    if speculative:
        _speculate(tasks, slots, execute, obs)
    return tasks


def _speculate(
    tasks: List[ScheduledTask],
    slots: List,
    execute: Callable[[InputSplit, int], Metrics],
    obs: Observability = NULL_OBS,
) -> None:
    """Duplicate slow non-local tasks onto idle data-local slots."""
    speculated = set()
    while slots:
        now, node, slot = heapq.heappop(slots)
        candidates = [
            t for t in tasks
            if t.end > now
            and not t.data_local
            and not t.speculative
            and id(t.split) not in speculated
            and node in t.split.locations
            and t.node != node
        ]
        if not candidates:
            continue  # this slot has nothing useful to speculate on
        victim = max(candidates, key=lambda t: t.end)
        speculated.add(id(victim.split))
        metrics = execute(victim.split, node)
        duration = metrics.task_time
        duplicate = ScheduledTask(
            victim.split, node, now, duration, metrics,
            data_local=True, speculative=True,
        )
        if duplicate.end < victim.end:
            # The local duplicate wins; the original is killed the
            # moment the duplicate commits.
            victim.duration = duplicate.end - victim.start
            victim.killed = True
            obs.registry.counter("scheduler.speculation", outcome="won").inc()
        else:
            # The original finishes first; the duplicate dies with it.
            duplicate.duration = max(0.0, victim.end - now)
            duplicate.killed = True
            obs.registry.counter("scheduler.speculation", outcome="lost").inc()
        tasks.append(duplicate)
        heapq.heappush(slots, (duplicate.end, node, slot))
        # A slot only speculates once per freeing; when it frees again
        # it will be popped again and reconsidered.
        if len(speculated) >= len(tasks):
            break


def makespan(tasks: Sequence[ScheduledTask]) -> float:
    """Wall-clock end of the last task (0 for an empty task list)."""
    return max((t.end for t in tasks), default=0.0)


def simulate_wave_makespan(durations: Sequence[float], total_slots: int) -> float:
    """Makespan of independent tasks on ``total_slots`` identical slots.

    Used for the reduce phase, where there is no data locality: a simple
    longest-processing-time-first packing over a slot heap.
    """
    if not durations or total_slots < 1:
        return 0.0
    slots = [0.0] * min(total_slots, len(durations))
    heapq.heapify(slots)
    for duration in sorted(durations, reverse=True):
        free = heapq.heappop(slots)
        heapq.heappush(slots, free + duration)
    return max(slots)
