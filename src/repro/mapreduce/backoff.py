"""Seeded exponential retry backoff with deterministic jitter.

Hadoop never relaunches a failed task attempt on the very next
heartbeat: retries back off so a transiently-sick cluster (a wedged
datanode, a full spill disk) isn't hammered by the very work it just
failed.  The single-job scheduler and the multi-job cluster manager
share this policy: a failed attempt's relaunch is delayed by
``base * factor**attempt`` seconds, capped at ``cap``, then spread by a
±``jitter/2`` proportional offset so simultaneous failures don't
re-collide on the same instant (the classic thundering-herd fix).

Everything is deterministic: the jitter for one retry is drawn from an
RNG seeded with ``(seed, key, attempt)``, so the same run replays to
the same timeline — the property the cluster WAL's crash-resume and
every committed baseline depend on — while different seeds genuinely
decorrelate the retry schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class BackoffConfig:
    """Retry-delay shape: ``min(cap, base * factor**attempt)`` ± jitter.

    ``jitter`` is the total proportional spread: a delay ``d`` lands
    uniformly in ``[d * (1 - jitter/2), d * (1 + jitter/2)]``.  A
    ``base`` of 0 disables backoff entirely (retries stay immediate).
    """

    base: float = 0.05
    factor: float = 2.0
    cap: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError("backoff base must be >= 0")
        if self.factor < 1:
            raise ValueError("backoff factor must be >= 1")
        if self.cap < 0:
            raise ValueError("backoff cap must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValueError("backoff jitter must be in [0, 1]")

    def to_dict(self) -> dict:
        return {
            "base": self.base,
            "factor": self.factor,
            "cap": self.cap,
            "jitter": self.jitter,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BackoffConfig":
        return cls(
            base=float(data.get("base", 0.05)),
            factor=float(data.get("factor", 2.0)),
            cap=float(data.get("cap", 2.0)),
            jitter=float(data.get("jitter", 0.5)),
            seed=int(data.get("seed", 0)),
        )


class ExponentialBackoff:
    """One run's retry-delay oracle; a pure function of its config.

    ``delay(key, attempt)`` is the seconds to wait before relaunching
    ``key``'s retry number ``attempt`` (0-based: the delay before the
    *second* attempt uses ``attempt=0``).  ``key`` is any stable task
    identity — the scheduler uses the split label, the cluster manager
    ``job:split`` — so two tasks failing at the same instant draw
    *different* jitter and spread out.
    """

    def __init__(self, config: BackoffConfig = BackoffConfig()) -> None:
        self.config = config

    def delay(self, key: str, attempt: int) -> float:
        cfg = self.config
        if cfg.base <= 0:
            return 0.0
        raw = min(cfg.cap, cfg.base * (cfg.factor ** max(0, attempt)))
        if cfg.jitter <= 0:
            return raw
        rng = random.Random(f"{cfg.seed}:{key}:{attempt}")
        spread = cfg.jitter * (rng.random() - 0.5)
        return max(0.0, raw * (1.0 + spread))


#: what scheduler entry points accept: a fixed delay or a full policy
BackoffLike = Union[float, ExponentialBackoff]


def resolve_backoff(value: BackoffLike) -> ExponentialBackoff:
    """Coerce a legacy fixed-seconds delay into a jitterless policy."""
    if isinstance(value, ExponentialBackoff):
        return value
    fixed = float(value)
    if fixed <= 0:
        return ExponentialBackoff(BackoffConfig(base=0.0))
    # A fixed delay is "exponential" with factor 1 and no jitter.
    return ExponentialBackoff(
        BackoffConfig(base=fixed, factor=1.0, cap=fixed, jitter=0.0)
    )
