"""MapReduce engine over the simulated HDFS.

Implements the Hadoop abstractions the paper's techniques plug into
(Section 2): ``InputFormat`` (split generation + record reading),
``OutputFormat``, hand-coded map and reduce functions over a generic
record abstraction, and a locality-aware slot scheduler.

The engine *executes* jobs for real — mappers and reducers are Python
functions that see actual decoded records — while *time* is simulated:
each task accumulates I/O and CPU charges in its metrics, the scheduler
replays the tasks against the cluster's map slots event-by-event, and
the job result reports the two quantities Table 1 reports: **map time**
(total map-task seconds divided by the cluster's map slots) and **total
time** (wall-clock makespan including shuffle/sort/reduce).
"""

from repro.mapreduce.counters import Counters
from repro.mapreduce.job import Job
from repro.mapreduce.runner import JobResult, JobRunner, run_job
from repro.mapreduce.scheduler import JobFailedError
from repro.mapreduce.types import (
    InputFormat,
    InputSplit,
    OutputFormat,
    RecordReader,
    TaskContext,
)

__all__ = [
    "Counters",
    "InputFormat",
    "InputSplit",
    "Job",
    "JobFailedError",
    "JobResult",
    "JobRunner",
    "OutputFormat",
    "RecordReader",
    "TaskContext",
    "run_job",
]
