"""Job counters, as in Hadoop's ``Counters`` facility."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Optional, Tuple


class Counters:
    """Named monotonic counters, mergeable across tasks.

    Behaves like a read-only mapping (``iter``/``len``/``in`` over
    counter names) on top of the classic ``increment``/``get``/``merge``
    API.  Every ``increment`` is mirrored into the active observability
    registry as ``mapreduce.counters{name=...}`` so flight recordings
    see raw per-task increments; ``merge`` is pure aggregation and
    bypasses the registry (the merged increments were already mirrored
    when they happened — mirroring again would double-count).
    """

    def __init__(self, registry=None) -> None:
        self._values: Dict[str, int] = defaultdict(int)
        if registry is None:
            from repro.obs import current_obs

            registry = current_obs().registry
        self._registry = registry

    def increment(self, name: str, amount: int = 1) -> None:
        self._values[name] += amount
        self._registry.counter("mapreduce.counters", name=name).inc(amount)

    def get(self, name: str) -> int:
        return self._values.get(name, 0)

    def merge(self, other: "Counters") -> None:
        for name, value in other._values.items():
            self._values[name] += value

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._values.items()))

    def as_dict(self) -> Dict[str, int]:
        return dict(self._values)

    # -- mapping protocol ---------------------------------------------

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._values))

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, name: object) -> bool:
        return name in self._values

    def __getitem__(self, name: str) -> int:
        if name not in self._values:
            raise KeyError(name)
        return self._values[name]

    def keys(self):
        return sorted(self._values)

    def __repr__(self) -> str:
        return f"Counters({dict(sorted(self._values.items()))!r})"
