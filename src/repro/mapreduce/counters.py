"""Job counters, as in Hadoop's ``Counters`` facility."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple


class Counters:
    """Named monotonic counters, mergeable across tasks."""

    def __init__(self) -> None:
        self._values: Dict[str, int] = defaultdict(int)

    def increment(self, name: str, amount: int = 1) -> None:
        self._values[name] += amount

    def get(self, name: str) -> int:
        return self._values.get(name, 0)

    def merge(self, other: "Counters") -> None:
        for name, value in other._values.items():
            self._values[name] += value

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._values.items()))

    def as_dict(self) -> Dict[str, int]:
        return dict(self._values)

    def __repr__(self) -> str:
        return f"Counters({dict(sorted(self._values.items()))!r})"
