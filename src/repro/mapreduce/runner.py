"""Job execution: map phase, shuffle/sort, reduce phase, result metrics.

``run_job`` is the equivalent of Figure 1's ``JobRunner.submit(job)``.
Map tasks run for real (decoding records through the configured
InputFormat and invoking the user's map function) while the scheduler
replays them against the cluster's slots; the shuffle, sort and reduce
phases are then executed and timed.  The result carries the two numbers
Table 1 reports per format — *map time* (total map-task seconds divided
by the cluster's map slots) and *total time* (full-job makespan) — plus
the bytes-read counters.
"""

from __future__ import annotations

import math
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faults import FaultInjector, FaultPlan, current_fault_plan
from repro.hdfs.errors import FaultError
from repro.hdfs.filesystem import FileSystem
from repro.mapreduce.backoff import BackoffConfig, ExponentialBackoff
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import Job
from repro.mapreduce.output import CollectOutputFormat
from repro.mapreduce.scheduler import (
    ScheduledTask,
    makespan,
    schedule_map_tasks,
    simulate_wave_makespan,
)
from repro.mapreduce.types import InputSplit, TaskContext
from repro.obs import NULL_PROFILER, Observability, OperatorProfiler, current_obs
from repro.obs.registry import TASK_DURATION_BOUNDARIES
from repro.sim.metrics import Metrics

#: CPU charge per key comparison in the reduce-side sort.
_SORT_SECONDS_PER_COMPARE = 30e-9

#: Wall-time source for operator profiles when no tracer clock is
#: injected (fake clocks keep recorded traces byte-identical in tests).
_WALL_CLOCK = time.perf_counter


def estimate_pair_size(key, value) -> int:
    """Approximate serialized size of a shuffled (key, value) pair."""
    return _sizeof(key) + _sizeof(value) + 2


def _sizeof(obj) -> int:
    if obj is None:
        return 1
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return 5
    if isinstance(obj, float):
        return 8
    if isinstance(obj, str):
        return len(obj) + 2
    if isinstance(obj, (bytes, bytearray)):
        return len(obj) + 2
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 4 + sum(_sizeof(x) for x in obj)
    if isinstance(obj, dict):
        return 4 + sum(_sizeof(k) + _sizeof(v) for k, v in obj.items())
    return 16


@dataclass
class JobResult:
    """Everything an experiment needs from one job run."""

    job_name: str
    map_time: float          # Table 1's "Map Time": sum(task time)/map slots
    map_makespan: float
    reduce_time: float
    total_time: float        # Table 1's "Total Time"
    bytes_read: int          # Table 1's "Data Read": HDFS bytes in map phase
    map_metrics: Metrics
    reduce_metrics: Metrics
    counters: Counters
    tasks: List[ScheduledTask] = field(default_factory=list)
    output: List[Tuple[object, object]] = field(default_factory=list)
    attempts: int = 0        # every executed attempt, incl. failed/killed
    failed_tasks: int = 0    # attempts lost to faults and retried

    @property
    def data_local_fraction(self) -> float:
        """Fraction of *surviving* map attempts that ran data-local.

        Killed speculative duplicates and failed attempts are excluded
        from the denominator: they contributed cluster time but no
        output, and counting them would let a speculative run report a
        locality number no placement policy produced.
        """
        surviving = [t for t in self.tasks if t.produced_output]
        if not surviving:
            return 1.0
        return sum(1 for t in surviving if t.data_local) / len(surviving)


class JobRunner:
    """Executes jobs against one simulated filesystem/cluster."""

    def __init__(
        self,
        fs: FileSystem,
        obs: Optional[Observability] = None,
        faults=None,
    ) -> None:
        self.fs = fs
        self.obs = obs if obs is not None else current_obs()
        #: a FaultPlan or FaultInjector; None falls back to the ambient
        #: plan installed by ``FaultPlan.activate()`` (CLI ``--faults``)
        self.faults = faults

    def _injector(self) -> Optional[FaultInjector]:
        faults = self.faults
        if faults is None:
            faults = current_fault_plan()
        if faults is None:
            return None
        if isinstance(faults, FaultPlan):
            return FaultInjector(self.fs, faults, self.obs)
        return faults

    def run(self, job: Job) -> JobResult:
        obs = self.obs
        with obs.tracer.span("job", kind="job", job=job.name) as job_span:
            obs.emit("job.start", job=job.name)
            result = self._run_traced(job, obs)
            obs.emit(
                "job.finish",
                sim_time=result.total_time,
                job=job.name,
                total_time=result.total_time,
                attempts=result.attempts,
                failed_tasks=result.failed_tasks,
            )
        job_span.set("total_time", result.total_time)
        obs.record_metrics(f"job:{job.name}:map", result.map_metrics)
        obs.record_metrics(f"job:{job.name}:reduce", result.reduce_metrics)
        obs.record_counters(f"job:{job.name}", result.counters)
        return result

    def _run_traced(self, job: Job, obs: Observability) -> JobResult:
        cluster = self.fs.cluster
        splits = job.input_format.get_splits(self.fs, cluster)
        counters = Counters()
        injector = self._injector()
        # One entry per executed attempt, aligned with the scheduler's
        # task list: (partitions, counters) for a completed attempt,
        # None for one that died mid-read.
        attempt_payloads: List[Optional[Tuple[list, Counters]]] = []

        def execute(split: InputSplit, node: int) -> Metrics:
            try:
                metrics, partitions, task_counters = (
                    self.execute_map_attempt(job, split, node)
                )
            except FaultError:
                attempt_payloads.append(None)
                raise
            attempt_payloads.append((partitions, task_counters))
            return metrics

        input_fmt = type(job.input_format).__name__
        with obs.tracer.span("map_phase", kind="phase", splits=len(splits)):
            obs.emit(
                "phase.start", sim_time=0.0, phase="map",
                job=job.name, splits=len(splits),
            )
            tasks = schedule_map_tasks(
                splits,
                cluster.num_nodes,
                cluster.map_slots_per_node,
                execute,
                speculative=job.speculative,
                obs=obs,
                max_attempts=job.max_attempts,
                faults=injector,
                node_usable=self.fs.is_node_live,
                retry_backoff=ExponentialBackoff(
                    BackoffConfig(seed=cluster.seed)
                ),
            )
            map_durations = obs.registry.histogram(
                "task.duration.seconds", TASK_DURATION_BOUNDARIES, kind="map"
            )
            for task in tasks:
                map_durations.observe(task.duration)
                obs.tracer.record_span(
                    "map_task",
                    kind="task",
                    sim_start=task.start,
                    sim_duration=task.duration,
                    sim_io=task.metrics.io_time,
                    sim_cpu=task.metrics.cpu_time,
                    split=task.split.label,
                    node=task.node,
                    slot=task.slot,
                    data_local=task.data_local,
                    speculative=task.speculative,
                    killed=task.killed,
                    attempt=task.attempt,
                    failed=task.failed,
                    format=input_fmt,
                    disk_bytes=task.metrics.disk_bytes,
                    net_bytes=task.metrics.net_bytes,
                    requested_bytes=task.metrics.requested_bytes,
                    seeks=task.metrics.seeks,
                    records=task.metrics.records,
                )
            obs.emit(
                "phase.finish", sim_time=makespan(tasks), phase="map",
                job=job.name, makespan=makespan(tasks), tasks=len(tasks),
            )
        # attempt_payloads is appended in execution order, which matches
        # the task list.  Only surviving attempts — not killed in a
        # speculative race, not failed by a fault — contribute output
        # and job counters; that keeps both byte-identical between a
        # fault-free run and any survivable chaos run (retry visibility
        # lives in the obs registry's task.attempts counters instead).
        map_outputs: List[List[List[Tuple[object, object]]]] = []
        surviving: List[ScheduledTask] = []
        for task, payload in zip(tasks, attempt_payloads):
            if not task.produced_output or payload is None:
                continue
            surviving.append(task)
            map_outputs.append(payload[0])
            counters.merge(payload[1])
        map_metrics = Metrics()
        for task in tasks:
            map_metrics.add(task.metrics)
        map_makespan = makespan(tasks)
        map_time = sum(t.duration for t in tasks) / cluster.total_map_slots
        # Job counters carry only *logical* facts (tasks, records) so a
        # survivable fault plan leaves them byte-identical to a
        # fault-free run.  Physical placement is run-dependent under
        # faults (a retry may land remote); it lives in the obs
        # registry (``scheduler.assignments{placement=...}``) and in
        # ``JobResult.data_local_fraction``.
        counters.increment("map.tasks", len(surviving))
        counters.increment(
            "map.records", sum(t.metrics.records for t in surviving)
        )
        obs.registry.counter("map.data_local_tasks").inc(
            sum(1 for t in surviving if t.data_local)
        )

        collect: Optional[CollectOutputFormat] = None
        output_format = job.output_format
        if output_format is None:
            collect = CollectOutputFormat()
            output_format = collect

        reduce_makespan, reduce_metrics = self.run_reduce_phase(
            job, map_outputs, output_format, counters, map_makespan
        )

        total_time = (
            map_makespan + reduce_makespan + cluster.job_overhead_seconds
        )
        return JobResult(
            job_name=job.name,
            map_time=map_time,
            map_makespan=map_makespan,
            reduce_time=reduce_makespan,
            total_time=total_time,
            bytes_read=map_metrics.total_bytes_read,
            map_metrics=map_metrics,
            reduce_metrics=reduce_metrics,
            counters=counters,
            tasks=tasks,
            output=collect.collected if collect is not None else [],
            attempts=len(tasks),
            failed_tasks=sum(1 for t in tasks if t.failed),
        )

    # -- phases -----------------------------------------------------------

    def execute_map_attempt(
        self, job: Job, split: InputSplit, node: Optional[int]
    ) -> Tuple[Metrics, List[List[Tuple[object, object]]], Counters]:
        """Run one map attempt for real on ``node``.

        Returns ``(metrics, partitions, counters)`` for a completed
        attempt.  A :class:`FaultError` raised mid-read is re-raised
        with the attempt's partial metrics attached — the work still
        happened on the cluster even though it produced no output.

        This is the unit of execution shared by the single-job
        scheduler and the multi-job :mod:`repro.cluster` manager.
        """
        ctx = TaskContext(
            node=node,
            cost=job.cost,
            io_buffer_size=self.fs.cluster.io_buffer_size,
            obs=self.obs,
        )
        try:
            partitions = self._run_map_task(job, split, ctx)
        except FaultError as exc:
            if exc.metrics is None:
                exc.metrics = ctx.metrics
            raise
        return ctx.metrics, partitions, ctx.counters

    def run_reduce_phase(
        self,
        job: Job,
        map_outputs: List[List[List[Tuple[object, object]]]],
        output_format,
        counters: Counters,
        start_time: float,
    ) -> Tuple[float, Metrics]:
        """Shuffle/sort/reduce (or final write for map-only jobs).

        ``start_time`` is the simulated time the map phase finished —
        for a single job that is its map makespan; under the cluster
        manager it is the job's position on the shared timeline.
        Returns ``(reduce_makespan, reduce_metrics)``.
        """
        obs = self.obs
        cluster = self.fs.cluster
        reduce_metrics = Metrics()
        if job.is_map_only:
            # Map output goes straight to the output format; writing cost
            # is already inside each task's metrics budget in Hadoop, but
            # for map-only jobs we charge it to the reduce side as zero.
            writer_ctx = TaskContext(
                node=None, cost=job.cost,
                io_buffer_size=cluster.io_buffer_size, obs=obs,
            )
            writer = output_format.open_writer(self.fs, 0, writer_ctx)
            for partitions in map_outputs:
                for partition in partitions:
                    for key, value in partition:
                        writer.write(key, value)
            writer.close()
            return 0.0, reduce_metrics

        durations = []
        with obs.tracer.span(
            "reduce_phase", kind="phase", reducers=job.num_reducers,
            metrics=reduce_metrics,
        ):
            obs.emit(
                "phase.start", sim_time=start_time, phase="reduce",
                job=job.name, reducers=job.num_reducers,
            )
            for r in range(job.num_reducers):
                ctx = TaskContext(
                    node=None,
                    cost=job.cost,
                    io_buffer_size=cluster.io_buffer_size,
                    obs=obs,
                )
                obs.emit(
                    "task.start", sim_time=start_time,
                    kind="reduce", partition=r,
                )
                self._run_reduce_task(
                    job, r, map_outputs, output_format, ctx
                )
                counters.merge(ctx.counters)
                reduce_metrics.add(ctx.metrics)
                durations.append(ctx.metrics.task_time)
                obs.registry.histogram(
                    "task.duration.seconds", TASK_DURATION_BOUNDARIES,
                    kind="reduce",
                ).observe(ctx.metrics.task_time)
                obs.tracer.record_span(
                    "reduce_task",
                    kind="task",
                    sim_start=0.0,
                    sim_duration=ctx.metrics.task_time,
                    sim_io=ctx.metrics.io_time,
                    sim_cpu=ctx.metrics.cpu_time,
                    partition=r,
                    records=ctx.metrics.records,
                    net_bytes=ctx.metrics.net_bytes,
                )
                obs.emit(
                    "task.finish", sim_time=ctx.metrics.task_time,
                    kind="reduce", partition=r, outcome="ok",
                    duration=ctx.metrics.task_time,
                )
            reduce_makespan = simulate_wave_makespan(
                durations, cluster.total_reduce_slots
            )
            obs.emit(
                "phase.finish",
                sim_time=start_time + reduce_makespan,
                phase="reduce", job=job.name,
                makespan=reduce_makespan,
            )
        counters.increment("reduce.tasks", job.num_reducers)
        return reduce_makespan, reduce_metrics

    def _run_map_task(
        self, job: Job, split: InputSplit, ctx: TaskContext
    ) -> List[List[Tuple[object, object]]]:
        """Run one map task; returns its output partitioned for reducers."""
        num_partitions = max(job.num_reducers, 1)
        partitions: List[List[Tuple[object, object]]] = [
            [] for _ in range(num_partitions)
        ]

        def emit(key, value):
            index = (
                _stable_hash(key) % num_partitions if num_partitions > 1 else 0
            )
            partitions[index].append((key, value))

        # Install the operator profiler *before* opening the reader:
        # ColumnReader caches ``ctx.profiler`` at construction time.
        profiler = NULL_PROFILER
        if ctx.obs.enabled:
            profiler = OperatorProfiler(
                "vectorized" if job.batch_op is not None else "scalar",
                ctx.metrics,
                meta={"job": job.name, "split": split.label},
                clock=getattr(ctx.obs.tracer, "_clock", None) or _WALL_CLOCK,
            ).install()
            ctx.profiler = profiler
        try:
            reader = job.input_format.open_reader(self.fs, split, ctx)
            try:
                if job.batch_op is not None and hasattr(reader, "read_batch"):
                    from repro.core.vector import run_batch_map

                    run_batch_map(job, reader, emit, ctx)
                else:
                    switch = profiler.switch
                    for key, value in reader:
                        job.cost.charge_map_invoke(ctx.metrics)
                        # The scalar mapper is where lazy cells settle.
                        switch("materialize")
                        job.mapper(key, value, emit, ctx)
                        switch("scan")
            finally:
                reader.close()

            if job.combiner is not None and not job.is_map_only:
                profiler.switch("aggregate")
                partitions = [
                    self._combine(job, ctx, partition)
                    for partition in partitions
                ]

            # Spilling map output to local disk before the shuffle.
            spill_bytes = sum(
                estimate_pair_size(k, v) for p in partitions for k, v in p
            )
            if spill_bytes:
                self.fs.cluster.disk.charge_write(ctx.metrics, spill_bytes)
                ctx.obs.registry.counter("mr.spill.bytes").inc(spill_bytes)
            return partitions
        finally:
            # Always restore the vecdecode sink, even on a FaultError.
            ctx.profiler = NULL_PROFILER
            profiler.finish(ctx.obs)

    def _combine(
        self, job: Job, ctx: TaskContext, pairs: List[Tuple[object, object]]
    ) -> List[Tuple[object, object]]:
        grouped: Dict[object, List[object]] = {}
        for key, value in pairs:
            grouped.setdefault(key, []).append(value)
        out: List[Tuple[object, object]] = []
        for key, values in grouped.items():
            job.combiner(key, iter(values), lambda k, v: out.append((k, v)), ctx)
        return out

    def _run_reduce_task(
        self,
        job: Job,
        partition_index: int,
        map_outputs,
        output_format,
        ctx: TaskContext,
    ) -> None:
        pairs: List[Tuple[object, object]] = []
        shuffle_bytes = 0
        for partitions in map_outputs:
            for key, value in partitions[partition_index]:
                pairs.append((key, value))
                shuffle_bytes += estimate_pair_size(key, value)
        if shuffle_bytes:
            self.fs.cluster.network.charge_shuffle(ctx.metrics, shuffle_bytes)
            ctx.obs.registry.counter("mr.shuffle.bytes").inc(shuffle_bytes)
        pairs.sort(key=lambda kv: _sort_key(kv[0]))
        if pairs:
            comparisons = len(pairs) * max(1, int(math.log2(len(pairs)) + 1))
            ctx.metrics.charge_cpu(comparisons * _SORT_SECONDS_PER_COMPARE)
        writer = output_format.open_writer(self.fs, partition_index, ctx)
        i = 0
        while i < len(pairs):
            key = pairs[i][0]
            j = i
            while j < len(pairs) and pairs[j][0] == key:
                j += 1
            values = (pairs[k][1] for k in range(i, j))
            job.reducer(key, values, writer.write, ctx)
            ctx.counters.increment("reduce.groups")
            i = j
        writer.close()


def _stable_hash(key) -> int:
    """A process-independent partitioning hash.

    Python's built-in ``hash`` is salted per process (PYTHONHASHSEED),
    which would make reducer assignment — and therefore per-reducer
    shuffle metrics — vary between runs of the same job.
    """
    return zlib.crc32(repr(key).encode("utf-8"))


def _sort_key(key):
    """A total order over heterogeneous shuffle keys."""
    return (type(key).__name__, repr(key)) if not isinstance(key, str) else ("str", key)


def run_job(fs: FileSystem, job: Job, faults=None) -> JobResult:
    """Convenience wrapper: ``JobRunner(fs, faults=faults).run(job)``.

    ``faults`` may be a :class:`~repro.faults.FaultPlan` or a
    pre-built :class:`~repro.faults.FaultInjector`; when omitted the
    ambient plan (``FaultPlan.activate()``) applies, if any.
    """
    return JobRunner(fs, faults=faults).run(job)
