"""Core MapReduce abstractions: splits, readers, formats, task context.

These mirror Hadoop's extensibility points (Section 2 of the paper):
an ``InputFormat`` generates splits for the scheduler and record readers
for map tasks; an ``OutputFormat`` turns reduce output into files.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.mapreduce.counters import Counters
from repro.obs import NULL_PROFILER, Observability, current_obs
from repro.sim.cost import CpuCostModel
from repro.sim.metrics import Metrics


class InputSplit:
    """A unit of map-task scheduling (footnote 1 of the paper).

    ``locations`` lists the datanodes on which the *entire* split is
    local; the scheduler prefers them, and a task placed elsewhere pays
    remote-read costs through the stream layer.
    """

    def __init__(self, length: int, locations: List[int], label: str = "") -> None:
        self.length = length
        self.locations = list(locations)
        self.label = label

    def __repr__(self) -> str:
        return (
            f"InputSplit({self.label or '?'}, {self.length}B, "
            f"nodes={self.locations})"
        )


class TaskContext:
    """Everything a running task charges against and reads config from."""

    def __init__(
        self,
        node: Optional[int],
        cost: CpuCostModel,
        io_buffer_size: int,
        counters: Optional[Counters] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.node = node
        self.cost = cost
        self.metrics = Metrics()
        self.io_buffer_size = io_buffer_size
        # Resolved once per task: the no-op NULL_OBS unless a flight
        # recorder is active, so instrumented readers stay zero-cost.
        self.obs = obs if obs is not None else current_obs()
        self.counters = counters if counters is not None else Counters()
        # Swapped for an OperatorProfiler while a scan is being
        # profiled; readers attribute decoded/skipped cells through it.
        self.profiler = NULL_PROFILER

    def charge_predicate(self, text) -> None:
        """Charge a string/bytes predicate evaluated in user map code."""
        self.cost.charge_predicate(self.metrics, len(text))


class RecordReader:
    """Iterates the (key, value) pairs of one split.

    Subclasses implement :meth:`read_next`, returning ``None`` at end of
    split.  Iteration counts records into the task metrics.
    """

    def __init__(self, ctx: TaskContext) -> None:
        self.ctx = ctx

    def read_next(self) -> Optional[Tuple[object, object]]:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (optional)."""

    def __iter__(self) -> Iterator[Tuple[object, object]]:
        while True:
            pair = self.read_next()
            if pair is None:
                return
            self.ctx.metrics.records += 1
            yield pair


class InputFormat:
    """Split generation + record reading for one on-disk format."""

    def get_splits(self, fs, cluster) -> List[InputSplit]:
        raise NotImplementedError

    def open_reader(self, fs, split: InputSplit, ctx: TaskContext) -> RecordReader:
        raise NotImplementedError


class RecordWriter:
    """Writes a reduce task's (key, value) output."""

    def write(self, key, value) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and finalize (optional)."""


class OutputFormat:
    """Turns reducer output into files (or an in-memory sink for tests)."""

    def open_writer(self, fs, task_index: int, ctx: TaskContext) -> RecordWriter:
        raise NotImplementedError


class ListRecordReader(RecordReader):
    """A reader over pre-materialized pairs (testing and tiny inputs)."""

    def __init__(self, ctx: TaskContext, pairs: Iterable[Tuple[object, object]]):
        super().__init__(ctx)
        self._iter = iter(pairs)

    def read_next(self):
        return next(self._iter, None)
