"""Dataset sorting: clustering a CIF dataset to make zone maps bite.

Zone maps (``repro.core.stats``) can only prune split-directories whose
value ranges are narrow — which they are when the dataset is clustered
on the predicate column.  This tool is Hadoop's classic
sample-partition-sort recipe:

1. sample the sort key to build range boundaries
   (TotalOrderPartitioner-style),
2. run a MapReduce job whose mapper emits (key, record) and whose
   partitioner routes by range, so each reducer receives one sorted
   key range,
3. write each reducer's output as consecutive CIF split-directories.

The result is a dataset whose per-directory min/max are tight and
disjoint, so range predicates prune most of it.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.cof import ColumnOutputFormat
from repro.core.columnio import ColumnSpec
from repro.core.lazy import LazyRecord
from repro.mapreduce.types import InputFormat, TaskContext
from repro.serde.schema import Schema, SchemaError
from repro.sim.cost import CpuCostModel
from repro.sim.metrics import Metrics

#: split-directory index stride reserved per output partition
PARTITION_STRIDE = 100_000


@dataclass
class SortReport:
    """What a sort produced and cost."""

    records: int
    partitions: int
    boundaries: List[object]
    metrics: Metrics


def _read_all(fs, input_format: InputFormat, ctx: TaskContext) -> List:
    records = []
    for split in input_format.get_splits(fs, fs.cluster):
        reader = input_format.open_reader(fs, split, ctx)
        try:
            for _, record in reader:
                if isinstance(record, LazyRecord):
                    record = record.materialize()
                records.append(record)
        finally:
            reader.close()
    return records


def sample_boundaries(values: List, partitions: int) -> List:
    """Range boundaries splitting ``values`` into ``partitions`` parts.

    Returns ``partitions - 1`` cut points; partition *i* holds keys in
    ``(boundary[i-1], boundary[i]]`` (ends open).
    """
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    if partitions == 1 or not values:
        return []
    ordered = sorted(values)
    return [
        ordered[(len(ordered) * i) // partitions]
        for i in range(1, partitions)
    ]


def partition_of(boundaries: List, key) -> int:
    """Which range partition ``key`` falls into."""
    return bisect.bisect_left(boundaries, key)


def sort_dataset(
    fs,
    input_format: InputFormat,
    schema: Schema,
    by: str,
    output_dataset: str,
    partitions: int = 4,
    specs: Optional[Dict[str, ColumnSpec]] = None,
    split_bytes: int = 64 * 1024 * 1024,
    sample_fraction: float = 0.1,
) -> SortReport:
    """Write ``output_dataset`` as a CIF dataset clustered on ``by``."""
    field = schema.field(by)
    if not field.schema.is_primitive:
        raise SchemaError(f"cannot sort by non-primitive column {by!r}")
    ctx = TaskContext(
        node=None, cost=CpuCostModel(), io_buffer_size=fs.cluster.io_buffer_size
    )
    records = _read_all(fs, input_format, ctx)

    # 1. sample the key space (deterministic striding, no RNG needed).
    stride = max(1, int(1 / sample_fraction)) if sample_fraction < 1 else 1
    sample = [r.get(by) for r in records[::stride]]
    boundaries = sample_boundaries(sample, partitions)

    # 2. range-partition, 3. per-partition sort + write.
    buckets: List[List] = [[] for _ in range(partitions)]
    for record in records:
        buckets[partition_of(boundaries, record.get(by))].append(record)
    cof = ColumnOutputFormat(schema, specs=specs, split_bytes=split_bytes)
    for index, bucket in enumerate(buckets):
        bucket.sort(key=lambda r: r.get(by))
        if bucket:
            cof.write(
                fs, output_dataset, bucket,
                metrics=ctx.metrics,
                first_split_index=index * PARTITION_STRIDE,
            )
    return SortReport(
        records=len(records),
        partitions=partitions,
        boundaries=boundaries,
        metrics=ctx.metrics,
    )
