"""Format conversion: read through any InputFormat, write any layout.

Section 4.2: "Data may arrive into Hadoop in any format.  Once it is in
HDFS, a parallel loader is used to load the data using COF."  This is
that loader, generalized to every format in the repository, with the
read and write costs accounted the way Table 2 reports load times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.cof import write_dataset
from repro.core.columnio import ColumnSpec
from repro.core.lazy import LazyRecord
from repro.formats.rcfile import write_rcfile
from repro.formats.sequence_file import write_sequence_file
from repro.formats.text import write_text
from repro.mapreduce.types import InputFormat, TaskContext
from repro.serde.schema import Schema
from repro.sim.cost import CpuCostModel

TARGETS = ("cif", "rcfile", "seq", "text")


@dataclass
class ConversionReport:
    """What a conversion read, wrote, and (simulatedly) cost."""

    records: int
    bytes_read: int
    bytes_written: int
    load_time: float


def convert_dataset(
    fs,
    input_format: InputFormat,
    schema: Schema,
    target: str,
    output_path: str,
    specs: Optional[Dict[str, ColumnSpec]] = None,
    default_spec: Optional[ColumnSpec] = None,
    split_bytes: int = 64 * 1024 * 1024,
    row_group_bytes: int = 4 * 1024 * 1024,
    compression: str = "none",
    codec: Optional[str] = None,
) -> ConversionReport:
    """Convert a dataset to ``target`` ('cif', 'rcfile', 'seq', 'text').

    Reads every record through ``input_format`` (charging read I/O and
    deserialization), writes ``output_path`` in the target layout
    (charging write I/O), and returns a :class:`ConversionReport`.
    """
    if target not in TARGETS:
        raise ValueError(f"unknown target {target!r}; one of {TARGETS}")
    ctx = TaskContext(
        node=None, cost=CpuCostModel(), io_buffer_size=fs.cluster.io_buffer_size
    )
    metrics = ctx.metrics
    records = []
    for split in input_format.get_splits(fs, fs.cluster):
        reader = input_format.open_reader(fs, split, ctx)
        try:
            for _, record in reader:
                # Lazy records are reused between rows; take a stable copy.
                if isinstance(record, LazyRecord):
                    record = record.materialize()
                records.append(record)
        finally:
            reader.close()
    read_bytes = metrics.total_bytes_read
    disk_before_write = metrics.disk_bytes

    if target == "cif":
        write_dataset(
            fs, output_path, schema, records,
            specs=specs, default_spec=default_spec,
            split_bytes=split_bytes, metrics=metrics,
        )
    elif target == "rcfile":
        write_rcfile(
            fs, output_path, schema, records,
            row_group_bytes=row_group_bytes, codec=codec, metrics=metrics,
        )
    elif target == "seq":
        write_sequence_file(
            fs, output_path, schema, records,
            compression=compression, metrics=metrics,
        )
    else:
        write_text(fs, output_path, schema, records, metrics=metrics)

    return ConversionReport(
        records=len(records),
        bytes_read=read_bytes,
        bytes_written=metrics.disk_bytes - disk_before_write,
        load_time=metrics.task_time,
    )
