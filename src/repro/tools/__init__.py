"""Operational tooling on top of the library.

- :mod:`repro.tools.convert` — the 'parallel loader' of Section 4.2,
  generalized: convert a dataset between any two storage formats with
  full cost accounting (what Table 2 measures for SEQ -> CIF/RCFile).
- :mod:`repro.tools.sort` — sample-partition-sort a dataset on one
  column so split-directory zone maps become selective.
"""

from repro.tools.convert import ConversionReport, convert_dataset
from repro.tools.sort import SortReport, sort_dataset

__all__ = [
    "ConversionReport",
    "SortReport",
    "convert_dataset",
    "sort_dataset",
]
