"""Binary encoding and decoding of schema-typed datums.

The wire format follows Avro's binary encoding closely:

- ``int``/``long``/``time``: zig-zag varints,
- ``double``: 8 little-endian bytes,
- ``boolean``: one byte,
- ``string``/``bytes``: varint length + raw bytes,
- ``array``: varint count + elements,
- ``map``: varint count + (string key, value) pairs,
- ``record``: field values in schema order, no per-field framing.

:class:`BinaryDecoder` has two read paths: :meth:`read_datum`, which
materializes a value and charges full deserialization cost, and
:meth:`skip_datum`, which walks the structure without materializing and
charges only the (cheaper) skip cost — the distinction lazy record
construction exploits (Section 5).
"""

from __future__ import annotations

from typing import Optional

from repro.serde.record import Record
from repro.serde.schema import Schema, SchemaError
from repro.sim.cost import CpuCostModel
from repro.sim.metrics import Metrics
from repro.util.buffers import ByteReader, ByteWriter


class BinaryEncoder:
    """Serializes datums into a :class:`~repro.util.buffers.ByteWriter`."""

    def __init__(self, writer: Optional[ByteWriter] = None) -> None:
        self.writer = writer if writer is not None else ByteWriter()

    def write_datum(self, schema: Schema, value) -> None:
        kind = schema.kind
        out = self.writer
        if kind == "int" or kind == "long" or kind == "time":
            out.write_zigzag(value)
        elif kind == "double":
            out.write_double(value)
        elif kind == "boolean":
            out.write_byte(1 if value else 0)
        elif kind == "string":
            out.write_string(value)
        elif kind == "bytes":
            out.write_len_prefixed(value)
        elif kind == "array":
            out.write_varint(len(value))
            for item in value:
                self.write_datum(schema.items, item)
        elif kind == "map":
            out.write_varint(len(value))
            for key, val in value.items():
                out.write_string(key)
                self.write_datum(schema.values, val)
        elif kind == "record":
            values = (
                value.values_in_order()
                if isinstance(value, Record)
                else [value[f.name] for f in schema.fields]
            )
            if len(values) != len(schema.fields):
                raise SchemaError(
                    f"record value has {len(values)} fields, "
                    f"schema has {len(schema.fields)}"
                )
            for field, fval in zip(schema.fields, values):
                self.write_datum(field.schema, fval)
        else:  # pragma: no cover - Schema constructor rejects unknown kinds
            raise SchemaError(f"cannot encode kind {kind!r}")

    def getvalue(self) -> bytes:
        return self.writer.getvalue()


def encode_datum(schema: Schema, value) -> bytes:
    """Convenience one-shot encode."""
    enc = BinaryEncoder()
    enc.write_datum(schema, value)
    return enc.getvalue()


class BinaryDecoder:
    """Deserializes (or skips) datums, charging simulated CPU cost.

    ``cost`` and ``metrics`` are optional: loaders and tests decode
    without accounting, while record readers inside a MapReduce task pass
    the task's cost model and metrics.
    """

    def __init__(
        self,
        reader: ByteReader,
        cost: Optional[CpuCostModel] = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.reader = reader
        self.cost = cost
        self.metrics = metrics

    # -- decode ---------------------------------------------------------

    def read_datum(self, schema: Schema):
        """Decode one datum, charging full deserialization cost."""
        start = self.reader.offset
        value = self._read(schema)
        if self.metrics is not None:
            self.cost.charge_raw_scan(self.metrics, self.reader.offset - start)
        return value

    def _read(self, schema: Schema):
        kind = schema.kind
        r = self.reader
        m = self.metrics
        c = self.cost
        if kind == "int":
            if m is not None:
                c.charge_int(m)
            return r.read_zigzag()
        if kind == "long" or kind == "time":
            if m is not None:
                c.charge_long(m)
            return r.read_zigzag()
        if kind == "double":
            if m is not None:
                c.charge_double(m)
            return r.read_double()
        if kind == "boolean":
            if m is not None:
                c.charge_bool(m)
            return r.read_byte() != 0
        if kind == "string":
            raw = r.read_len_prefixed()
            if m is not None:
                c.charge_string(m, len(raw))
            return raw.decode("utf-8")
        if kind == "bytes":
            raw = r.read_len_prefixed()
            if m is not None:
                c.charge_bytes(m, len(raw))
            return raw
        if kind == "array":
            count = r.read_varint()
            if m is not None:
                c.charge_array(m, count)
            return [self._read(schema.items) for _ in range(count)]
        if kind == "map":
            count = r.read_varint()
            if m is not None:
                c.charge_map(m, count)
            out = {}
            for _ in range(count):
                raw_key = r.read_len_prefixed()
                if m is not None:
                    c.charge_string(m, len(raw_key))
                out[raw_key.decode("utf-8")] = self._read(schema.values)
            return out
        if kind == "record":
            if m is not None:
                c.charge_record(m)
            rec = Record(schema)
            for field in schema.fields:
                rec.put(field.name, self._read(field.schema))
            return rec
        raise SchemaError(f"cannot decode kind {kind!r}")  # pragma: no cover

    # -- skip -----------------------------------------------------------

    def skip_datum(self, schema: Schema) -> int:
        """Skip one datum without materializing it; returns bytes skipped.

        The byte structure still has to be walked (variable-length fields
        carry their lengths inline), so skipping is not free — it is
        charged at ``skip_fraction`` of the decode cost, with no object
        creation.  This models the paper's observation that a column file
        *not* in skip-list format yields "no deserialization or I/O
        savings" beyond avoided object churn.
        """
        start = self.reader.offset
        if self.metrics is not None and self.cost is not None:
            scratch = Metrics()
            self._skip(schema, scratch)
            self.cost.charge_raw_scan(scratch, self.reader.offset - start)
            self.metrics.charge_cpu(self.cost.skip_discount(scratch.cpu_time))
        else:
            self._skip(schema, None)
        return self.reader.offset - start

    def _skip(self, schema: Schema, scratch: Optional[Metrics]) -> None:
        """Walk one datum's byte structure without building objects.

        Charges the *decode-equivalent* cost into ``scratch``; the caller
        discounts it by ``skip_fraction``.
        """
        kind = schema.kind
        r = self.reader
        c = self.cost
        if kind == "int":
            r.read_zigzag()
            if scratch is not None:
                c.charge_int(scratch)
        elif kind == "long" or kind == "time":
            r.read_zigzag()
            if scratch is not None:
                c.charge_long(scratch)
        elif kind == "double":
            r.skip(8)
            if scratch is not None:
                c.charge_double(scratch)
        elif kind == "boolean":
            r.skip(1)
            if scratch is not None:
                c.charge_bool(scratch)
        elif kind == "string":
            n = r.skip_len_prefixed()
            if scratch is not None:
                c.charge_string(scratch, n)
        elif kind == "bytes":
            n = r.skip_len_prefixed()
            if scratch is not None:
                c.charge_bytes(scratch, n)
        elif kind == "array":
            count = r.read_varint()
            if scratch is not None:
                c.charge_array(scratch, count)
            for _ in range(count):
                self._skip(schema.items, scratch)
        elif kind == "map":
            count = r.read_varint()
            if scratch is not None:
                c.charge_map(scratch, count)
            for _ in range(count):
                n = r.skip_len_prefixed()
                if scratch is not None:
                    c.charge_string(scratch, n)
                self._skip(schema.values, scratch)
        elif kind == "record":
            if scratch is not None:
                c.charge_record(scratch)
            for field in schema.fields:
                self._skip(field.schema, scratch)
        else:  # pragma: no cover
            raise SchemaError(f"cannot skip kind {kind!r}")


def decode_datum(schema: Schema, data: bytes):
    """Convenience one-shot decode (no cost accounting)."""
    return BinaryDecoder(ByteReader(data)).read_datum(schema)
