"""Avro-like serialization framework (Appendix A of the paper).

The paper assumes MapReduce jobs are written against a generic
``Record`` abstraction provided by a serialization framework (Avro in
their experiments; Thrift and Protocol Buffers would work the same way).
This package is that substrate:

- :mod:`repro.serde.schema` — schemas with the complex types the paper
  cares about (arrays, maps, nested records; Figure 2's ``URLInfo``),
- :mod:`repro.serde.record` — the generic ``get(name)`` record,
- :mod:`repro.serde.binary` — compact binary encoding (zig-zag varints,
  length-prefixed strings/bytes, counted containers) with decode *and*
  skip paths, both charged through the CPU cost model,
- :mod:`repro.serde.text` — the delimited text encoding used by the TXT
  baseline.
"""

from repro.serde.binary import BinaryDecoder, BinaryEncoder
from repro.serde.record import Record
from repro.serde.schema import Field, Schema, SchemaError

__all__ = [
    "BinaryDecoder",
    "BinaryEncoder",
    "Field",
    "Record",
    "Schema",
    "SchemaError",
]
