"""The generic Record abstraction (Appendix A).

MapReduce jobs in the paper access record attributes through
``rec.get(name)`` on a generic record, regardless of which InputFormat
produced it.  :class:`Record` is that interface; it is implemented
eagerly here and lazily by :class:`repro.core.lazy.LazyRecord` — map
functions cannot tell the difference, which is the point (Section 5.1).
"""

from __future__ import annotations

from typing import Optional

from repro.serde.schema import Schema, SchemaError


class Record:
    """An eagerly materialized record conforming to a record schema.

    Attribute access follows the paper's API: ``rec.get("url")`` returns
    the value (callers type-cast in Java; in Python they just use it).
    """

    __slots__ = ("schema", "_values")

    def __init__(self, schema: Schema, values: Optional[dict] = None) -> None:
        if schema.kind != "record":
            raise SchemaError("Record requires a record schema")
        self.schema = schema
        self._values = [None] * len(schema.fields)
        if values:
            for name, value in values.items():
                self.put(name, value)

    def get(self, name: str):
        """Return the value of field ``name`` (None if never set)."""
        return self._values[self.schema.field(name).index]

    def put(self, name: str, value) -> None:
        self._values[self.schema.field(name).index] = value

    def to_dict(self) -> dict:
        return {f.name: self._values[f.index] for f in self.schema.fields}

    def values_in_order(self) -> list:
        """Field values in schema order (used by encoders)."""
        return list(self._values)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return self.schema == other.schema and self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return f"Record({self.to_dict()!r})"
