"""Schema validation with path-accurate error messages.

The binary encoder fails on malformed values with low-level errors
("varint cannot encode negative value") that do not say *where* in a
nested record the problem sits.  ``validate`` walks a value against its
schema first and reports the offending path — what a loader wants to
show when rejecting a bad input record.
"""

from __future__ import annotations

from typing import List

from repro.serde.record import Record
from repro.serde.schema import Schema

_INT_RANGE = {
    "int": (-(2**31), 2**31 - 1),
    "long": (-(2**63), 2**63 - 1),
    "time": (0, 2**63 - 1),
}


class ValidationError(ValueError):
    """A value does not conform to its schema; ``path`` says where."""

    def __init__(self, path: List[str], message: str) -> None:
        self.path = "/".join(path) or "<root>"
        super().__init__(f"at {self.path}: {message}")


def validate(schema: Schema, value, _path=None) -> None:
    """Raise :class:`ValidationError` unless ``value`` conforms."""
    path = _path if _path is not None else []
    kind = schema.kind
    if kind in ("int", "long", "time"):
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValidationError(path, f"expected {kind}, got {_name(value)}")
        lo, hi = _INT_RANGE[kind]
        if not lo <= value <= hi:
            raise ValidationError(
                path, f"{value} outside {kind} range [{lo}, {hi}]"
            )
    elif kind == "double":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValidationError(path, f"expected double, got {_name(value)}")
    elif kind == "boolean":
        if not isinstance(value, bool):
            raise ValidationError(path, f"expected boolean, got {_name(value)}")
    elif kind == "string":
        if not isinstance(value, str):
            raise ValidationError(path, f"expected string, got {_name(value)}")
    elif kind == "bytes":
        if not isinstance(value, (bytes, bytearray)):
            raise ValidationError(path, f"expected bytes, got {_name(value)}")
    elif kind == "array":
        if not isinstance(value, (list, tuple)):
            raise ValidationError(path, f"expected array, got {_name(value)}")
        for i, item in enumerate(value):
            validate(schema.items, item, path + [f"[{i}]"])
    elif kind == "map":
        if not isinstance(value, dict):
            raise ValidationError(path, f"expected map, got {_name(value)}")
        for key, item in value.items():
            if not isinstance(key, str):
                raise ValidationError(
                    path, f"map keys must be strings, got {_name(key)}"
                )
            validate(schema.values, item, path + [key])
    elif kind == "record":
        if isinstance(value, Record):
            if value.schema != schema:
                raise ValidationError(path, "record schema mismatch")
            items = value.to_dict()
        elif isinstance(value, dict):
            missing = set(schema.field_names) - set(value)
            extra = set(value) - set(schema.field_names)
            if missing:
                raise ValidationError(path, f"missing fields {sorted(missing)}")
            if extra:
                raise ValidationError(path, f"unknown fields {sorted(extra)}")
            items = value
        else:
            raise ValidationError(path, f"expected record, got {_name(value)}")
        for field in schema.fields:
            validate(field.schema, items[field.name], path + [field.name])


def is_valid(schema: Schema, value) -> bool:
    """Non-raising form of :func:`validate`."""
    try:
        validate(schema, value)
        return True
    except ValidationError:
        return False


def _name(value) -> str:
    return type(value).__name__
