"""Batched decode and skip kernels for vectorized execution.

The scalar reference path decodes one value per method call through
:class:`~repro.serde.binary.BinaryDecoder`; these kernels decode (or
skip) runs of values in tight loops directly over the reader's
buffered window, falling back to the reader's own per-value method
whenever the window runs short.

The fallback discipline is what keeps the kernels *charge-identical*
to the scalar path: stream-level charges (disk bytes, seeks, probes)
happen inside ``StreamByteReader._require`` at refill granularity, and
a refill only happens on a shortfall.  Because the kernels consume the
identical byte sequence, shortfalls occur at the identical positions
with the identical requested sizes — so the stream sees the identical
read/seek pattern either way.  CPU charges are computed from the same
linear cost formulas, summed over the run instead of applied per
value; integer side effects (cells, objects) are exact sums, and
``cpu_time`` differs only by float re-association (covered by the
reconcile tolerance).

Skipped byte ranges are hopped with ``reader.skip`` so the stream
reader's lazy-gap resolution still elides the I/O entirely — the
kernels never fetch bytes the scalar walk would not have fetched.
"""

from __future__ import annotations

import struct

from repro.util.varint import VarintError, decode_varint

_DOUBLE = struct.Struct("<d")

_INTEGER_KINDS = ("int", "long", "time")
_PRIMITIVE_KINDS = frozenset(
    ("int", "long", "time", "double", "boolean", "string", "bytes")
)

#: Optional profiling sink (an ``obs.opprofile.OperatorProfiler``).
#: ``None`` outside profiled scans, so the only hot-path overhead is
#: one identity check per *batch* kernel call — the per-value fallback
#: notes live inside the rare shortfall branches.
_SINK = None


def profile_sink():
    """The currently-installed profiling sink (or None)."""
    return _SINK


def set_profile_sink(sink) -> None:
    """Install (or with ``None`` clear) the kernel/fallback sink."""
    global _SINK
    _SINK = sink


def _kernel(name: str) -> None:
    if _SINK is not None:
        _SINK.kernel(name)


def _fallback(reader, method: str) -> None:
    """Note one genuine window-shortfall delegation to the scalar path.

    By-design per-value delegations (e.g. double/boolean map values in
    :func:`read_maps`, which have no inline form) are deliberately NOT
    counted — the ``vecdecode.fallback.*`` counters exist to flag
    *silent loss* of a batched fast path, not its designed edges.
    """
    if _SINK is not None:
        _SINK.fallback(reader, method)


# ---------------------------------------------------------------------------
# Batched primitive reads (value lists; caller applies the charges)
# ---------------------------------------------------------------------------


def read_zigzags(reader, k: int) -> list:
    """Decode ``k`` zig-zag varints; equivalent to k ``read_zigzag()``."""
    _kernel("read_zigzags")
    out = []
    append = out.append
    buf, pos = reader._buf, reader.pos
    limit = len(buf)
    for _ in range(k):
        # Fully inline LEB128 while the window holds the whole varint;
        # running off the window edge (or a pending skip gap) defers to
        # the reader's own method, which refills exactly as the scalar
        # path would.
        folded = 0
        shift = 0
        p = pos
        while p < limit:
            b = buf[p]
            p += 1
            if b < 0x80:
                folded |= b << shift
                pos = p
                break
            folded |= (b & 0x7F) << shift
            shift += 7
        else:
            _fallback(reader, "varint")
            reader.pos = pos
            folded = reader.read_varint()
            buf, pos = reader._buf, reader.pos
            limit = len(buf)
        append(-((folded + 1) >> 1) if folded & 1 else folded >> 1)
    reader.pos = pos
    return out


def read_chunks(reader, k: int) -> list:
    """Decode ``k`` length-prefixed byte chunks (string/bytes wire form)."""
    _kernel("read_chunks")
    out = []
    append = out.append
    buf, pos = reader._buf, reader.pos
    limit = len(buf)
    for _ in range(k):
        if pos < limit and buf[pos] < 0x80:
            n = buf[pos]
            pos += 1
        else:
            try:
                n, pos = decode_varint(buf, pos)
            except VarintError:
                _fallback(reader, "varint")
                reader.pos = pos
                n = reader.read_varint()
                buf, pos = reader._buf, reader.pos
                limit = len(buf)
        end = pos + n
        if end <= limit:
            append(bytes(buf[pos:end]))
            pos = end
        else:
            _fallback(reader, "bytes")
            reader.pos = pos
            append(reader.read_bytes(n))
            buf, pos = reader._buf, reader.pos
            limit = len(buf)
    reader.pos = pos
    return out


def read_doubles(reader, k: int) -> list:
    _kernel("read_doubles")
    out = []
    append = out.append
    unpack = _DOUBLE.unpack_from
    buf, pos = reader._buf, reader.pos
    limit = len(buf)
    for _ in range(k):
        if pos + 8 <= limit:
            append(unpack(buf, pos)[0])
            pos += 8
        else:
            _fallback(reader, "double")
            reader.pos = pos
            append(reader.read_double())
            buf, pos = reader._buf, reader.pos
            limit = len(buf)
    reader.pos = pos
    return out


def read_booleans(reader, k: int) -> list:
    _kernel("read_booleans")
    out = []
    append = out.append
    buf, pos = reader._buf, reader.pos
    limit = len(buf)
    for _ in range(k):
        if pos < limit:
            append(buf[pos] != 0)
            pos += 1
        else:
            _fallback(reader, "byte")
            reader.pos = pos
            append(reader.read_byte() != 0)
            buf, pos = reader._buf, reader.pos
            limit = len(buf)
    reader.pos = pos
    return out


def _read_varint(reader):
    """One varint off the window with per-value fallback (no alias reuse)."""
    try:
        value, reader.pos = decode_varint(reader._buf, reader.pos)
        return value
    except VarintError:
        _fallback(reader, "varint")
        return reader.read_varint()


def _hop(reader, n: int) -> None:
    """Advance past ``n`` bytes; beyond the window this defers to
    ``reader.skip`` so stream readers keep their lazy-gap elision."""
    end = reader.pos + n
    if end <= len(reader._buf):
        reader.pos = end
    else:
        _fallback(reader, "skip")
        reader.skip(n)


# ---------------------------------------------------------------------------
# Batched map decode
# ---------------------------------------------------------------------------


def map_batch_supported(field_schema) -> bool:
    return (
        field_schema.kind == "map"
        and field_schema.values.kind in _PRIMITIVE_KINDS
    )


def read_maps(reader, field_schema, k: int, cost, metrics) -> list:
    """Decode ``k`` map datums with batched charges.

    Exact integer side effects and linear-sum cpu of ``k`` scalar
    ``read_datum`` calls (map container + per-entry key string +
    per-entry value + raw scan of the full span).
    """
    _kernel("read_maps")
    value_kind = field_schema.values.kind
    ints = value_kind in _INTEGER_KINDS
    profile = cost.profile
    start = reader.offset
    out = []
    append = out.append
    entries_total = 0
    key_payload = 0
    value_payload = 0  # string/bytes values only
    keys = {}  # bytes -> decoded str; map keys repeat heavily
    buf, pos = reader._buf, reader.pos
    limit = len(buf)
    for _ in range(k):
        if pos < limit and buf[pos] < 0x80:
            count = buf[pos]
            pos += 1
        else:
            try:
                count, pos = decode_varint(buf, pos)
            except VarintError:
                _fallback(reader, "varint")
                reader.pos = pos
                count = reader.read_varint()
                buf, pos = reader._buf, reader.pos
                limit = len(buf)
        entries_total += count
        item = {}
        for _ in range(count):
            if pos < limit and buf[pos] < 0x80:
                klen = buf[pos]
                pos += 1
            else:
                try:
                    klen, pos = decode_varint(buf, pos)
                except VarintError:
                    _fallback(reader, "varint")
                    reader.pos = pos
                    klen = reader.read_varint()
                    buf, pos = reader._buf, reader.pos
                    limit = len(buf)
            end = pos + klen
            if end <= limit:
                raw_key = bytes(buf[pos:end])
                pos = end
            else:
                _fallback(reader, "bytes")
                reader.pos = pos
                raw_key = reader.read_bytes(klen)
                buf, pos = reader._buf, reader.pos
                limit = len(buf)
            key_payload += klen
            if ints:
                folded = 0
                shift = 0
                p = pos
                while p < limit:
                    b = buf[p]
                    p += 1
                    if b < 0x80:
                        folded |= b << shift
                        pos = p
                        break
                    folded |= (b & 0x7F) << shift
                    shift += 7
                else:
                    _fallback(reader, "varint")
                    reader.pos = pos
                    folded = reader.read_varint()
                    buf, pos = reader._buf, reader.pos
                    limit = len(buf)
                value = (
                    -((folded + 1) >> 1) if folded & 1 else folded >> 1
                )
            elif value_kind == "double":
                # Always delegated by design (no inline double form in
                # the map walk) — deliberately not a counted fallback.
                reader.pos = pos
                value = reader.read_double()
                buf, pos = reader._buf, reader.pos
                limit = len(buf)
            elif value_kind == "boolean":
                reader.pos = pos
                value = reader.read_byte() != 0
                buf, pos = reader._buf, reader.pos
                limit = len(buf)
            else:  # string / bytes
                try:
                    vlen, pos = decode_varint(buf, pos)
                except VarintError:
                    _fallback(reader, "varint")
                    reader.pos = pos
                    vlen = reader.read_varint()
                    buf, pos = reader._buf, reader.pos
                    limit = len(buf)
                end = pos + vlen
                if end <= limit:
                    raw = bytes(buf[pos:end])
                    pos = end
                else:
                    _fallback(reader, "bytes")
                    reader.pos = pos
                    raw = reader.read_bytes(vlen)
                    buf, pos = reader._buf, reader.pos
                    limit = len(buf)
                value_payload += vlen
                value = raw.decode("utf-8") if value_kind == "string" else raw
            key = keys.get(raw_key)
            if key is None:
                key = keys[raw_key] = raw_key.decode("utf-8")
            item[key] = value
        append(item)
    reader.pos = pos
    # Container overhead + keys, summed (charge_map / charge_string).
    cpu = (
        k * profile.map_decode_base
        + entries_total * profile.map_entry
        + entries_total * profile.string_decode_base
        + key_payload * profile.string_decode_per_byte
    )
    metrics.objects += k + 2 * entries_total  # maps+entries, key strings
    metrics.cells += entries_total  # key strings
    # Values, summed per kind.
    metrics.cells += entries_total
    if value_kind == "int":
        cpu += entries_total * profile.int_decode
    elif value_kind in ("long", "time"):
        cpu += entries_total * profile.long_decode
    elif value_kind == "double":
        cpu += entries_total * profile.double_decode
    elif value_kind == "boolean":
        cpu += entries_total * profile.bool_decode
    elif value_kind == "string":
        cpu += (
            entries_total * profile.string_decode_base
            + value_payload * profile.string_decode_per_byte
        )
        metrics.objects += entries_total
    else:  # bytes
        cpu += (
            entries_total * profile.bytes_decode_base
            + value_payload * profile.bytes_decode_per_byte
        )
        metrics.objects += entries_total
    cpu += (reader.offset - start) * profile.raw_scan_per_byte
    metrics.charge_cpu(cpu)
    return out


# ---------------------------------------------------------------------------
# Batched skips
# ---------------------------------------------------------------------------


def skip_batch_supported(field_schema) -> bool:
    kind = field_schema.kind
    if kind in _PRIMITIVE_KINDS:
        return True
    if kind == "map":
        return field_schema.values.kind in _PRIMITIVE_KINDS
    if kind == "array":
        return field_schema.items.kind in _PRIMITIVE_KINDS
    return False


def _hop_varints(reader, k: int) -> None:
    buf, pos = reader._buf, reader.pos
    limit = len(buf)
    for _ in range(k):
        p = pos
        while p < limit:
            if buf[p] < 0x80:
                pos = p + 1
                break
            p += 1
        else:
            _fallback(reader, "varint")
            reader.pos = pos
            reader.read_varint()
            buf, pos = reader._buf, reader.pos
            limit = len(buf)
    reader.pos = pos


def _skip_prims(reader, kind: str, k: int, profile):
    """Hop ``k`` primitive values; returns their decode-equivalent cpu
    (excluding the raw-scan term the caller derives from the span)."""
    if kind in _INTEGER_KINDS:
        _hop_varints(reader, k)
        per = profile.int_decode if kind == "int" else profile.long_decode
        return k * per
    if kind == "double":
        _hop(reader, 8 * k)
        return k * profile.double_decode
    if kind == "boolean":
        _hop(reader, k)
        return k * profile.bool_decode
    # string / bytes: per-value length hop; the skip-equivalent string
    # charge counts prefix+payload bytes (matching BinaryDecoder._skip,
    # which charges the full skip_len_prefixed span).
    if kind == "string":
        base, per = profile.string_decode_base, profile.string_decode_per_byte
    else:
        base, per = profile.bytes_decode_base, profile.bytes_decode_per_byte
    cpu = k * base
    buf, pos = reader._buf, reader.pos
    limit = len(buf)
    for _ in range(k):
        if pos < limit and buf[pos] < 0x80:
            n = buf[pos]
            pos += 1
        else:
            try:
                n, pos = decode_varint(buf, pos)
            except VarintError:
                _fallback(reader, "varint")
                reader.pos = pos
                n = reader.read_varint()
                buf, pos = reader._buf, reader.pos
                limit = len(buf)
        end = pos + n
        if end <= limit:
            pos = end
        else:
            _fallback(reader, "skip")
            reader.pos = pos
            reader.skip(n)
            buf, pos = reader._buf, reader.pos
            limit = len(buf)
        cpu += (n + _varint_width(n)) * per  # prefix+payload span
    reader.pos = pos
    return cpu


def _varint_width(value: int) -> int:
    width = 1
    value >>= 7
    while value:
        width += 1
        value >>= 7
    return width


def _walk_maps(reader, value_kind: str, k: int, coded_keys: bool):
    """Hop ``k`` map datums in one local loop without materializing.

    Keys are length-prefixed strings (``coded_keys=False``) or varint
    dictionary ids (DCSL).  Returns ``(entries_total, key_span,
    value_span)`` where the spans count prefix+payload bytes — the
    quantities the skip cost formulas need.
    """
    ints = value_kind in _INTEGER_KINDS
    fixed = 8 if value_kind == "double" else 1 if value_kind == "boolean" else 0
    entries_total = 0
    key_span = 0
    value_span = 0
    buf, pos = reader._buf, reader.pos
    limit = len(buf)
    for _ in range(k):
        if pos < limit and buf[pos] < 0x80:
            count = buf[pos]
            pos += 1
        else:
            try:
                count, pos = decode_varint(buf, pos)
            except VarintError:
                _fallback(reader, "varint")
                reader.pos = pos
                count = reader.read_varint()
                buf, pos = reader._buf, reader.pos
                limit = len(buf)
        entries_total += count
        for _ in range(count):
            # key: dictionary id varint, or len-prefixed string
            if pos < limit and buf[pos] < 0x80:
                klen = buf[pos]
                pos += 1
            else:
                try:
                    klen, pos = decode_varint(buf, pos)
                except VarintError:
                    _fallback(reader, "varint")
                    reader.pos = pos
                    klen = reader.read_varint()
                    buf, pos = reader._buf, reader.pos
                    limit = len(buf)
            if not coded_keys:
                key_span += klen + _varint_width(klen)
                end = pos + klen
                if end <= limit:
                    pos = end
                else:
                    _fallback(reader, "skip")
                    reader.pos = pos
                    reader.skip(klen)
                    buf, pos = reader._buf, reader.pos
                    limit = len(buf)
            # value
            if ints:
                p = pos
                while p < limit:
                    if buf[p] < 0x80:
                        value_span += p + 1 - pos
                        pos = p + 1
                        break
                    p += 1
                else:
                    _fallback(reader, "varint")
                    reader.pos = pos
                    before = reader.offset
                    reader.read_varint()
                    value_span += reader.offset - before
                    buf, pos = reader._buf, reader.pos
                    limit = len(buf)
            elif fixed:
                value_span += fixed
                end = pos + fixed
                if end <= limit:
                    pos = end
                else:
                    _fallback(reader, "skip")
                    reader.pos = pos
                    reader.skip(fixed)
                    buf, pos = reader._buf, reader.pos
                    limit = len(buf)
            else:  # string / bytes value
                try:
                    vlen, pos = decode_varint(buf, pos)
                except VarintError:
                    _fallback(reader, "varint")
                    reader.pos = pos
                    vlen = reader.read_varint()
                    buf, pos = reader._buf, reader.pos
                    limit = len(buf)
                value_span += vlen + _varint_width(vlen)
                end = pos + vlen
                if end <= limit:
                    pos = end
                else:
                    _fallback(reader, "skip")
                    reader.pos = pos
                    reader.skip(vlen)
                    buf, pos = reader._buf, reader.pos
                    limit = len(buf)
    reader.pos = pos
    return entries_total, key_span, value_span


def _value_skip_cpu(value_kind, entries: int, value_span: int, profile):
    """Decode-equivalent cpu of skipping ``entries`` primitive values
    spanning ``value_span`` bytes (prefix+payload for var-length kinds)."""
    if value_kind == "int":
        return entries * profile.int_decode
    if value_kind in ("long", "time"):
        return entries * profile.long_decode
    if value_kind == "double":
        return entries * profile.double_decode
    if value_kind == "boolean":
        return entries * profile.bool_decode
    if value_kind == "string":
        return (
            entries * profile.string_decode_base
            + value_span * profile.string_decode_per_byte
        )
    return (
        entries * profile.bytes_decode_base
        + value_span * profile.bytes_decode_per_byte
    )


def skip_batch(reader, field_schema, k: int, cost, metrics) -> bool:
    """Skip ``k`` datums, charging the exact sum of ``k`` scalar
    ``skip_datum`` calls (decode-equivalent cpu at ``skip_fraction``,
    no cells/objects).  Returns False when the kind needs the generic
    per-value walk."""
    if not skip_batch_supported(field_schema):
        return False
    _kernel("skip_batch")
    kind = field_schema.kind
    profile = cost.profile
    start = reader.offset
    if kind in _PRIMITIVE_KINDS:
        cpu = _skip_prims(reader, kind, k, profile)
    elif kind == "map":
        value_kind = field_schema.values.kind
        entries_total, key_span, value_span = _walk_maps(
            reader, value_kind, k, coded_keys=False
        )
        cpu = (
            k * profile.map_decode_base
            + entries_total * profile.map_entry
            + entries_total * profile.string_decode_base
            + key_span * profile.string_decode_per_byte
            + _value_skip_cpu(value_kind, entries_total, value_span, profile)
        )
    else:  # array of primitives
        item_kind = field_schema.items.kind
        cpu = 0.0
        elements_total = 0
        for _ in range(k):
            count = _read_varint(reader)
            elements_total += count
            cpu += _skip_prims(reader, item_kind, count, profile)
        cpu += (
            k * profile.array_decode_base
            + elements_total * profile.array_element
        )
    cpu += (reader.offset - start) * profile.raw_scan_per_byte
    metrics.charge_cpu(cost.skip_discount(cpu))
    return True


def skip_dcsl_batch(reader, values_schema, k: int, cost, metrics) -> bool:
    """Skip ``k`` dictionary-coded map datums (DCSL value stream).

    Matches the scalar walk: each entry's value is skip-charged like a
    standalone ``skip_datum`` (discounted decode cpu + its own raw
    scan), and each datum's full span is raw-scanned undiscounted.
    """
    value_kind = values_schema.kind
    if value_kind not in _PRIMITIVE_KINDS:
        return False
    _kernel("skip_dcsl_batch")
    profile = cost.profile
    start = reader.offset
    entries_total, _, value_span = _walk_maps(
        reader, value_kind, k, coded_keys=True
    )
    value_cpu = (
        _value_skip_cpu(value_kind, entries_total, value_span, profile)
        + value_span * profile.raw_scan_per_byte
    )
    metrics.charge_cpu(cost.skip_discount(value_cpu))
    cost.charge_raw_scan(metrics, reader.offset - start)
    return True
