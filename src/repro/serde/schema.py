"""Schemas for records with complex types.

Supports the type system the paper's examples use (Figure 2):
primitives (``int``, ``long``, ``double``, ``boolean``, ``string``,
``bytes``, ``time``) plus ``array``, ``map`` (string keys, as in Avro)
and nested ``record`` types.

Schemas parse from a JSON-able structure (and serialize back to one),
which is how COF persists the schema file inside each split-directory.
"""

from __future__ import annotations

import json
from typing import List, Optional

PRIMITIVES = ("int", "long", "double", "boolean", "string", "bytes", "time")
COMPLEX = ("array", "map", "record")


class SchemaError(ValueError):
    """Raised for malformed schema declarations or mismatched data."""


#: sentinel distinguishing "no default" from "defaults to None"
NO_DEFAULT = object()


class Field:
    """One named field of a record schema.

    ``default`` (optional) is the value readers substitute when data
    written under an older schema lacks this field — what lets a column
    be added to a dataset without backfilling it (Section 4.3 taken one
    step further; Avro's schema-resolution rules work the same way).
    """

    __slots__ = ("name", "schema", "index", "default")

    def __init__(
        self, name: str, schema: "Schema", index: int, default=NO_DEFAULT
    ) -> None:
        self.name = name
        self.schema = schema
        self.index = index
        self.default = default

    @property
    def has_default(self) -> bool:
        return self.default is not NO_DEFAULT

    def __repr__(self) -> str:
        suffix = f", default={self.default!r}" if self.has_default else ""
        return f"Field({self.name!r}, {self.schema!r}{suffix})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Field)
            and self.name == other.name
            and self.schema == other.schema
            and (self.default == other.default
                 if self.has_default == other.has_default else False)
        )

    def __hash__(self) -> int:
        return hash((self.name, self.schema))


class Schema:
    """A parsed schema node.

    Use the class methods (:meth:`int_`, :meth:`string`, :meth:`array`,
    :meth:`map`, :meth:`record`, ...) or :meth:`parse` to construct one.
    """

    __slots__ = ("kind", "items", "values", "fields", "name", "_field_index")

    def __init__(
        self,
        kind: str,
        items: Optional["Schema"] = None,
        values: Optional["Schema"] = None,
        fields: Optional[List[Field]] = None,
        name: Optional[str] = None,
    ) -> None:
        if kind not in PRIMITIVES and kind not in COMPLEX:
            raise SchemaError(f"unknown schema kind {kind!r}")
        self.kind = kind
        self.items = items
        self.values = values
        self.fields = fields
        self.name = name
        self._field_index = (
            {f.name: f for f in fields} if fields is not None else None
        )

    # -- constructors ---------------------------------------------------

    @classmethod
    def int_(cls) -> "Schema":
        return cls("int")

    @classmethod
    def long_(cls) -> "Schema":
        return cls("long")

    @classmethod
    def double(cls) -> "Schema":
        return cls("double")

    @classmethod
    def boolean(cls) -> "Schema":
        return cls("boolean")

    @classmethod
    def string(cls) -> "Schema":
        return cls("string")

    @classmethod
    def bytes_(cls) -> "Schema":
        return cls("bytes")

    @classmethod
    def time(cls) -> "Schema":
        """Timestamp type (encoded exactly like ``long``)."""
        return cls("time")

    @classmethod
    def array(cls, items: "Schema") -> "Schema":
        return cls("array", items=items)

    @classmethod
    def map(cls, values: "Schema") -> "Schema":
        """A map with string keys (as in Avro) and ``values``-typed values."""
        return cls("map", values=values)

    @classmethod
    def record(cls, name: str, fields) -> "Schema":
        """A record schema from ``(name, Schema)`` or
        ``(name, Schema, default)`` tuples."""
        built = []
        seen = set()
        for index, field_spec in enumerate(fields):
            if len(field_spec) == 2:
                fname, fschema = field_spec
                default = NO_DEFAULT
            else:
                fname, fschema, default = field_spec
            if fname in seen:
                raise SchemaError(f"duplicate field name {fname!r}")
            seen.add(fname)
            built.append(Field(fname, fschema, index, default))
        return cls("record", fields=built, name=name)

    # -- parsing --------------------------------------------------------

    @classmethod
    def parse(cls, obj) -> "Schema":
        """Parse a schema from its JSON-able form (or a JSON string)."""
        if isinstance(obj, str):
            try:
                decoded = json.loads(obj)
            except json.JSONDecodeError:
                decoded = obj  # a bare primitive name like "int"
            if isinstance(decoded, str):
                if decoded not in PRIMITIVES:
                    raise SchemaError(f"unknown primitive {decoded!r}")
                return cls(decoded)
            obj = decoded
        if isinstance(obj, Schema):
            return obj
        if isinstance(obj, dict):
            kind = obj.get("type")
            if kind in PRIMITIVES:
                return cls(kind)
            if kind == "array":
                return cls.array(cls.parse(obj["items"]))
            if kind == "map":
                return cls.map(cls.parse(obj["values"]))
            if kind == "record":
                fields = [
                    (f["name"], cls.parse(f["type"]), f["default"])
                    if "default" in f
                    else (f["name"], cls.parse(f["type"]))
                    for f in obj["fields"]
                ]
                return cls.record(obj.get("name", "record"), fields)
            raise SchemaError(f"unknown schema type {kind!r}")
        raise SchemaError(f"cannot parse schema from {type(obj).__name__}")

    def to_obj(self):
        """The JSON-able form accepted back by :meth:`parse`."""
        if self.kind in PRIMITIVES:
            return self.kind
        if self.kind == "array":
            return {"type": "array", "items": self.items.to_obj()}
        if self.kind == "map":
            return {"type": "map", "values": self.values.to_obj()}
        fields = []
        for f in self.fields:
            entry = {"name": f.name, "type": f.schema.to_obj()}
            if f.has_default:
                entry["default"] = f.default
            fields.append(entry)
        return {"type": "record", "name": self.name, "fields": fields}

    def to_json(self) -> str:
        return json.dumps(self.to_obj())

    # -- record helpers ---------------------------------------------------

    @property
    def is_primitive(self) -> bool:
        return self.kind in PRIMITIVES

    @property
    def field_names(self) -> List[str]:
        self._require_record()
        return [f.name for f in self.fields]

    def field(self, name: str) -> Field:
        self._require_record()
        try:
            return self._field_index[name]
        except KeyError:
            raise SchemaError(
                f"record {self.name!r} has no field {name!r}"
            ) from None

    def has_field(self, name: str) -> bool:
        self._require_record()
        return name in self._field_index

    @staticmethod
    def _field_spec(f: "Field"):
        if f.has_default:
            return (f.name, f.schema, f.default)
        return (f.name, f.schema)

    def project(self, names) -> "Schema":
        """A record schema keeping only ``names``, in schema order."""
        self._require_record()
        wanted = set(names)
        missing = wanted - set(self._field_index)
        if missing:
            raise SchemaError(f"unknown fields {sorted(missing)!r}")
        kept = [self._field_spec(f) for f in self.fields if f.name in wanted]
        return Schema.record(self.name, kept)

    def with_field(
        self, name: str, schema: "Schema", default=NO_DEFAULT
    ) -> "Schema":
        """A new record schema with one field appended (Section 4.3).

        A JSON-compatible ``default`` makes the new field readable from
        split-directories written before it existed.
        """
        self._require_record()
        if name in self._field_index:
            raise SchemaError(f"field {name!r} already exists")
        specs = [self._field_spec(f) for f in self.fields]
        specs.append(
            (name, schema, default) if default is not NO_DEFAULT
            else (name, schema)
        )
        return Schema.record(self.name, specs)

    def _require_record(self) -> None:
        if self.kind != "record":
            raise SchemaError(f"{self.kind} schema has no fields")

    # -- dunder -----------------------------------------------------------

    def __repr__(self) -> str:
        if self.kind in PRIMITIVES:
            return f"Schema({self.kind})"
        if self.kind == "array":
            return f"Schema(array<{self.items!r}>)"
        if self.kind == "map":
            return f"Schema(map<{self.values!r}>)"
        return f"Schema(record {self.name} {self.field_names})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.items == other.items
            and self.values == other.values
            and self.fields == other.fields
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.kind,
                self.items,
                self.values,
                tuple(self.fields) if self.fields else None,
            )
        )
