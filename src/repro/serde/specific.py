"""Specific records: generated typed accessors (Appendix A).

Avro's compiler can generate, from a schema, a Java class with one
typed getter per attribute (``rec.getUrl()``) instead of the generic
``rec.get("url")`` + cast.  The paper notes code generation is optional
in Avro and that extending the compiler to emit precise accessors "is
not difficult" — this module is that extension for the reproduction:

    URLInfo = specific_record_class(crawl_schema())
    rec = URLInfo(url="http://...", fetchTime=0, ...)
    rec.get_url()          # typed accessor
    rec.get("url")         # still a Record: generic access works too

Generated classes subclass :class:`~repro.serde.record.Record`, so they
flow through every InputFormat/OutputFormat unchanged.
"""

from __future__ import annotations

import keyword
import re
from typing import Dict, Type

from repro.serde.record import Record
from repro.serde.schema import Field, Schema

_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")

#: Python-side types produced by the decoder, for docstrings/validation.
_PYTHON_TYPES = {
    "int": int,
    "long": int,
    "time": int,
    "double": float,
    "boolean": bool,
    "string": str,
    "bytes": bytes,
    "array": list,
    "map": dict,
    "record": Record,
}


def accessor_name(field_name: str) -> str:
    """Pythonic accessor stem for a field: ``srcUrl`` -> ``src_url``."""
    snake = _CAMEL_BOUNDARY.sub("_", field_name).lower()
    snake = re.sub(r"[^0-9a-z_]", "_", snake)
    if keyword.iskeyword(snake) or snake[0].isdigit():
        snake = "f_" + snake
    return snake


def _make_getter(field: Field):
    index = field.index
    expected = _PYTHON_TYPES[field.schema.kind]

    def getter(self):
        return self._values[index]

    getter.__name__ = f"get_{accessor_name(field.name)}"
    getter.__doc__ = (
        f"Typed accessor for field {field.name!r} "
        f"({field.schema.kind} -> {expected.__name__})."
    )
    return getter


def _make_setter(field: Field):
    index = field.index
    kind = field.schema.kind
    expected = _PYTHON_TYPES[kind]

    def setter(self, value):
        wrong_type = value is not None and not isinstance(value, expected)
        # bool subclasses int: reject it explicitly for integer fields.
        bool_as_int = kind in ("int", "long", "time") and isinstance(value, bool)
        if wrong_type or bool_as_int:
            raise TypeError(
                f"field {field.name!r} expects {expected.__name__}, "
                f"got {type(value).__name__}"
            )
        self._values[index] = value

    setter.__name__ = f"set_{accessor_name(field.name)}"
    setter.__doc__ = f"Typed setter for field {field.name!r} ({kind})."
    return setter


def specific_record_class(
    schema: Schema, class_name: str = None
) -> Type[Record]:
    """Generate a Record subclass with typed per-field accessors.

    Equivalent to running the Avro compiler over ``schema`` (Appendix
    A): each field gains ``get_<name>()`` / ``set_<name>(value)``
    methods (camelCase field names become snake_case), and the
    constructor accepts fields as keyword arguments.
    """
    schema._require_record()
    name = class_name or schema.name or "SpecificRecord"

    def __init__(self, **field_values):
        Record.__init__(self, schema)
        for field_name, value in field_values.items():
            getattr(self, f"set_{accessor_name(field_name)}")(value)

    namespace: Dict[str, object] = {
        "__init__": __init__,
        "__doc__": (
            f"Specific record for schema {name!r} "
            f"(fields: {', '.join(schema.field_names)})."
        ),
        "SCHEMA": schema,
    }
    for field in schema.fields:
        getter = _make_getter(field)
        setter = _make_setter(field)
        namespace[getter.__name__] = getter
        namespace[setter.__name__] = setter
    return type(name, (Record,), namespace)


def to_specific(record: Record, cls: Type[Record]) -> Record:
    """Rewrap a generic record as a specific one (no value copies)."""
    if record.schema != cls.SCHEMA:
        raise ValueError("record schema does not match the specific class")
    out = cls()
    out._values = record._values
    return out
