"""Delimited text encoding — the TXT baseline's record codec.

One record per line, fields separated by tabs.  Complex types use the
ad-hoc conventions real log pipelines use (and that make text files so
expensive to parse back):

- arrays: elements joined with ``,``
- maps: ``key:value`` pairs joined with ``;``
- bytes: base64

Parsing a line back charges ``text_parse_per_byte`` — the CPU cost that
made TXT 3x slower than SequenceFiles in Section 6.2.
"""

from __future__ import annotations

import base64
from typing import Optional

from repro.serde.record import Record
from repro.serde.schema import Schema, SchemaError
from repro.sim.cost import CpuCostModel
from repro.sim.metrics import Metrics

FIELD_SEP = "\t"
ITEM_SEP = ","
ENTRY_SEP = ";"
KV_SEP = ":"

_ESCAPES = {
    "\t": "\\t",
    "\n": "\\n",
    "\\": "\\\\",
    ",": "\\c",
    ";": "\\s",
    ":": "\\k",
}
_UNESCAPES = {v: k for k, v in _ESCAPES.items()}


def _escape(text: str) -> str:
    if not any(ch in text for ch in _ESCAPES):
        return text
    return "".join(_ESCAPES.get(ch, ch) for ch in text)


def _unescape(text: str) -> str:
    if "\\" not in text:
        return text
    out = []
    i = 0
    while i < len(text):
        pair = text[i:i + 2]
        if pair in _UNESCAPES:
            out.append(_UNESCAPES[pair])
            i += 2
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def _encode_value(schema: Schema, value) -> str:
    kind = schema.kind
    if kind in ("int", "long", "time"):
        return str(value)
    if kind == "double":
        return repr(float(value))
    if kind == "boolean":
        return "true" if value else "false"
    if kind == "string":
        return _escape(value)
    if kind == "bytes":
        return base64.b64encode(value).decode("ascii")
    if kind == "array":
        return ITEM_SEP.join(_encode_value(schema.items, v) for v in value)
    if kind == "map":
        return ENTRY_SEP.join(
            _escape(k) + KV_SEP + _encode_value(schema.values, v)
            for k, v in value.items()
        )
    raise SchemaError(f"text format cannot encode nested {kind!r}")


def _decode_value(schema: Schema, text: str):
    kind = schema.kind
    if kind in ("int", "long", "time"):
        return int(text)
    if kind == "double":
        return float(text)
    if kind == "boolean":
        return text == "true"
    if kind == "string":
        return _unescape(text)
    if kind == "bytes":
        return base64.b64decode(text.encode("ascii"))
    if kind == "array":
        if not text:
            return []
        return [_decode_value(schema.items, t) for t in text.split(ITEM_SEP)]
    if kind == "map":
        if not text:
            return {}
        out = {}
        for entry in text.split(ENTRY_SEP):
            key, _, val = entry.partition(KV_SEP)
            out[_unescape(key)] = _decode_value(schema.values, val)
        return out
    raise SchemaError(f"text format cannot decode nested {kind!r}")


def encode_record(schema: Schema, record) -> str:
    """Render one record as a text line (without trailing newline)."""
    values = (
        record.values_in_order()
        if isinstance(record, Record)
        else [record[f.name] for f in schema.fields]
    )
    return FIELD_SEP.join(
        _encode_value(f.schema, v) for f, v in zip(schema.fields, values)
    )


def decode_record(
    schema: Schema,
    line: str,
    cost: Optional[CpuCostModel] = None,
    metrics: Optional[Metrics] = None,
) -> Record:
    """Parse one line back into a record, charging text-parse CPU cost."""
    if cost is not None and metrics is not None:
        cost.charge_text_parse(metrics, len(line))
        metrics.objects += 1 + len(schema.fields)
    parts = line.rstrip("\n").split(FIELD_SEP)
    if len(parts) != len(schema.fields):
        raise SchemaError(
            f"line has {len(parts)} fields, schema has {len(schema.fields)}"
        )
    rec = Record(schema)
    for field, part in zip(schema.fields, parts):
        rec.put(field.name, _decode_value(field.schema, part))
    return rec
