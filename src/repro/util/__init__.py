"""Low-level utilities shared by the serialization and storage layers.

This package provides the primitives every on-disk format in the
reproduction is built from:

- variable-length integer codecs (:mod:`repro.util.varint`), matching the
  zig-zag/LEB128 encoding used by Avro and Hadoop writables, and
- growable write buffers plus positioned read buffers
  (:mod:`repro.util.buffers`).
"""

from repro.util.buffers import ByteReader, ByteWriter
from repro.util.varint import (
    decode_varint,
    decode_zigzag,
    encode_varint,
    encode_zigzag,
    varint_size,
)

__all__ = [
    "ByteReader",
    "ByteWriter",
    "decode_varint",
    "decode_zigzag",
    "encode_varint",
    "encode_zigzag",
    "varint_size",
]
