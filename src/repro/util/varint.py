"""Variable-length integer codecs.

These match the wire formats used by the serialization frameworks the
paper discusses (Avro, Thrift, Protocol Buffers) and by Hadoop's own
``WritableUtils``:

- *varint*: unsigned LEB128 — 7 payload bits per byte, the high bit marks
  continuation.
- *zigzag*: signed integers folded onto unsigned ones so that small
  magnitudes (positive or negative) stay short, then LEB128-encoded.

The codecs operate on :class:`bytearray`/:class:`bytes`-like objects and
are deliberately free of any I/O so they can be reused by every format in
:mod:`repro.formats` and :mod:`repro.core`.
"""

from __future__ import annotations

MAX_VARINT_BYTES = 10  # enough for any 64-bit value

#: the first unsigned value that no longer fits in MAX_VARINT_BYTES.
#: The encoder enforces the same ceiling the decoder does: without the
#: check, values >= 2**70 would encode into 11+ bytes that
#: :func:`decode_varint` then rejects as "varint too long" — an
#: encode/decode asymmetry that turns a bad input into a corrupt file
#: instead of an error at the write site.
_VARINT_LIMIT = 1 << (7 * MAX_VARINT_BYTES)


class VarintError(ValueError):
    """Raised when a buffer does not contain a well-formed varint."""


def encode_varint(value: int, out: bytearray) -> int:
    """Append ``value`` to ``out`` as an unsigned LEB128 varint.

    Returns the number of bytes written.  ``value`` must be >= 0 and
    fit in ``MAX_VARINT_BYTES`` bytes (i.e. < 2**70).
    """
    if value < 0:
        raise VarintError(f"varint cannot encode negative value {value}")
    if value >= _VARINT_LIMIT:
        raise VarintError(
            f"varint cannot encode {value}: needs more than "
            f"{MAX_VARINT_BYTES} bytes"
        )
    written = 0
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
            written += 1
        else:
            out.append(byte)
            return written + 1


def decode_varint(buf, pos: int = 0) -> "tuple[int, int]":
    """Decode an unsigned varint from ``buf`` starting at ``pos``.

    Returns ``(value, new_pos)``.
    """
    result = 0
    shift = 0
    start = pos
    end = len(buf)
    while True:
        if pos >= end:
            raise VarintError(f"truncated varint at offset {start}")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift >= 7 * MAX_VARINT_BYTES:
            raise VarintError(f"varint too long at offset {start}")


def encode_zigzag(value: int, out: bytearray) -> int:
    """Append a signed integer to ``out`` using zig-zag + LEB128.

    Returns the number of bytes written.
    """
    # Map ..., -2, -1, 0, 1, 2, ... onto 3, 1, 0, 2, 4, ...
    if value >= 0:
        folded = value << 1
    else:
        folded = ((-value) << 1) - 1
    return encode_varint(folded, out)


def decode_zigzag(buf, pos: int = 0) -> "tuple[int, int]":
    """Decode a zig-zag varint from ``buf``; returns ``(value, new_pos)``."""
    folded, pos = decode_varint(buf, pos)
    if folded & 1:
        return -((folded + 1) >> 1), pos
    return folded >> 1, pos


def varint_size(value: int) -> int:
    """Number of bytes :func:`encode_varint` would use for ``value``."""
    if value < 0:
        raise VarintError(f"varint cannot encode negative value {value}")
    if value >= _VARINT_LIMIT:
        raise VarintError(
            f"varint cannot encode {value}: needs more than "
            f"{MAX_VARINT_BYTES} bytes"
        )
    size = 1
    value >>= 7
    while value:
        size += 1
        value >>= 7
    return size


def zigzag_size(value: int) -> int:
    """Number of bytes :func:`encode_zigzag` would use for ``value``."""
    if value >= 0:
        return varint_size(value << 1)
    return varint_size(((-value) << 1) - 1)
