"""Terminal color handling for the CLI renderers.

All color is opt-out and conservative: ANSI sequences are emitted only
when the caller asked for them *and* nothing vetoes it.  Vetoes, in
order: an explicit ``--no-color`` flag, a non-empty ``NO_COLOR``
environment variable (https://no-color.org/), ``TERM=dumb``, and a
destination that is not a TTY.  CI logs therefore stay clean without
any per-job configuration.

Renderers take an optional :class:`Palette`; the disabled
:data:`PLAIN` palette returns its input unchanged, so library callers
that never think about color get byte-identical output.
"""

from __future__ import annotations

import os
import sys
from typing import IO, Optional

_CODES = {
    "bold": "1",
    "dim": "2",
    "red": "31",
    "green": "32",
    "yellow": "33",
    "cyan": "36",
}


class Palette:
    """Wraps text in ANSI SGR codes — or doesn't, when disabled."""

    __slots__ = ("enabled",)

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled

    def _wrap(self, code: str, text: str) -> str:
        if not self.enabled or not text:
            return text
        return f"\x1b[{code}m{text}\x1b[0m"

    def bold(self, text: str) -> str:
        return self._wrap(_CODES["bold"], text)

    def dim(self, text: str) -> str:
        return self._wrap(_CODES["dim"], text)

    def red(self, text: str) -> str:
        return self._wrap(_CODES["red"], text)

    def green(self, text: str) -> str:
        return self._wrap(_CODES["green"], text)

    def yellow(self, text: str) -> str:
        return self._wrap(_CODES["yellow"], text)

    def cyan(self, text: str) -> str:
        return self._wrap(_CODES["cyan"], text)


#: the shared disabled palette: every method is the identity
PLAIN = Palette(False)


def color_enabled(
    no_color_flag: bool = False,
    stream: Optional[IO] = None,
    env: Optional[dict] = None,
) -> bool:
    """Should ANSI color be emitted toward ``stream``?

    ``no_color_flag`` is the CLI's ``--no-color``; ``env`` is
    injectable for tests (defaults to ``os.environ``).
    """
    if no_color_flag:
        return False
    env = env if env is not None else os.environ
    if env.get("NO_COLOR"):
        return False
    if env.get("TERM") == "dumb":
        return False
    stream = stream if stream is not None else sys.stdout
    isatty = getattr(stream, "isatty", None)
    return bool(isatty and isatty())


def palette(
    no_color_flag: bool = False,
    stream: Optional[IO] = None,
    env: Optional[dict] = None,
) -> Palette:
    """A :class:`Palette` honoring ``--no-color``/``NO_COLOR``/TTY."""
    if color_enabled(no_color_flag, stream, env):
        return Palette(True)
    return PLAIN
