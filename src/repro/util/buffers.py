"""Growable write buffers and positioned read buffers.

Every on-disk format in this reproduction serializes into a
:class:`ByteWriter` and parses out of a :class:`ByteReader`.  Keeping the
primitive encode/decode operations here (instead of scattering
``struct.pack`` calls across formats) gives each format identical wire
conventions and gives tests a single seam to verify.
"""

from __future__ import annotations

import struct

from repro.util.varint import (
    decode_varint,
    decode_zigzag,
    encode_varint,
    encode_zigzag,
)

_DOUBLE = struct.Struct("<d")
_FLOAT = struct.Struct("<f")
_UINT32 = struct.Struct("<I")


class ByteWriter:
    """An append-only, growable byte buffer.

    Mirrors the append-only semantics of an HDFS output stream: data can
    only be added at the end, never rewritten.  (This restriction is what
    forces the double-buffered skip-list build described in Appendix B.3
    of the paper.)
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def position(self) -> int:
        """Current length, i.e. the offset the next write lands at."""
        return len(self._buf)

    def write_bytes(self, data) -> None:
        self._buf += data

    def write_byte(self, value: int) -> None:
        self._buf.append(value & 0xFF)

    def write_varint(self, value: int) -> None:
        encode_varint(value, self._buf)

    def write_zigzag(self, value: int) -> None:
        encode_zigzag(value, self._buf)

    def write_double(self, value: float) -> None:
        self._buf += _DOUBLE.pack(value)

    def write_float(self, value: float) -> None:
        self._buf += _FLOAT.pack(value)

    def write_uint32(self, value: int) -> None:
        self._buf += _UINT32.pack(value)

    def write_len_prefixed(self, data) -> None:
        """Write a varint length followed by the raw bytes."""
        encode_varint(len(data), self._buf)
        self._buf += data

    def write_string(self, text: str) -> None:
        """Write a UTF-8 string with a varint length prefix."""
        self.write_len_prefixed(text.encode("utf-8"))

    def getvalue(self) -> bytes:
        return bytes(self._buf)


class ByteReader:
    """A positioned reader over an immutable byte buffer."""

    # _vec_owner: the ColumnReader class name stamped by columnio, so
    # vecdecode fallback counters can be labeled by reader type.
    __slots__ = ("_buf", "pos", "_vec_owner")

    def __init__(self, data, pos: int = 0) -> None:
        self._buf = data
        self.pos = pos

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def offset(self) -> int:
        """Logical position; subclasses backed by streams may remap it."""
        return self.pos

    @property
    def remaining(self) -> int:
        return len(self._buf) - self.pos

    def at_end(self) -> bool:
        return self.pos >= len(self._buf)

    def _require(self, n: int) -> None:
        if self.pos + n > len(self._buf):
            raise EOFError(
                f"need {n} bytes at offset {self.pos}, "
                f"only {self.remaining} remain"
            )

    def read_bytes(self, n: int) -> bytes:
        self._require(n)
        out = bytes(self._buf[self.pos:self.pos + n])
        self.pos += n
        return out

    def read_byte(self) -> int:
        self._require(1)
        value = self._buf[self.pos]
        self.pos += 1
        return value

    def read_varint(self) -> int:
        value, self.pos = decode_varint(self._buf, self.pos)
        return value

    def read_zigzag(self) -> int:
        value, self.pos = decode_zigzag(self._buf, self.pos)
        return value

    def read_double(self) -> float:
        self._require(8)
        value = _DOUBLE.unpack_from(self._buf, self.pos)[0]
        self.pos += 8
        return value

    def read_float(self) -> float:
        self._require(4)
        value = _FLOAT.unpack_from(self._buf, self.pos)[0]
        self.pos += 4
        return value

    def read_uint32(self) -> int:
        self._require(4)
        value = _UINT32.unpack_from(self._buf, self.pos)[0]
        self.pos += 4
        return value

    def read_len_prefixed(self) -> bytes:
        n = self.read_varint()
        return self.read_bytes(n)

    def read_string(self) -> str:
        return self.read_len_prefixed().decode("utf-8")

    def skip(self, n: int) -> None:
        """Advance the position by ``n`` bytes without copying."""
        self._require(n)
        self.pos += n

    def skip_len_prefixed(self) -> int:
        """Skip a length-prefixed field; returns bytes skipped (incl. prefix)."""
        start = self.pos
        n = self.read_varint()
        self.skip(n)
        return self.pos - start
