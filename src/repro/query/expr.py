"""Expression trees over records.

An :class:`Expr` evaluates against a record (eager or lazy — it only
uses ``record.get``) and knows which top-level columns it touches, which
is what lets the planner push projections down without the user naming
columns.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Optional


# -- pinned comparison semantics ------------------------------------------
#
# The scalar operators below and the vectorized kernels in
# ``repro.core.vector`` must agree on every boundary value, so the
# comparison semantics are pinned here, in one place, and both layers
# route through :func:`compare_values`:
#
# - Ordering (``<``, ``<=``, ``>``, ``>=``): a NULL operand never
#   satisfies the predicate — the result is False, matching what a
#   validity bitmap implies for a vector.
# - Equality keeps Python semantics: ``None == None`` is True and
#   ``None != x`` is True for non-None ``x``.
# - NaN follows IEEE-754: every ordering comparison and ``==`` against
#   NaN is False (including NaN vs NaN); ``!=`` is True.
# - Mixed int/float pairs compare exactly (Python compares the integer
#   against the float as rationals): ``2**63 > 2.0**63 - 1`` even
#   though both round to the same double.  No operand is ever coerced
#   through ``float()``.

def cmp_lt(a, b):
    return False if a is None or b is None else a < b


def cmp_le(a, b):
    return False if a is None or b is None else a <= b


def cmp_gt(a, b):
    return False if a is None or b is None else a > b


def cmp_ge(a, b):
    return False if a is None or b is None else a >= b


def cmp_eq(a, b):
    return a == b


def cmp_ne(a, b):
    return a != b


_COMPARE_FUNCS = {
    "<": cmp_lt,
    "<=": cmp_le,
    ">": cmp_gt,
    ">=": cmp_ge,
    "==": cmp_eq,
    "!=": cmp_ne,
}


def compare_values(symbol: str, a, b) -> bool:
    """Apply one pinned comparison operator (see the table above)."""
    return _COMPARE_FUNCS[symbol](a, b)


class Expr:
    """A scalar expression over one record."""

    def __init__(
        self,
        evaluate: Callable,
        columns: FrozenSet[str],
        description: str,
    ) -> None:
        self._evaluate = evaluate
        #: top-level record columns this expression reads
        self.columns = columns
        self.description = description

    def __repr__(self) -> str:
        return f"Expr({self.description})"

    def evaluate(self, record, ctx=None):
        """Evaluate against a record (optionally charging predicate cost)."""
        return self._evaluate(record, ctx)

    # -- composition -----------------------------------------------------

    _COMPARISONS = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "=="}

    def _binary(self, other, op: Callable, symbol: str) -> "Expr":
        other = other if isinstance(other, Expr) else lit(other)

        def evaluate(record, ctx):
            return op(self.evaluate(record, ctx), other.evaluate(record, ctx))

        result = Expr(
            evaluate,
            self.columns | other.columns,
            f"({self.description} {symbol} {other.description})",
        )
        # Self-describe `column <op> literal` comparisons so the planner
        # can push them down as zone-map range predicates; conjunctions
        # concatenate both sides' constraints (an AND of prunable parts
        # is itself prunable — any unsatisfiable conjunct prunes).
        if symbol in self._COMPARISONS:
            left_col = getattr(self, "column_name", None)
            right_col = getattr(other, "column_name", None)
            if left_col is not None and hasattr(other, "literal_value"):
                result.range_constraint = (
                    left_col, symbol, other.literal_value
                )
            elif right_col is not None and hasattr(self, "literal_value"):
                result.range_constraint = (
                    right_col, self._COMPARISONS[symbol], self.literal_value
                )
            if hasattr(result, "range_constraint"):
                result.range_constraints = [result.range_constraint]
        elif symbol == "and":
            combined = list(getattr(self, "range_constraints", [])) + list(
                getattr(other, "range_constraints", [])
            )
            if combined:
                result.range_constraints = combined
        # Structural metadata for the vectorized kernel compiler
        # (repro.core.vector): which operator built this node and from
        # which operands.  Purely descriptive — evaluation still goes
        # through the closure above.
        result.op_symbol = symbol
        result.operands = (self, other)
        return result

    def __eq__(self, other):  # type: ignore[override]
        return self._binary(other, cmp_eq, "==")

    def __ne__(self, other):  # type: ignore[override]
        return self._binary(other, cmp_ne, "!=")

    def __lt__(self, other):
        return self._binary(other, cmp_lt, "<")

    def __le__(self, other):
        return self._binary(other, cmp_le, "<=")

    def __gt__(self, other):
        return self._binary(other, cmp_gt, ">")

    def __ge__(self, other):
        return self._binary(other, cmp_ge, ">=")

    def __add__(self, other):
        return self._binary(other, lambda a, b: a + b, "+")

    def __sub__(self, other):
        return self._binary(other, lambda a, b: a - b, "-")

    def __mul__(self, other):
        return self._binary(other, lambda a, b: a * b, "*")

    def __and__(self, other):
        return self._binary(other, lambda a, b: bool(a) and bool(b), "and")

    def __or__(self, other):
        return self._binary(other, lambda a, b: bool(a) or bool(b), "or")

    def __invert__(self):
        result = Expr(
            lambda record, ctx: not self.evaluate(record, ctx),
            self.columns,
            f"(not {self.description})",
        )
        result.op_symbol = "not"
        result.operands = (self,)
        return result

    def __hash__(self):
        return hash(self.description)

    # -- string / container helpers ---------------------------------------

    def contains(self, needle: str) -> "Expr":
        """Substring (or membership) test; charges predicate CPU cost."""

        def evaluate(record, ctx):
            value = self.evaluate(record, ctx)
            if ctx is not None and isinstance(value, (str, bytes)):
                ctx.charge_predicate(value)
            return needle in value

        result = Expr(
            evaluate, self.columns,
            f"{self.description} contains {needle!r}",
        )
        result.op_symbol = "contains"
        result.operands = (self,)
        result.contains_needle = needle
        return result

    def __getitem__(self, key) -> "Expr":
        """Map-key (or array-index) access: ``col('metadata')['server']``."""

        def evaluate(record, ctx):
            value = self.evaluate(record, ctx)
            if isinstance(value, dict):
                return value.get(key)
            return value[key]

        result = Expr(evaluate, self.columns, f"{self.description}[{key!r}]")
        result.op_symbol = "getitem"
        result.operands = (self,)
        result.getitem_key = key
        return result

    def length(self) -> "Expr":
        return Expr(
            lambda record, ctx: len(self.evaluate(record, ctx)),
            self.columns,
            f"len({self.description})",
        )

    def is_null(self) -> "Expr":
        result = Expr(
            lambda record, ctx: self.evaluate(record, ctx) is None,
            self.columns,
            f"{self.description} is null",
        )
        result.op_symbol = "is_null"
        result.operands = (self,)
        return result

    def apply(self, fn: Callable, name: Optional[str] = None) -> "Expr":
        """Escape hatch: apply an arbitrary Python function."""
        return Expr(
            lambda record, ctx: fn(self.evaluate(record, ctx)),
            self.columns,
            f"{name or getattr(fn, '__name__', 'fn')}({self.description})",
        )


def col(name: str) -> Expr:
    """Reference a top-level record column."""
    expr = Expr(
        lambda record, ctx: record.get(name), frozenset([name]), name
    )
    expr.column_name = name  # marks a bare column ref (for push-down)
    return expr


def lit(value) -> Expr:
    """A constant."""
    expr = Expr(lambda record, ctx: value, frozenset(), repr(value))
    expr.literal_value = value
    return expr
