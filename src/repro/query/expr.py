"""Expression trees over records.

An :class:`Expr` evaluates against a record (eager or lazy — it only
uses ``record.get``) and knows which top-level columns it touches, which
is what lets the planner push projections down without the user naming
columns.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Optional


class Expr:
    """A scalar expression over one record."""

    def __init__(
        self,
        evaluate: Callable,
        columns: FrozenSet[str],
        description: str,
    ) -> None:
        self._evaluate = evaluate
        #: top-level record columns this expression reads
        self.columns = columns
        self.description = description

    def __repr__(self) -> str:
        return f"Expr({self.description})"

    def evaluate(self, record, ctx=None):
        """Evaluate against a record (optionally charging predicate cost)."""
        return self._evaluate(record, ctx)

    # -- composition -----------------------------------------------------

    _COMPARISONS = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "=="}

    def _binary(self, other, op: Callable, symbol: str) -> "Expr":
        other = other if isinstance(other, Expr) else lit(other)

        def evaluate(record, ctx):
            return op(self.evaluate(record, ctx), other.evaluate(record, ctx))

        result = Expr(
            evaluate,
            self.columns | other.columns,
            f"({self.description} {symbol} {other.description})",
        )
        # Self-describe `column <op> literal` comparisons so the planner
        # can push them down as zone-map range predicates; conjunctions
        # concatenate both sides' constraints (an AND of prunable parts
        # is itself prunable — any unsatisfiable conjunct prunes).
        if symbol in self._COMPARISONS:
            left_col = getattr(self, "column_name", None)
            right_col = getattr(other, "column_name", None)
            if left_col is not None and hasattr(other, "literal_value"):
                result.range_constraint = (
                    left_col, symbol, other.literal_value
                )
            elif right_col is not None and hasattr(self, "literal_value"):
                result.range_constraint = (
                    right_col, self._COMPARISONS[symbol], self.literal_value
                )
            if hasattr(result, "range_constraint"):
                result.range_constraints = [result.range_constraint]
        elif symbol == "and":
            combined = list(getattr(self, "range_constraints", [])) + list(
                getattr(other, "range_constraints", [])
            )
            if combined:
                result.range_constraints = combined
        return result

    def __eq__(self, other):  # type: ignore[override]
        return self._binary(other, lambda a, b: a == b, "==")

    def __ne__(self, other):  # type: ignore[override]
        return self._binary(other, lambda a, b: a != b, "!=")

    def __lt__(self, other):
        return self._binary(other, lambda a, b: a < b, "<")

    def __le__(self, other):
        return self._binary(other, lambda a, b: a <= b, "<=")

    def __gt__(self, other):
        return self._binary(other, lambda a, b: a > b, ">")

    def __ge__(self, other):
        return self._binary(other, lambda a, b: a >= b, ">=")

    def __add__(self, other):
        return self._binary(other, lambda a, b: a + b, "+")

    def __sub__(self, other):
        return self._binary(other, lambda a, b: a - b, "-")

    def __mul__(self, other):
        return self._binary(other, lambda a, b: a * b, "*")

    def __and__(self, other):
        return self._binary(other, lambda a, b: bool(a) and bool(b), "and")

    def __or__(self, other):
        return self._binary(other, lambda a, b: bool(a) or bool(b), "or")

    def __invert__(self):
        return Expr(
            lambda record, ctx: not self.evaluate(record, ctx),
            self.columns,
            f"(not {self.description})",
        )

    def __hash__(self):
        return hash(self.description)

    # -- string / container helpers ---------------------------------------

    def contains(self, needle: str) -> "Expr":
        """Substring (or membership) test; charges predicate CPU cost."""

        def evaluate(record, ctx):
            value = self.evaluate(record, ctx)
            if ctx is not None and isinstance(value, (str, bytes)):
                ctx.charge_predicate(value)
            return needle in value

        return Expr(
            evaluate, self.columns,
            f"{self.description} contains {needle!r}",
        )

    def __getitem__(self, key) -> "Expr":
        """Map-key (or array-index) access: ``col('metadata')['server']``."""

        def evaluate(record, ctx):
            value = self.evaluate(record, ctx)
            if isinstance(value, dict):
                return value.get(key)
            return value[key]

        return Expr(evaluate, self.columns, f"{self.description}[{key!r}]")

    def length(self) -> "Expr":
        return Expr(
            lambda record, ctx: len(self.evaluate(record, ctx)),
            self.columns,
            f"len({self.description})",
        )

    def is_null(self) -> "Expr":
        return Expr(
            lambda record, ctx: self.evaluate(record, ctx) is None,
            self.columns,
            f"{self.description} is null",
        )

    def apply(self, fn: Callable, name: Optional[str] = None) -> "Expr":
        """Escape hatch: apply an arbitrary Python function."""
        return Expr(
            lambda record, ctx: fn(self.evaluate(record, ctx)),
            self.columns,
            f"{name or getattr(fn, '__name__', 'fn')}({self.description})",
        )


def col(name: str) -> Expr:
    """Reference a top-level record column."""
    expr = Expr(
        lambda record, ctx: record.get(name), frozenset([name]), name
    )
    expr.column_name = name  # marks a bare column ref (for push-down)
    return expr


def lit(value) -> Expr:
    """A constant."""
    expr = Expr(lambda record, ctx: value, frozenset(), repr(value))
    expr.literal_value = value
    return expr
