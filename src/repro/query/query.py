"""The query builder, planner, and executor.

``Q`` accumulates filters, projections and aggregations, then compiles
to one MapReduce job.  The planning decisions the paper's techniques
enable happen here, automatically:

- **projection push-down**: the union of columns referenced by any
  expression becomes the CIF projection — unreferenced column files are
  never opened;
- **late materialization**: filters are evaluated first against lazy
  records, so non-filter columns are deserialized only for records that
  survive every predicate (Section 5's LazyRecord benefit, without the
  user writing the two-phase access by hand);
- **combiners** where every aggregate is algebraic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.cif import ColumnInputFormat
from repro.core.stats import extract_range_predicates
from repro.core.vector import BatchOp, resolve_execution
from repro.mapreduce.job import Job
from repro.mapreduce.runner import JobResult, run_job
from repro.query.aggregates import Aggregate
from repro.query.expr import Expr, col

_UNGROUPED = ("__all__",)


class QueryError(ValueError):
    """Malformed query construction or execution."""


class QueryResult:
    """Rows plus the underlying job's execution report."""

    def __init__(self, rows: List[dict], job_result: JobResult) -> None:
        self.rows = rows
        self.job = job_result

    @property
    def bytes_read(self) -> int:
        return self.job.bytes_read

    @property
    def map_time(self) -> float:
        return self.job.map_time

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"QueryResult({len(self.rows)} rows)"


class Q:
    """A query over a CIF dataset (immutable builder)."""

    def __init__(self, dataset: str) -> None:
        self.dataset = dataset
        self._filters: List[Expr] = []
        self._selects: Dict[str, Expr] = {}
        self._group_by: Dict[str, Expr] = {}
        self._aggregates: Dict[str, Aggregate] = {}
        self._having: List = []       # post-aggregation row predicates
        self._order_by: Optional[Tuple[str, bool]] = None
        self._limit: Optional[int] = None
        self._num_reducers = 4

    def _copy(self) -> "Q":
        out = Q(self.dataset)
        out._filters = list(self._filters)
        out._selects = dict(self._selects)
        out._group_by = dict(self._group_by)
        out._aggregates = dict(self._aggregates)
        out._having = list(self._having)
        out._order_by = self._order_by
        out._limit = self._limit
        out._num_reducers = self._num_reducers
        return out

    # -- builder -----------------------------------------------------------

    def where(self, predicate: Expr) -> "Q":
        """Add a (conjunctive) filter."""
        out = self._copy()
        out._filters.append(predicate)
        return out

    def select(self, *columns: str, **named: Expr) -> "Q":
        """Project columns and/or named expressions (no aggregation)."""
        if self._aggregates:
            raise QueryError("select() cannot follow aggregate()")
        out = self._copy()
        for name in columns:
            out._selects[name] = col(name)
        out._selects.update(named)
        return out

    def group_by(self, *columns: str, **named: Expr) -> "Q":
        out = self._copy()
        for name in columns:
            out._group_by[name] = col(name)
        out._group_by.update(named)
        return out

    def aggregate(self, **aggregates: Aggregate) -> "Q":
        if not aggregates:
            raise QueryError("aggregate() needs at least one aggregate")
        if self._selects:
            raise QueryError("aggregate() cannot follow select()")
        out = self._copy()
        out._aggregates.update(aggregates)
        return out

    def having(self, predicate) -> "Q":
        """Filter output rows *after* aggregation.

        ``predicate`` is a plain callable over the result-row dict
        (which holds group keys and aggregate values by name)::

            .having(lambda row: row["pages"] > 10)
        """
        if not callable(predicate):
            raise QueryError("having() takes a callable over result rows")
        out = self._copy()
        out._having.append(predicate)
        return out

    def order_by(self, column: str, descending: bool = False) -> "Q":
        """Sort result rows by one output column."""
        out = self._copy()
        out._order_by = (column, descending)
        return out

    def limit(self, n: int) -> "Q":
        """Keep only the first ``n`` result rows (after any ordering)."""
        if n < 0:
            raise QueryError("limit must be >= 0")
        out = self._copy()
        out._limit = n
        return out

    def reducers(self, n: int) -> "Q":
        out = self._copy()
        out._num_reducers = n
        return out

    # -- planning -----------------------------------------------------------

    def referenced_columns(self) -> List[str]:
        """Every top-level column any expression touches."""
        referenced = set()
        for expr in self._filters:
            referenced |= expr.columns
        for expr in self._selects.values():
            referenced |= expr.columns
        for expr in self._group_by.values():
            referenced |= expr.columns
        for aggregate in self._aggregates.values():
            referenced |= aggregate.columns
        return sorted(referenced)

    def _combinable(self) -> bool:
        return all(a.combinable for a in self._aggregates.values())

    def explain(self) -> str:
        """A human-readable plan description."""
        lines = [f"scan {self.dataset} (CIF, lazy records)"]
        columns = self.referenced_columns()
        lines.append(f"  projection push-down: {columns or ['<none>']}")
        for predicate in extract_range_predicates(self._filters):
            lines.append(
                "  zone-map pruning: "
                f"{predicate.column} {predicate.op} {predicate.value!r}"
            )
        for expr in self._filters:
            lines.append(f"  filter (evaluated first): {expr.description}")
        if self._aggregates:
            keys = [e.description for e in self._group_by.values()]
            lines.append(f"  group by: {keys or ['<all rows>']}")
            for name, aggregate in self._aggregates.items():
                lines.append(f"  aggregate {name} = {aggregate.description}")
            lines.append(
                "  combiner: "
                + ("yes (all aggregates algebraic)" if self._combinable()
                   else "no (non-combinable aggregate present)")
            )
        elif self._selects:
            names = [
                f"{name}={expr.description}"
                for name, expr in self._selects.items()
            ]
            lines.append(f"  project: {names}")
        return "\n".join(lines)

    # -- execution -----------------------------------------------------------

    def run(self, fs, execution: Optional[str] = None) -> QueryResult:
        """Execute; ``execution`` picks ``"scalar"`` or ``"vectorized"``
        (``None`` defers to the ambient default — see
        :func:`repro.core.vector.set_default_execution`).  Both paths
        produce identical rows, counters, and simulated metrics; the
        vectorized one batches decode and filtering per column frame.
        """
        execution = resolve_execution(execution)
        if self._aggregates:
            return self._run_aggregation(fs, execution)
        return self._run_projection(fs, execution)

    def _input_format(self, execution: str = "scalar") -> ColumnInputFormat:
        return ColumnInputFormat(
            self.dataset,
            columns=self.referenced_columns() or None,
            lazy=True,
            predicates=extract_range_predicates(self._filters),
            execution=execution,
        )

    def _passes(self, record, ctx) -> bool:
        return all(f.evaluate(record, ctx) for f in self._filters)

    def _run_projection(self, fs, execution: str = "scalar") -> QueryResult:
        selects = dict(self._selects)
        if not selects:
            raise QueryError("nothing to compute: add select() or aggregate()")

        def mapper(key, record, emit, ctx):
            # Operator boundaries mirror run_batch_map's, so scalar and
            # vectorized runs of the same query profile identically.
            profiler = ctx.profiler
            if self._filters:
                profiler.switch("filter")
                ok = self._passes(record, ctx)
                profiler.add_rows("filter", 1, 1 if ok else 0)
                if not ok:
                    return
            profiler.switch("materialize")
            profiler.add_rows("materialize", 1, 1)
            emit(None, tuple(
                expr.evaluate(record, ctx) for expr in selects.values()
            ))

        job = Job(f"query({self.dataset})", mapper, self._input_format(execution))
        if execution == "vectorized":
            # Filters run as selection kernels over whole frames; the
            # per-survivor body is the mapper minus the _passes check.
            def project_row(row, emit, ctx):
                emit(None, tuple(
                    expr.evaluate(row, ctx) for expr in selects.values()
                ))

            job.batch_op = BatchOp(self._filters, project_row)
        job_result = run_job(fs, job)
        rows = [
            dict(zip(selects.keys(), values)) for _, values in job_result.output
        ]
        return QueryResult(self._finalize_rows(rows), job_result)

    def _run_aggregation(self, fs, execution: str = "scalar") -> QueryResult:
        group_exprs = dict(self._group_by)
        aggregates = dict(self._aggregates)

        def partial_row(record, emit, ctx):
            # Shared by both executions: per-record partials keep the
            # emitted shuffle stream (and so spill/shuffle accounting)
            # byte-identical between scalar and vectorized runs.
            group_key: Tuple = (
                tuple(e.evaluate(record, ctx) for e in group_exprs.values())
                if group_exprs
                else _UNGROUPED
            )
            partial = tuple(
                a.step(a.init(), a.expr.evaluate(record, ctx))
                for a in aggregates.values()
            )
            emit(group_key, partial)

        def mapper(key, record, emit, ctx):
            # Same boundary discipline as the projection mapper: the
            # vectorized engine runs partial_row under "materialize".
            profiler = ctx.profiler
            if self._filters:
                profiler.switch("filter")
                ok = self._passes(record, ctx)
                profiler.add_rows("filter", 1, 1 if ok else 0)
                if not ok:
                    return
            profiler.switch("materialize")
            profiler.add_rows("materialize", 1, 1)
            partial_row(record, emit, ctx)

        def merge(key, values, emit, ctx):
            merged: Optional[tuple] = None
            for partial in values:
                if merged is None:
                    merged = partial
                else:
                    merged = tuple(
                        a.merge(m, p)
                        for a, m, p in zip(aggregates.values(), merged, partial)
                    )
            emit(key, merged)

        def reducer(key, values, emit, ctx):
            merge(key, values, lambda k, merged: emit(
                k, tuple(a.finish(m) for a, m in zip(aggregates.values(), merged))
            ), ctx)

        job = Job(
            f"query({self.dataset})",
            mapper,
            self._input_format(execution),
            reducer=reducer,
            combiner=merge if self._combinable() else None,
            num_reducers=self._num_reducers,
        )
        if execution == "vectorized":
            job.batch_op = BatchOp(self._filters, partial_row)
        job_result = run_job(fs, job)
        rows = []
        for group_key, finished in job_result.output:
            row = {}
            if group_exprs:
                row.update(zip(group_exprs.keys(), group_key))
            row.update(zip(aggregates.keys(), finished))
            rows.append(row)
        rows.sort(key=lambda r: repr([r.get(k) for k in group_exprs]))
        return QueryResult(self._finalize_rows(rows), job_result)

    def _finalize_rows(self, rows: List[dict]) -> List[dict]:
        """Apply having / order_by / limit to the output rows."""
        for predicate in self._having:
            rows = [row for row in rows if predicate(row)]
        if self._order_by is not None:
            column, descending = self._order_by
            rows = sorted(
                rows, key=lambda r: r.get(column), reverse=descending
            )
        if self._limit is not None:
            rows = rows[: self._limit]
        return rows
