"""A small declarative query layer over the storage formats.

Section 3.4 of the paper distinguishes hand-coded MapReduce jobs from
declarative languages (Pig, Hive, Jaql) and notes the column-oriented
techniques "are also applicable" to the latter — a declarative layer can
apply them *automatically*.  This package demonstrates that: queries are
expression trees, and the planner

- computes the referenced columns and pushes the projection into CIF
  (or RCFile) without the user naming them,
- orders evaluation so filter columns are read first and all other
  columns are only materialized for surviving records (late
  materialization via LazyRecord),
- compiles to a single MapReduce job with a combiner for the aggregates
  that allow one.

Example::

    from repro.query import Q, col, count, max_

    rows = (
        Q("/data/crawl")
        .where(col("url").contains("ibm.com/jp"))
        .group_by(col("metadata")["content-type"])
        .aggregate(pages=count(), latest=max_(col("fetchTime")))
        .run(fs)
    )
"""

from repro.query.expr import Expr, col, lit
from repro.query.aggregates import avg, count, count_distinct, max_, min_, sum_
from repro.query.join import join
from repro.query.query import Q, QueryResult

__all__ = [
    "Expr",
    "Q",
    "QueryResult",
    "avg",
    "col",
    "count",
    "count_distinct",
    "join",
    "lit",
    "max_",
    "min_",
    "sum_",
]
