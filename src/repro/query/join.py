"""Reduce-side (repartition) equi-join over two datasets.

The paper sets join algorithms aside as "beyond the scope of this paper
but ... complementary" (Section 1); this module supplies the standard
complementary piece so the library is usable for multi-dataset
analytics: the classic Hadoop repartition join.  Both inputs are read
through their InputFormats (so CIF projection push-down applies to each
side independently), mappers emit ``(join key, (side, row))``, and each
reducer joins one key's rows.

``inner``, ``left`` and ``right`` outer joins are supported.  Row
payloads are the projected columns of each side, prefixed to avoid
collisions (``left.url``, ``right.rank``...).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.cif import ColumnInputFormat
from repro.core.lazy import LazyRecord
from repro.mapreduce.job import Job
from repro.mapreduce.multi import MultiInputFormat
from repro.mapreduce.runner import JobResult, run_job
from repro.query.query import QueryResult

JOIN_KINDS = ("inner", "left", "right")


def _row_of(record, columns: Sequence[str]) -> dict:
    if isinstance(record, LazyRecord):
        return {c: record.get(c) for c in columns}
    return {c: record.get(c) for c in columns}


def join(
    fs,
    left: str,
    right: str,
    on: str,
    right_on: Optional[str] = None,
    left_columns: Optional[Sequence[str]] = None,
    right_columns: Optional[Sequence[str]] = None,
    how: str = "inner",
    num_reducers: int = 4,
) -> QueryResult:
    """Equi-join two CIF datasets on a key column.

    ``on`` names the left key column (and the right one too unless
    ``right_on`` differs).  ``*_columns`` are each side's projections
    (defaulting to all columns); output rows use ``left.<col>`` /
    ``right.<col>`` names plus ``key``.
    """
    if how not in JOIN_KINDS:
        raise ValueError(f"how must be one of {JOIN_KINDS}")
    right_key = right_on if right_on is not None else on

    from repro.core.cof import read_dataset_schema

    left_cols = list(
        left_columns if left_columns is not None
        else read_dataset_schema(fs, left).field_names
    )
    right_cols = list(
        right_columns if right_columns is not None
        else read_dataset_schema(fs, right).field_names
    )
    if on not in left_cols:
        left_cols.append(on)
    if right_key not in right_cols:
        right_cols.append(right_key)

    inputs = MultiInputFormat({
        "L": ColumnInputFormat(left, columns=left_cols, lazy=True),
        "R": ColumnInputFormat(right, columns=right_cols, lazy=True),
    })

    def mapper(key, tagged, emit, ctx):
        side, record = tagged
        if side == "L":
            emit(record.get(on), ("L", _row_of(record, left_cols)))
        else:
            emit(record.get(right_key), ("R", _row_of(record, right_cols)))

    def reducer(key, values, emit, ctx):
        lefts: List[dict] = []
        rights: List[dict] = []
        for side, row in values:
            (lefts if side == "L" else rights).append(row)
        if lefts and rights:
            for lrow in lefts:
                for rrow in rights:
                    emit(key, _merge(key, lrow, rrow))
        elif lefts and how == "left":
            for lrow in lefts:
                emit(key, _merge(key, lrow, None))
        elif rights and how == "right":
            for rrow in rights:
                emit(key, _merge(key, None, rrow))

    job = Job(
        f"join({left},{right})", mapper, inputs,
        reducer=reducer, num_reducers=num_reducers,
    )
    result: JobResult = run_job(fs, job)
    rows = [row for _, row in result.output]
    rows.sort(key=lambda r: repr(r.get("key")))
    return QueryResult(rows, result)


def _merge(key, left_row: Optional[Dict], right_row: Optional[Dict]) -> dict:
    out = {"key": key}
    if left_row:
        out.update({f"left.{name}": value for name, value in left_row.items()})
    if right_row:
        out.update(
            {f"right.{name}": value for name, value in right_row.items()}
        )
    return out
