"""Aggregate functions for the query layer.

Each aggregate is defined by three pieces (the classic
initialize/accumulate/merge/finalize decomposition that makes combiners
possible): a per-record accumulator, a partial-state merger (run in the
combiner and the reducer), and a finalizer.  Aggregates whose partials
are not summaries (``count_distinct``) mark themselves non-combinable
and force the planner to skip the combiner.

NULL handling is pinned to SQL semantics so the scalar ``step``
functions and the vectorized kernels in ``repro.core.vector`` agree:
``count()`` counts every record in the group, while every
value-consuming aggregate (``sum``/``min``/``max``/``avg``/
``count_distinct``) skips NULL inputs.  ``avg`` divides by the number
of non-NULL inputs only.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.query.expr import Expr, lit


class Aggregate:
    """One aggregate: expr + (init, step, merge, finish).

    ``kind`` names the aggregate family ("count", "sum", ...) so the
    vectorized kernels can pick a whole-vector fast path; unknown kinds
    fall back to folding ``step`` row by row, which is always correct.
    """

    def __init__(
        self,
        expr: Optional[Expr],
        init: Callable,
        step: Callable,
        merge: Callable,
        finish: Callable,
        description: str,
        combinable: bool = True,
        kind: Optional[str] = None,
    ) -> None:
        self.expr = expr if expr is not None else lit(None)
        self.init = init
        self.step = step
        self.merge = merge
        self.finish = finish
        self.description = description
        self.combinable = combinable
        self.kind = kind

    @property
    def columns(self):
        return self.expr.columns

    def __repr__(self) -> str:
        return f"Aggregate({self.description})"


def count() -> Aggregate:
    """Number of records in the group (NULLs included)."""
    return Aggregate(
        None,
        init=lambda: 0,
        step=lambda state, value: state + 1,
        merge=lambda a, b: a + b,
        finish=lambda state: state,
        description="count()",
        kind="count",
    )


def sum_(expr: Expr) -> Aggregate:
    return Aggregate(
        expr,
        init=lambda: 0,
        step=lambda state, value: state if value is None else state + value,
        merge=lambda a, b: a + b,
        finish=lambda state: state,
        description=f"sum({expr.description})",
        kind="sum",
    )


def min_(expr: Expr) -> Aggregate:
    return Aggregate(
        expr,
        init=lambda: None,
        step=lambda state, value: (
            state if value is None
            else value if state is None
            else min(state, value)
        ),
        merge=lambda a, b: b if a is None else a if b is None else min(a, b),
        finish=lambda state: state,
        description=f"min({expr.description})",
        kind="min",
    )


def max_(expr: Expr) -> Aggregate:
    return Aggregate(
        expr,
        init=lambda: None,
        step=lambda state, value: (
            state if value is None
            else value if state is None
            else max(state, value)
        ),
        merge=lambda a, b: b if a is None else a if b is None else max(a, b),
        finish=lambda state: state,
        description=f"max({expr.description})",
        kind="max",
    )


def avg(expr: Expr) -> Aggregate:
    """Arithmetic mean (partials are (sum, count) pairs, so it combines)."""
    return Aggregate(
        expr,
        init=lambda: (0, 0),
        step=lambda state, value: (
            state if value is None else (state[0] + value, state[1] + 1)
        ),
        merge=lambda a, b: (a[0] + b[0], a[1] + b[1]),
        finish=lambda state: state[0] / state[1] if state[1] else None,
        description=f"avg({expr.description})",
        kind="avg",
    )


def count_distinct(expr: Expr) -> Aggregate:
    """Exact distinct count over non-NULL values.

    Partials are full value sets, which a combiner can still merge —
    but shuffling sets loses the size advantage, so it is marked
    non-combinable and resolved reduce-side, like Figure 1's job.
    """
    return Aggregate(
        expr,
        init=lambda: set(),
        step=lambda state, value: (
            state if value is None else (state.add(value), state)[1]
        ),
        merge=lambda a, b: a | b,
        finish=lambda state: len(state),
        description=f"count_distinct({expr.description})",
        combinable=False,
        kind="count_distinct",
    )
