"""Aggregate functions for the query layer.

Each aggregate is defined by three pieces (the classic
initialize/accumulate/merge/finalize decomposition that makes combiners
possible): a per-record accumulator, a partial-state merger (run in the
combiner and the reducer), and a finalizer.  Aggregates whose partials
are not summaries (``count_distinct``) mark themselves non-combinable
and force the planner to skip the combiner.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.query.expr import Expr, lit


class Aggregate:
    """One aggregate: expr + (init, step, merge, finish)."""

    def __init__(
        self,
        expr: Optional[Expr],
        init: Callable,
        step: Callable,
        merge: Callable,
        finish: Callable,
        description: str,
        combinable: bool = True,
    ) -> None:
        self.expr = expr if expr is not None else lit(None)
        self.init = init
        self.step = step
        self.merge = merge
        self.finish = finish
        self.description = description
        self.combinable = combinable

    @property
    def columns(self):
        return self.expr.columns

    def __repr__(self) -> str:
        return f"Aggregate({self.description})"


def count() -> Aggregate:
    """Number of records in the group."""
    return Aggregate(
        None,
        init=lambda: 0,
        step=lambda state, value: state + 1,
        merge=lambda a, b: a + b,
        finish=lambda state: state,
        description="count()",
    )


def sum_(expr: Expr) -> Aggregate:
    return Aggregate(
        expr,
        init=lambda: 0,
        step=lambda state, value: state + value,
        merge=lambda a, b: a + b,
        finish=lambda state: state,
        description=f"sum({expr.description})",
    )


def min_(expr: Expr) -> Aggregate:
    return Aggregate(
        expr,
        init=lambda: None,
        step=lambda state, value: value if state is None else min(state, value),
        merge=lambda a, b: b if a is None else a if b is None else min(a, b),
        finish=lambda state: state,
        description=f"min({expr.description})",
    )


def max_(expr: Expr) -> Aggregate:
    return Aggregate(
        expr,
        init=lambda: None,
        step=lambda state, value: value if state is None else max(state, value),
        merge=lambda a, b: b if a is None else a if b is None else max(a, b),
        finish=lambda state: state,
        description=f"max({expr.description})",
    )


def avg(expr: Expr) -> Aggregate:
    """Arithmetic mean (partials are (sum, count) pairs, so it combines)."""
    return Aggregate(
        expr,
        init=lambda: (0, 0),
        step=lambda state, value: (state[0] + value, state[1] + 1),
        merge=lambda a, b: (a[0] + b[0], a[1] + b[1]),
        finish=lambda state: state[0] / state[1] if state[1] else None,
        description=f"avg({expr.description})",
    )


def count_distinct(expr: Expr) -> Aggregate:
    """Exact distinct count.

    Partials are full value sets, which a combiner can still merge —
    but shuffling sets loses the size advantage, so it is marked
    non-combinable and resolved reduce-side, like Figure 1's job.
    """
    return Aggregate(
        expr,
        init=lambda: set(),
        step=lambda state, value: (state.add(value), state)[1],
        merge=lambda a, b: a | b,
        finish=lambda state: len(state),
        description=f"count_distinct({expr.description})",
        combinable=False,
    )
