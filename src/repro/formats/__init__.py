"""Baseline storage formats: TXT, SequenceFile, and RCFile.

These are the formats the paper compares CIF against (Section 6):

- :mod:`repro.formats.text` — newline-delimited text (the naive format
  whose use in earlier Hadoop evaluations was criticized in [18]),
- :mod:`repro.formats.sequence_file` — Hadoop's standard binary
  key/value container, in uncompressed, record-compressed and
  block-compressed variants,
- :mod:`repro.formats.rcfile` — the PAX-style row-group format of He et
  al. [20], with per-column chunks inside each row group and optional
  ZLIB compression.

The paper's own format (CIF/COF) lives in :mod:`repro.core`.
"""

from repro.formats.rcfile import RCFileInputFormat, write_rcfile
from repro.formats.sequence_file import SequenceFileInputFormat, write_sequence_file
from repro.formats.text import TextInputFormat, write_text

__all__ = [
    "RCFileInputFormat",
    "SequenceFileInputFormat",
    "TextInputFormat",
    "write_rcfile",
    "write_sequence_file",
    "write_text",
]
