"""RCFile: the PAX-style row-group format the paper compares against.

Following He et al. [20] (Section 4.1 of the paper): the file is a
sequence of *row groups*, each packed into HDFS blocks.  A row group is

  ``[sync marker][metadata region][data region]``

where the metadata region records the number of rows and the byte
length of each column chunk, and the data region lays the chunks out
column by column (each chunk optionally compressed — RCFile-comp).

The reader pushes projections down: it parses each row group's
metadata, seeks over unwanted column chunks, and decompresses/decodes
only the projected ones (lazy decompression).  Because all columns
share one file, those seeks are frequently smaller than the HDFS
readahead window, which is exactly why the paper finds RCFile's I/O
elimination poor at small row-group sizes (Figure 9, and the 20x extra
bytes in Section 6.2).

RCFile also pays two CPU overheads the paper calls out: per-row-group
metadata interpretation and an inefficient per-field serialization
(modelled by :meth:`CpuCostModel.charge_rcfile_fields`).

Adding a column to an RCFile dataset requires rewriting every row group
(:func:`add_column_rewrite`) — the flexibility disadvantage against CIF
discussed in Section 4.3.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.compress.codecs import get_codec
from repro.formats.common import (
    SYNC_SIZE,
    FileSplit,
    block_splits,
    make_sync_marker,
    scan_to_sync,
)
from repro.mapreduce.types import InputFormat, RecordReader, TaskContext
from repro.serde.binary import BinaryDecoder, BinaryEncoder
from repro.serde.record import Record
from repro.serde.schema import Schema
from repro.sim.metrics import Metrics
from repro.util.buffers import ByteReader, ByteWriter

MAGIC = b"RCF1"
DEFAULT_ROW_GROUP_BYTES = 4 * 1024 * 1024  # the recommended 4 MB [20]


def write_rcfile(
    fs,
    path: str,
    schema: Schema,
    records: Iterable,
    row_group_bytes: int = DEFAULT_ROW_GROUP_BYTES,
    codec: Optional[str] = None,
    metrics: Optional[Metrics] = None,
) -> None:
    """Write ``records`` as an RCFile (``codec`` enables RCFile-comp)."""
    sync = make_sync_marker(path)
    out = ByteWriter()
    out.write_bytes(MAGIC)
    out.write_string(schema.to_json())
    out.write_string(codec or "")
    out.write_bytes(sync)

    columns = [f.schema for f in schema.fields]
    chunks: List[ByteWriter] = [ByteWriter() for _ in columns]
    value_lengths: List[List[int]] = [[] for _ in columns]
    rows = 0
    first_group = True

    def flush() -> None:
        nonlocal chunks, value_lengths, rows, first_group
        if rows == 0:
            return
        payloads = []
        for chunk in chunks:
            data = chunk.getvalue()
            if codec:
                data = get_codec(codec).compress(data)
            payloads.append(data)
        # The header's trailing sync doubles as the first group's marker;
        # later groups each write their own.
        if not first_group:
            out.write_bytes(sync)
        first_group = False
        # Metadata region: row count, then per column its (compressed)
        # chunk length plus every row's value length — RCFile's key
        # buffer, which readers must fetch in full for every row group.
        meta = ByteWriter()
        meta.write_varint(rows)
        meta.write_varint(len(payloads))
        for payload, lengths in zip(payloads, value_lengths):
            meta.write_varint(len(payload))
            for length in lengths:
                meta.write_varint(length)
        out.write_len_prefixed(meta.getvalue())
        for payload in payloads:
            out.write_bytes(payload)
        chunks = [ByteWriter() for _ in columns]
        value_lengths = [[] for _ in columns]
        rows = 0

    for record in records:
        values = (
            record.values_in_order()
            if isinstance(record, Record)
            else [record[f.name] for f in schema.fields]
        )
        for i, (chunk, column_schema, value) in enumerate(
            zip(chunks, columns, values)
        ):
            before = len(chunk)
            BinaryEncoder(chunk).write_datum(column_schema, value)
            value_lengths[i].append(len(chunk) - before)
        rows += 1
        if sum(len(c) for c in chunks) >= row_group_bytes:
            flush()
    flush()

    with fs.create(path, metrics=metrics) as stream:
        stream.write(out.getvalue())


class _Header:
    def __init__(self, reader: ByteReader) -> None:
        magic = reader.read_bytes(len(MAGIC))
        if magic != MAGIC:
            raise ValueError(f"not an RCFile (magic {magic!r})")
        self.schema = Schema.parse(reader.read_string())
        self.codec = reader.read_string() or None
        self.sync = reader.read_bytes(SYNC_SIZE)
        self.header_end = reader.pos


def read_header(fs, path: str) -> _Header:
    length = fs.file_length(path)
    data = fs.open(path).read(min(4096, length))
    return _Header(ByteReader(data))


class RCFileRecordReader(RecordReader):
    """Row-group reader with projection push-down and lazy decompression."""

    def __init__(
        self,
        fs,
        split: FileSplit,
        header: _Header,
        columns: Optional[Sequence[str]],
        ctx: TaskContext,
    ) -> None:
        super().__init__(ctx)
        self.header = header
        self.split = split
        schema = header.schema
        if columns is None:
            columns = schema.field_names
        self._wanted = [schema.field(name) for name in columns]
        self._projected = schema.project(columns)
        self._stream = fs.open(
            split.path,
            node=ctx.node,
            metrics=ctx.metrics,
            buffer_size=ctx.io_buffer_size,
            probe=ctx.obs.stream_probe(file=split.path, format="rcfile"),
        )
        # Every row group is preceded by a sync marker (including the
        # first), so both the 0-offset and mid-file cases resynchronize
        # the same way.
        start = scan_to_sync(self._stream, header.sync, split.start, split.end)
        self._next_group = start  # offset just past a sync marker
        self._rows: List[Record] = []
        self._row_index = 0

    def read_next(self):
        while self._row_index >= len(self._rows):
            if not self._load_group():
                return None
        record = self._rows[self._row_index]
        self._row_index += 1
        return None, record

    def _load_group(self) -> bool:
        """Parse the next row group into ``self._rows``; False at split end."""
        if self._next_group is None:
            return False
        ctx = self.ctx
        stream = self._stream
        stream.seek(self._next_group)
        meta_raw = _read_len_prefixed(stream)
        meta = ByteReader(meta_raw)
        rows = meta.read_varint()
        num_cols = meta.read_varint()
        chunk_lens = []
        for _ in range(num_cols):
            chunk_lens.append(meta.read_varint())
            for _ in range(rows):
                meta.read_varint()  # per-row value length (key buffer)
        if num_cols != len(self.header.schema.fields):
            raise ValueError("row group column count mismatch")
        # Interpreting the metadata block costs CPU for every length
        # entry, for all columns, whether projected or not.
        ctx.cost.charge_raw_scan(ctx.metrics, len(meta_raw))
        ctx.cost.charge_rcfile_rowgroup(ctx.metrics, rows * num_cols)

        wanted_indices = {f.index for f in self._wanted}
        columns: Dict[int, List[object]] = {}
        for index, chunk_len in enumerate(chunk_lens):
            if index not in wanted_indices:
                stream.seek(stream.tell() + chunk_len)
                continue
            data = stream.read(chunk_len)
            ctx.cost.charge_raw_scan(ctx.metrics, len(data))
            if self.header.codec:
                ctx.cost.charge_block_inflate_setup(ctx.metrics)
                data = get_codec(self.header.codec).decompress(
                    data, ctx.cost, ctx.metrics, registry=ctx.obs.registry
                )
            dec = BinaryDecoder(ByteReader(data), ctx.cost, ctx.metrics)
            field_schema = self.header.schema.fields[index].schema
            columns[index] = [dec.read_datum(field_schema) for _ in range(rows)]

        # Materialize one writable per projected field per row — the
        # "inefficient serialization in parts of RCFile" CPU overhead.
        ctx.cost.charge_rcfile_fields(ctx.metrics, rows * len(self._wanted))
        self._rows = []
        for r in range(rows):
            record = Record(self._projected)
            for field in self._wanted:
                record.put(field.name, columns[field.index][r])
            self._rows.append(record)
        self._row_index = 0

        # Locate the following row group: it starts with a sync marker
        # immediately after this group's data region.
        group_end = stream.tell()
        if group_end >= self._stream.length:
            self._next_group = None
        else:
            marker_pos = group_end
            if marker_pos >= self.split.end:
                # The next group's sync is at/past our range: next split's.
                self._next_group = None
            else:
                self._next_group = self._verify_sync(marker_pos)
        return True

    def _verify_sync(self, marker_pos: int) -> Optional[int]:
        self._stream.seek(marker_pos)
        marker = self._stream.read(SYNC_SIZE)
        if marker != self.header.sync:
            raise ValueError(f"missing sync marker at {marker_pos}")
        return marker_pos + SYNC_SIZE


def _read_len_prefixed(stream) -> bytes:
    """Read a varint-length-prefixed region directly off a stream."""
    prefix = b""
    while True:
        byte = stream.read(1)
        if not byte:
            raise EOFError("truncated length prefix")
        prefix += byte
        if not byte[0] & 0x80:
            break
    from repro.util.varint import decode_varint

    length, _ = decode_varint(prefix)
    return stream.read(length)


class RCFileInputFormat(InputFormat):
    """Block-granular splits over an RCFile, with column projection."""

    def __init__(self, path: str, columns: Optional[Sequence[str]] = None):
        self.path = path
        self.columns = list(columns) if columns is not None else None
        self._header: Optional[_Header] = None

    def set_columns(self, columns: Sequence[str]) -> None:
        """Projection push-down (mirrors CIF's ``setColumns``)."""
        self.columns = list(columns)

    def _read_header(self, fs) -> _Header:
        if self._header is None:
            self._header = read_header(fs, self.path)
        return self._header

    def get_splits(self, fs, cluster) -> List[FileSplit]:
        return block_splits(fs, self.path, "rcfile")

    def open_reader(self, fs, split: FileSplit, ctx: TaskContext) -> RecordReader:
        return RCFileRecordReader(
            fs, split, self._read_header(fs), self.columns, ctx
        )


def add_column_rewrite(
    fs,
    src_path: str,
    dst_path: str,
    name: str,
    column_schema: Schema,
    values: Sequence,
    row_group_bytes: int = DEFAULT_ROW_GROUP_BYTES,
    metrics: Optional[Metrics] = None,
) -> None:
    """Add a column to an RCFile dataset — by rewriting all of it.

    This is the expensive operation Section 4.3 contrasts with CIF's
    cheap :func:`repro.core.cof.add_column`: every row group must be
    read, widened, and written back.
    """
    header = read_header(fs, src_path)
    ctx_metrics = metrics if metrics is not None else Metrics()
    # Read the whole dataset back (charged as I/O against the metrics).
    stream = fs.open(src_path, metrics=ctx_metrics)
    stream.read_fully()
    from repro.mapreduce.types import TaskContext as _Ctx
    from repro.sim.cost import CpuCostModel

    ctx = _Ctx(node=None, cost=CpuCostModel(), io_buffer_size=64 * 1024)
    split = FileSplit(
        src_path, 0, fs.file_length(src_path), fs.file_length(src_path), []
    )
    reader = RCFileRecordReader(fs, split, header, None, ctx)
    widened_schema = header.schema.with_field(name, column_schema)
    widened = []
    for i, (_, record) in enumerate(reader):
        row = record.to_dict()
        row[name] = values[i]
        widened.append(row)
    write_rcfile(
        fs,
        dst_path,
        widened_schema,
        widened,
        row_group_bytes=row_group_bytes,
        codec=header.codec,
        metrics=ctx_metrics,
    )
