"""TXT: newline-delimited text files (the paper's slowest baseline).

Records are stored one per line using :mod:`repro.serde.text`.  Reading
is CPU-bound on parsing — the reason Section 6.2 measures SequenceFiles
~3x faster than text and calls naive text usage the flaw in earlier
MapReduce evaluations.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.formats.common import FileSplit, block_splits
from repro.mapreduce.types import InputFormat, RecordReader, TaskContext
from repro.serde import text as text_serde
from repro.serde.schema import Schema
from repro.sim.metrics import Metrics


def write_text(
    fs,
    path: str,
    schema: Schema,
    records: Iterable,
    metrics: Optional[Metrics] = None,
) -> None:
    """Write ``records`` to ``path`` as one text line each."""
    lines = [
        text_serde.encode_record(schema, record) + "\n" for record in records
    ]
    with fs.create(path, metrics=metrics) as out:
        out.write("".join(lines).encode("utf-8"))
    # Persist the schema next to the data so readers can parse lines.
    schema_path = path + ".schema"
    if not fs.exists(schema_path):
        fs.write_file(schema_path, schema.to_json().encode("utf-8"))


class _LineReader:
    """Incremental line extraction over an HDFS input stream."""

    def __init__(self, stream, start: int) -> None:
        self._stream = stream
        self._buf = b""
        self._offset = start  # stream offset of _buf[0]
        stream.seek(start)

    @property
    def position(self) -> int:
        """Stream offset of the next unread byte."""
        return self._offset

    def next_line(self) -> Optional[bytes]:
        while True:
            newline = self._buf.find(b"\n")
            if newline != -1:
                line = self._buf[:newline]
                self._buf = self._buf[newline + 1:]
                self._offset += newline + 1
                return line
            chunk = self._stream.read(64 * 1024)
            if not chunk:
                if self._buf:
                    line, self._buf = self._buf, b""
                    self._offset += len(line)
                    return line
                return None
            self._buf += chunk


class TextRecordReader(RecordReader):
    """Reads the lines of one block-range split.

    Follows Hadoop's convention: a split that does not begin at offset 0
    discards the (partial) first line — it belongs to the previous
    split — and the split owning a line is the one containing the byte
    *before* its first character.
    """

    def __init__(self, fs, split: FileSplit, schema: Schema, ctx: TaskContext):
        super().__init__(ctx)
        self.schema = schema
        self.split = split
        self._stream = fs.open(
            split.path,
            node=ctx.node,
            metrics=ctx.metrics,
            buffer_size=ctx.io_buffer_size,
            probe=ctx.obs.stream_probe(file=split.path, format="txt"),
        )
        self._lines = _LineReader(self._stream, split.start)
        if split.start > 0:
            self._lines.next_line()  # skip the partial line
        self._done = False

    def read_next(self):
        if self._done:
            return None
        # A line starting exactly at `end` still belongs to this split
        # (the next split unconditionally discards its first line).
        if self._lines.position > self.split.end:
            self._done = True
            return None
        raw = self._lines.next_line()
        if raw is None:
            self._done = True
            return None
        record = text_serde.decode_record(
            self.schema,
            raw.decode("utf-8"),
            cost=self.ctx.cost,
            metrics=self.ctx.metrics,
        )
        return None, record


class TextInputFormat(InputFormat):
    """Record-typed text input (Figure 1's jobs work unchanged on it)."""

    def __init__(self, path: str, schema: Optional[Schema] = None) -> None:
        self.path = path
        self.schema = schema

    def _schema(self, fs) -> Schema:
        if self.schema is None:
            raw = fs.read_file(self.path + ".schema").decode("utf-8")
            self.schema = Schema.parse(raw)
        return self.schema

    def get_splits(self, fs, cluster) -> List[FileSplit]:
        return block_splits(fs, self.path, "txt")

    def open_reader(self, fs, split: FileSplit, ctx: TaskContext) -> RecordReader:
        return TextRecordReader(fs, split, self._schema(fs), ctx)
