"""SEQ: Hadoop SequenceFiles with the paper's four variants.

A SequenceFile stores key/value pairs in a serialized binary format
(Section 2).  The writer supports the compression variants Table 1
compares:

- ``none``        (SEQ-uncomp)  — raw serialized records,
- ``record``      (SEQ-record)  — each value compressed individually,
- ``block``       (SEQ-block)   — batches of values compressed together,
- SEQ-custom is not a writer mode: it is an uncompressed SequenceFile
  whose ``content`` column was compressed by application code at load
  time (see :func:`repro.workloads.crawl.compress_content_column`).

Layout: a header (magic, schema, compression mode, codec, sync marker),
then framed entries.  A 16-byte sync marker is emitted every
``sync_interval`` bytes so block-granular splits can resynchronize.

Entry framing (all varints):
  ``tag 0x01`` key_len key value_len value          (none / record modes)
  ``tag 0x02`` count keys_len keys block_len block  (block mode)
Records use NullWritable keys (key_len 0) in all the paper's jobs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.compress.codecs import get_codec
from repro.formats.common import (
    SYNC_SIZE,
    FileSplit,
    block_splits,
    make_sync_marker,
    scan_to_sync,
)
from repro.hdfs.streams import StreamByteReader
from repro.mapreduce.types import InputFormat, RecordReader, TaskContext
from repro.serde.binary import BinaryDecoder, BinaryEncoder
from repro.serde.schema import Schema
from repro.sim.metrics import Metrics
from repro.util.buffers import ByteReader, ByteWriter

MAGIC = b"SEQ6"
_TAG_RECORD = 0x01
_TAG_BLOCK = 0x02

COMPRESSION_MODES = ("none", "record", "block")
DEFAULT_SYNC_INTERVAL = 2000
DEFAULT_BLOCK_RECORDS = 512
DEFAULT_BLOCK_BYTES = 64 * 1024


def write_sequence_file(
    fs,
    path: str,
    schema: Schema,
    records: Iterable,
    compression: str = "none",
    codec: str = "zlib",
    sync_interval: int = DEFAULT_SYNC_INTERVAL,
    block_records: int = DEFAULT_BLOCK_RECORDS,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    metrics: Optional[Metrics] = None,
) -> None:
    """Serialize ``records`` (NullWritable keys) into a SequenceFile."""
    if compression not in COMPRESSION_MODES:
        raise ValueError(f"unknown compression mode {compression!r}")
    sync = make_sync_marker(path)
    out = ByteWriter()
    out.write_bytes(MAGIC)
    out.write_string(schema.to_json())
    out.write_string(compression)
    out.write_string(codec if compression != "none" else "")
    out.write_bytes(sync)
    codec_impl = get_codec(codec) if compression != "none" else None

    last_sync = out.position

    def maybe_sync() -> None:
        nonlocal last_sync
        if out.position - last_sync >= sync_interval:
            out.write_bytes(sync)
            last_sync = out.position

    if compression == "block":
        # Block mode flushes by accumulated bytes (Hadoop's
        # io.seqfile.compress.blocksize) and emits a sync marker before
        # every compressed block, so any HDFS block boundary can
        # resynchronize at the next compressed block.
        batch: List[bytes] = []
        batch_bytes = 0
        for record in records:
            enc = BinaryEncoder()
            enc.write_datum(schema, record)
            batch.append(enc.getvalue())
            batch_bytes += len(batch[-1])
            if len(batch) >= block_records or batch_bytes >= block_bytes:
                out.write_bytes(sync)
                _flush_block(out, batch, codec_impl)
                batch = []
                batch_bytes = 0
        if batch:
            out.write_bytes(sync)
            _flush_block(out, batch, codec_impl)
    else:
        for record in records:
            enc = BinaryEncoder()
            enc.write_datum(schema, record)
            value = enc.getvalue()
            if compression == "record":
                value = codec_impl.compress(value)
            out.write_byte(_TAG_RECORD)
            out.write_varint(0)  # NullWritable key
            out.write_len_prefixed(value)
            maybe_sync()

    with fs.create(path, metrics=metrics) as stream:
        stream.write(out.getvalue())


def _flush_block(out: ByteWriter, batch: List[bytes], codec_impl) -> None:
    payload = ByteWriter()
    for value in batch:
        payload.write_len_prefixed(value)
    compressed = codec_impl.compress(payload.getvalue())
    out.write_byte(_TAG_BLOCK)
    out.write_varint(len(batch))
    out.write_varint(0)  # keys block (empty: NullWritable)
    out.write_len_prefixed(compressed)


class _Header:
    def __init__(self, reader) -> None:
        magic = reader.read_bytes(len(MAGIC))
        if magic != MAGIC:
            raise ValueError(f"not a SequenceFile (magic {magic!r})")
        self.schema = Schema.parse(reader.read_string())
        self.compression = reader.read_string()
        self.codec = reader.read_string()
        self.sync = reader.read_bytes(SYNC_SIZE)


def read_header(fs, path: str) -> _Header:
    data = fs.open(path).read(4096 if fs.file_length(path) >= 4096 else -1)
    return _Header(ByteReader(data))


class SequenceFileRecordReader(RecordReader):
    """Reads the records of one block-range split, resyncing at entry."""

    def __init__(self, fs, split: FileSplit, header: _Header, ctx: TaskContext):
        super().__init__(ctx)
        self.header = header
        self.split = split
        self._codec = (
            get_codec(header.codec) if header.compression != "none" else None
        )
        self._stream = fs.open(
            split.path,
            node=ctx.node,
            metrics=ctx.metrics,
            buffer_size=ctx.io_buffer_size,
            probe=ctx.obs.stream_probe(file=split.path, format="seq"),
        )
        if split.start == 0:
            start = self._header_end(fs, split.path)
        else:
            start = scan_to_sync(
                self._stream, header.sync, split.start, split.end
            )
        self._done = start is None
        if not self._done:
            self._stream.seek(start)
            self._reader = StreamByteReader(self._stream)
        self._block: List = []
        self._block_index = 0

    def _header_end(self, fs, path: str) -> int:
        probe = ByteReader(fs.open(path).read(4096))
        _Header(probe)
        return probe.pos

    def read_next(self):
        if self._block_index < len(self._block):
            record = self._block[self._block_index]
            self._block_index += 1
            return None, record
        if self._done:
            return None
        reader = self._reader
        while True:
            if reader.at_end():
                self._done = True
                return None
            entry_start = reader.offset
            tag = reader.read_byte()
            if tag == 0xFF:
                # Hadoop semantics: a split owns every entry up to the
                # first sync marker at or past its end offset; the next
                # split resynchronizes at exactly that marker.
                if entry_start >= self.split.end:
                    self._done = True
                    return None
                reader.skip(SYNC_SIZE - 1)
                continue
            if tag == _TAG_RECORD:
                return None, self._read_record(reader)
            if tag != _TAG_BLOCK:
                raise ValueError(
                    f"corrupt SequenceFile entry tag {tag:#x} at {entry_start}"
                )
            self._load_block(reader)
            if self._block:
                record = self._block[0]
                self._block_index = 1
                return None, record

    def _read_record(self, reader) -> object:
        key_len = reader.read_varint()
        if key_len:
            reader.skip(key_len)
        ctx = self.ctx
        if self.header.compression == "record":
            compressed = reader.read_len_prefixed()
            ctx.cost.charge_raw_scan(ctx.metrics, len(compressed))
            ctx.cost.charge_block_inflate_setup(ctx.metrics)
            raw = self._codec.decompress(
                compressed, ctx.cost, ctx.metrics, registry=ctx.obs.registry
            )
            dec = BinaryDecoder(ByteReader(raw), ctx.cost, ctx.metrics)
            return dec.read_datum(self.header.schema)
        value_len = reader.read_varint()
        dec = BinaryDecoder(reader, ctx.cost, ctx.metrics)
        start = reader.offset
        record = dec.read_datum(self.header.schema)
        if reader.offset - start != value_len:
            raise ValueError("corrupt SequenceFile record framing")
        return record

    def _load_block(self, reader) -> None:
        ctx = self.ctx
        count = reader.read_varint()
        keys_len = reader.read_varint()
        if keys_len:
            reader.skip(keys_len)
        compressed = reader.read_len_prefixed()
        ctx.cost.charge_raw_scan(ctx.metrics, len(compressed))
        ctx.cost.charge_block_inflate_setup(ctx.metrics)
        raw = self._codec.decompress(
            compressed, ctx.cost, ctx.metrics, registry=ctx.obs.registry
        )
        dec = BinaryDecoder(ByteReader(raw), ctx.cost, ctx.metrics)
        self._block = []
        for _ in range(count):
            dec.reader.read_varint()  # value length framing
            self._block.append(dec.read_datum(self.header.schema))
        self._block_index = 0


class SequenceFileInputFormat(InputFormat):
    """Figure 1's ``SequenceFileInputFormat``: one split per HDFS block."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._header: Optional[_Header] = None

    def _read_header(self, fs) -> _Header:
        if self._header is None:
            self._header = read_header(fs, self.path)
        return self._header

    def get_splits(self, fs, cluster) -> List[FileSplit]:
        return block_splits(fs, self.path, "seq")

    def open_reader(self, fs, split: FileSplit, ctx: TaskContext) -> RecordReader:
        return SequenceFileRecordReader(fs, split, self._read_header(fs), ctx)
