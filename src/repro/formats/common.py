"""Shared machinery for block-granular formats: splits and sync markers.

SequenceFile and RCFile are single-file formats whose splits are HDFS
blocks; record (or row-group) boundaries do not align with block
boundaries, so both formats embed 16-byte *sync markers* and a reader
assigned the byte range ``[start, end)`` scans forward to the first sync
at or after ``start`` and stops at the first sync at or after ``end``.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional

from repro.mapreduce.types import InputSplit

SYNC_SIZE = 16


def make_sync_marker(seed: str) -> bytes:
    """A deterministic 16-byte sync marker derived from ``seed``.

    The first byte is forced to 0xFF so a marker can never be confused
    with an entry tag when a reader is positioned at an entry boundary.
    """
    return b"\xff" + hashlib.md5(seed.encode("utf-8")).digest()[:15]


def block_splits(fs, path: str, label: str) -> List["FileSplit"]:
    """One split per HDFS block of ``path`` (Hadoop's default)."""
    blocks = fs.namenode.blocks_of(path)
    splits: List[FileSplit] = []
    offset = 0
    for i, block in enumerate(blocks):
        splits.append(
            FileSplit(
                path=path,
                start=offset,
                end=offset + block.length,
                length=block.length,
                locations=list(block.locations),
                label=f"{label}[{i}]",
            )
        )
        offset += block.length
    return splits


class FileSplit(InputSplit):
    """A byte range of one file (with the block's replica locations)."""

    def __init__(
        self,
        path: str,
        start: int,
        end: int,
        length: int,
        locations: List[int],
        label: str = "",
    ) -> None:
        super().__init__(length=length, locations=locations, label=label)
        self.path = path
        self.start = start
        self.end = end


def scan_to_sync(
    stream, marker: bytes, start: int, limit: Optional[int] = None
) -> Optional[int]:
    """Offset of the first sync marker at or after ``start``.

    Returns the offset of the *first byte after* the marker (where the
    framed data begins), or None if no marker occurs before ``limit``
    (or EOF).  The scan reads through the stream, so the bytes it
    touches are charged — exactly as in Hadoop.
    """
    limit = stream.length if limit is None else min(limit, stream.length)
    window = b""
    window_start = start
    pos = start
    # Scan in small increments: the stream's readahead already fetches
    # at buffer granularity, and a sync typically sits within one
    # record/row-group of the split start.
    chunk_size = 4 * 1024
    while True:
        found = window.find(marker)
        if found != -1:
            if window_start + found >= limit:
                return None  # first sync begins past this split's range
            return window_start + found + SYNC_SIZE
        if pos >= limit:
            return None
        stream.seek(pos)
        chunk = stream.read(min(chunk_size, stream.length - pos))
        if not chunk:
            return None
        pos += len(chunk)
        # Keep a marker-sized tail so markers spanning chunk edges match.
        keep = window[-(SYNC_SIZE - 1):] if len(window) >= SYNC_SIZE else window
        window_start += len(window) - len(keep)
        window = keep + chunk
