"""Date/key-partitioned datasets (Figure 4's ``/data/2011-01-01``).

The paper's loading story is incremental: "crawled data arrives at
regular intervals and ... a day's worth of data has arrived and needs
to be stored in '/data/2011-01-01'".  Each arrival is loaded through
COF into its own *partition* directory of split-directories; a job then
reads one partition, a range of them, or all of them.

Partition names are free-form path components (dates, regions, …); a
partition is just a CIF dataset, so everything else — CPP co-location,
lazy records, zone maps, add_column — applies per partition unchanged.
Partition *pruning* by name predicate is the coarsest level of the I/O
elimination hierarchy: partition -> split-directory (zone maps) ->
column (projection) -> value (lazy records).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.core.cif import CIFSplit, ColumnInputFormat
from repro.core.cof import write_dataset
from repro.core.columnio import ColumnSpec
from repro.core.stats import RangePredicate
from repro.mapreduce.types import InputFormat, RecordReader, TaskContext
from repro.serde.schema import Schema
from repro.sim.metrics import Metrics


class PartitionedDataset:
    """A root directory holding one CIF dataset per partition."""

    def __init__(self, fs, root: str) -> None:
        self.fs = fs
        self.root = root.rstrip("/")

    def partitions(self) -> List[str]:
        """Sorted partition names currently present."""
        if not self.fs.exists(self.root):
            return []
        return sorted(self.fs.listdir(self.root))

    def path_of(self, partition: str) -> str:
        return f"{self.root}/{partition}"

    def add_partition(
        self,
        partition: str,
        schema: Schema,
        records: Iterable,
        specs: Optional[Dict[str, ColumnSpec]] = None,
        default_spec: Optional[ColumnSpec] = None,
        split_bytes: int = 64 * 1024 * 1024,
        metrics: Optional[Metrics] = None,
    ) -> int:
        """Load one arrival batch as a new partition (Section 4.2)."""
        if "/" in partition:
            raise ValueError("partition names are single path components")
        path = self.path_of(partition)
        if self.fs.exists(path):
            raise ValueError(f"partition {partition!r} already exists")
        return write_dataset(
            self.fs, path, schema, records,
            specs=specs, default_spec=default_spec,
            split_bytes=split_bytes, metrics=metrics,
        )

    def drop_partition(self, partition: str) -> None:
        """Retention: dropping a partition is a single recursive delete."""
        self.fs.delete(self.path_of(partition), recursive=True)

    def input_format(
        self,
        partitions: Optional[Union[Sequence[str], Callable[[str], bool]]] = None,
        columns=None,
        lazy: bool = True,
        predicates: Optional[Sequence[RangePredicate]] = None,
    ) -> "PartitionedInputFormat":
        """An InputFormat over selected partitions.

        ``partitions`` may be a list of names, a predicate over names
        (e.g. ``lambda day: day >= "2011-01-15"``), or None for all.
        """
        return PartitionedInputFormat(
            self, partitions=partitions, columns=columns, lazy=lazy,
            predicates=predicates,
        )


class PartitionedInputFormat(InputFormat):
    """Unions CIF splits across the selected partitions, in name order."""

    def __init__(
        self,
        dataset: PartitionedDataset,
        partitions=None,
        columns=None,
        lazy: bool = True,
        predicates: Optional[Sequence[RangePredicate]] = None,
    ) -> None:
        self.dataset = dataset
        self._selector = partitions
        self.columns = columns
        self.lazy = lazy
        self.predicates = list(predicates or [])
        #: partitions skipped by the name selector on the last get_splits
        self.pruned_partitions = 0

    def selected_partitions(self) -> List[str]:
        names = self.dataset.partitions()
        if self._selector is None:
            selected = names
        elif callable(self._selector):
            selected = [n for n in names if self._selector(n)]
        else:
            wanted = set(self._selector)
            missing = wanted - set(names)
            if missing:
                raise ValueError(f"unknown partitions {sorted(missing)!r}")
            selected = [n for n in names if n in wanted]
        self.pruned_partitions = len(names) - len(selected)
        return selected

    def _child(self, partition: str) -> ColumnInputFormat:
        return ColumnInputFormat(
            self.dataset.path_of(partition),
            columns=self.columns,
            lazy=self.lazy,
            predicates=self.predicates,
        )

    def get_splits(self, fs, cluster) -> List[CIFSplit]:
        splits: List[CIFSplit] = []
        for partition in self.selected_partitions():
            splits.extend(self._child(partition).get_splits(fs, cluster))
        return splits

    def open_reader(self, fs, split: CIFSplit, ctx: TaskContext) -> RecordReader:
        # CIFSplits are self-describing (they carry their directories),
        # so any child format can open them; reuse one with our config.
        return ColumnInputFormat(
            self.dataset.root, columns=self.columns, lazy=self.lazy
        ).open_reader(fs, split, ctx)
