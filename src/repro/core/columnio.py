"""Column file layouts: plain, skip-list, compressed blocks, DCSL.

Every column of a CIF split-directory is one HDFS file whose layout is
chosen per column at load time (Section 5).  All four layouts share a
small header::

    magic "CF1" | format byte | varint record count | format params

followed by the value stream:

``plain``
    Serialized values back to back.  Skipping must walk each value's
    byte structure individually ("no deserialization or I/O savings",
    Section 5.2).

``skiplist`` (CIF-SL, Figure 6)
    Values organized into nested blocks of (by default) 1000/100/10
    records.  Each block is prefixed by ``varint count, varint nbytes``
    so a reader can jump whole blocks without touching their bytes —
    skips larger than the HDFS readahead window save real I/O.

``cblock`` (CIF-LZO / CIF-ZLIB, Section 5.3)
    Contiguous values compressed in blocks:
    ``varint count, varint raw_len, varint comp_len, payload``.  A block
    whose values are never accessed is skipped without decompression
    (lazy decompression); touching any value inflates the whole block.

``dcsl`` (CIF-DCSL, Section 5.3)
    The skip-list layout for map-typed columns, with a per-top-block key
    dictionary.  Map keys are stored as dictionary ids — decoding an
    entry is a table lookup, and individual values remain addressable
    without decompressing anything.

Two further lightweight encodings from the column-store literature the
paper cites (Abadi et al. [10]; Section 3.3 notes they suit simple
types, not complex ones):

``rle``
    Run-length encoding: ``varint run_length, value`` pairs.  Ideal for
    sorted/clustered low-cardinality columns; runs also skip in O(1).

``delta``
    Delta encoding for integer-kinded columns: first value, then
    zig-zag deltas.  Ideal for near-monotonic columns (timestamps,
    auto-increment ids).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.compress.codecs import get_codec
from repro.compress.dictionary import KeyDictionary
from repro.mapreduce.types import TaskContext
from repro.obs import NULL_PROFILER
from repro.serde import vecdecode
from repro.serde.binary import BinaryDecoder, BinaryEncoder
from repro.serde.schema import Schema, SchemaError
from repro.util.buffers import ByteReader, ByteWriter

MAGIC = b"CF1"

FORMAT_PLAIN = 0
FORMAT_SKIPLIST = 1
FORMAT_CBLOCK = 2
FORMAT_DCSL = 3
FORMAT_RLE = 4
FORMAT_DELTA = 5

_FORMAT_NAMES = {
    "plain": FORMAT_PLAIN,
    "skiplist": FORMAT_SKIPLIST,
    "cblock": FORMAT_CBLOCK,
    "dcsl": FORMAT_DCSL,
    "rle": FORMAT_RLE,
    "delta": FORMAT_DELTA,
}

_INTEGER_KINDS = ("int", "long", "time")

DEFAULT_SKIP_SIZES = (1000, 100, 10)
DEFAULT_BLOCK_BYTES = 128 * 1024


@dataclass(frozen=True)
class ColumnSpec:
    """Per-column layout choice made at load time.

    ``format`` is one of ``plain``, ``skiplist``, ``cblock``, ``dcsl``.
    ``codec`` applies to ``cblock`` (``"lzo"`` or ``"zlib"``);
    ``block_bytes`` is the uncompressed block size for ``cblock``;
    ``skip_sizes`` are the skip-list levels for ``skiplist``/``dcsl``.
    """

    format: str = "plain"
    codec: str = "lzo"
    block_bytes: int = DEFAULT_BLOCK_BYTES
    skip_sizes: Tuple[int, ...] = DEFAULT_SKIP_SIZES

    def __post_init__(self) -> None:
        if self.format not in _FORMAT_NAMES:
            raise ValueError(f"unknown column format {self.format!r}")
        sizes = tuple(self.skip_sizes)
        if any(a <= b for a, b in zip(sizes, sizes[1:])) or any(
            s < 2 for s in sizes
        ):
            raise ValueError(f"skip sizes must be descending >= 2: {sizes}")
        if self.format == "cblock" and self.block_bytes < 1:
            raise ValueError("block_bytes must be positive")


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def encode_column_file(
    field_schema: Schema, values: Sequence, spec: ColumnSpec
) -> bytes:
    """Serialize one column's values into a complete column-file payload.

    The whole column is assembled in memory: HDFS output streams are
    append-only, so skip-block lengths must be known before any value
    byte is written (the double-buffering cost Appendix B.3 measures).
    """
    encoded = []
    for value in values:
        enc = BinaryEncoder()
        enc.write_datum(field_schema, value)
        encoded.append(enc.getvalue())

    out = ByteWriter()
    out.write_bytes(MAGIC)
    out.write_byte(_FORMAT_NAMES[spec.format])
    out.write_varint(len(values))

    if spec.format == "plain":
        for blob in encoded:
            out.write_bytes(blob)
    elif spec.format == "skiplist":
        _write_skip_params(out, spec.skip_sizes)
        out.write_bytes(_build_skip_region(encoded, spec.skip_sizes, 0, None))
    elif spec.format == "cblock":
        out.write_string(spec.codec)
        _write_cblocks(out, encoded, spec)
    elif spec.format == "dcsl":
        if field_schema.kind != "map":
            raise SchemaError("dcsl layout requires a map-typed column")
        _write_skip_params(out, spec.skip_sizes)
        out.write_bytes(
            _build_dcsl_region(field_schema, list(values), spec.skip_sizes)
        )
    elif spec.format == "rle":
        _write_rle(out, field_schema, list(values))
    elif spec.format == "delta":
        if field_schema.kind not in _INTEGER_KINDS:
            raise SchemaError("delta layout requires an integer-kinded column")
        previous = 0
        for value in values:
            out.write_zigzag(value - previous)
            previous = value
    return out.getvalue()


def _write_rle(out: ByteWriter, field_schema: Schema, values: List) -> None:
    i = 0
    while i < len(values):
        j = i
        while j < len(values) and values[j] == values[i]:
            j += 1
        out.write_varint(j - i)
        BinaryEncoder(out).write_datum(field_schema, values[i])
        i = j


def _write_skip_params(out: ByteWriter, sizes: Sequence[int]) -> None:
    out.write_varint(len(sizes))
    for size in sizes:
        out.write_varint(size)


def _build_skip_region(
    encoded: List[bytes],
    sizes: Sequence[int],
    level: int,
    dictionaries: Optional[List[bytes]],
) -> bytes:
    """Recursively frame blocks: ``count, nbytes, [dict,] body``."""
    if level == len(sizes):
        return b"".join(encoded)
    size = sizes[level]
    out = ByteWriter()
    for start in range(0, len(encoded), size):
        chunk = encoded[start:start + size]
        body = _build_skip_region(chunk, sizes, level + 1, None)
        if level == 0 and dictionaries is not None:
            body = dictionaries[start // size] + body
        out.write_varint(len(chunk))
        out.write_varint(len(body))
        out.write_bytes(body)
    return out.getvalue()


def _write_cblocks(out: ByteWriter, encoded: List[bytes], spec: ColumnSpec):
    codec = get_codec(spec.codec)
    i = 0
    while i < len(encoded):
        raw = bytearray()
        count = 0
        while i < len(encoded) and (count == 0 or len(raw) < spec.block_bytes):
            raw += encoded[i]
            i += 1
            count += 1
        compressed = codec.compress(bytes(raw))
        out.write_varint(count)
        out.write_varint(len(raw))
        out.write_len_prefixed(compressed)


def _build_dcsl_region(
    field_schema: Schema, values: List, sizes: Sequence[int]
) -> bytes:
    """Skip-list region with per-top-block dictionaries and id-coded keys."""
    top = sizes[0]
    encoded: List[bytes] = []
    dictionaries: List[bytes] = []
    for start in range(0, max(len(values), 1), top):
        chunk = values[start:start + top]
        dictionary = KeyDictionary()
        for mapping in chunk:
            for key in mapping:
                dictionary.add(key)
        dict_writer = ByteWriter()
        dictionary.write(dict_writer)
        dictionaries.append(dict_writer.getvalue())
        for mapping in chunk:
            enc = ByteWriter()
            enc.write_varint(len(mapping))
            for key, value in mapping.items():
                enc.write_varint(dictionary.id_of(key))
                BinaryEncoder(enc).write_datum(field_schema.values, value)
            encoded.append(enc.getvalue())
    return _build_skip_region(encoded, sizes, 0, dictionaries)


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


def _batch_decode_values(reader, field_schema: Schema, k: int, ctx):
    """Decode ``k`` consecutive plainly-encoded values off ``reader``
    with batched cost charges.

    Returns ``(tag, payload)`` for primitive kinds, ``None`` for
    container kinds (callers fall back to per-value decoding).  The
    charges are the exact sums of ``k`` scalar ``read_datum`` calls —
    the cost model is linear, so integer side effects (cells, objects)
    are identical and cpu_time differs only by float re-association.
    """
    kind = field_schema.kind
    cost, metrics = ctx.cost, ctx.metrics
    profile = cost.profile
    start = reader.offset
    if kind in _INTEGER_KINDS:
        values = vecdecode.read_zigzags(reader, k)
        per = profile.int_decode if kind == "int" else profile.long_decode
        metrics.cells += k
        metrics.charge_cpu(
            k * per + (reader.offset - start) * profile.raw_scan_per_byte
        )
        return ("num", values)
    if kind == "double":
        values = vecdecode.read_doubles(reader, k)
        metrics.cells += k
        metrics.charge_cpu(
            k * profile.double_decode
            + (reader.offset - start) * profile.raw_scan_per_byte
        )
        return ("double", values)
    if kind == "boolean":
        values = vecdecode.read_booleans(reader, k)
        metrics.cells += k
        metrics.charge_cpu(
            k * profile.bool_decode
            + (reader.offset - start) * profile.raw_scan_per_byte
        )
        return ("obj", values)
    if kind == "string":
        chunks = vecdecode.read_chunks(reader, k)
        payload = sum(map(len, chunks))
        metrics.cells += k
        metrics.objects += k
        metrics.charge_cpu(
            k * profile.string_decode_base
            + payload * profile.string_decode_per_byte
            + (reader.offset - start) * profile.raw_scan_per_byte
        )
        return ("str", chunks)
    if kind == "bytes":
        values = vecdecode.read_chunks(reader, k)
        payload = sum(map(len, values))
        metrics.cells += k
        metrics.objects += k
        metrics.charge_cpu(
            k * profile.bytes_decode_base
            + payload * profile.bytes_decode_per_byte
            + (reader.offset - start) * profile.raw_scan_per_byte
        )
        return ("obj", values)
    if vecdecode.map_batch_supported(field_schema):
        values = vecdecode.read_maps(reader, field_schema, k, cost, metrics)
        return ("obj", values)
    return None


class _VectorBuilder:
    """Accumulates (possibly several segments of) decoded values and
    finishes them into the right typed vector."""

    def __init__(self) -> None:
        self._tag: Optional[str] = None
        self._data: list = []

    def add(self, tagged) -> None:
        tag, payload = tagged
        if self._tag is None:
            self._tag = tag
        self._data.extend(payload)

    def add_objects(self, values) -> None:
        if self._tag is None:
            self._tag = "obj"
        self._data.extend(values)

    def finish(self):
        from repro.core import vector as _vector

        if self._tag == "num":
            return _vector.NumericVector.build(self._data, "q")
        if self._tag == "double":
            return _vector.NumericVector.build(self._data, "d")
        if self._tag == "str":
            return _vector.StringVector.from_chunks(self._data)
        return _vector.ObjectVector(self._data)


class ColumnReader:
    """Positioned reader over one column file.

    ``next_index`` is the record index the next :meth:`read_value` will
    return; :meth:`skip` advances it as cheaply as the layout allows.
    This is the object a LazyRecord keeps its per-column ``lastPos``
    in (Section 5.1).

    ``labels`` (typically ``file=...``, ``column=...``) tag the
    per-reader access counters — ``column.rows.read`` and
    ``column.rows.skipped`` — so the storage heatmap can attribute
    row touches to a specific split/column.
    """

    def __init__(
        self, reader, field_schema: Schema, count: int, ctx: TaskContext,
        labels: Optional[dict] = None,
    ) -> None:
        self.reader = reader
        self.field_schema = field_schema
        self.count = count
        self.ctx = ctx
        self.labels = dict(labels or {})
        self.next_index = 0
        #: vectorized execution flips this on to route skips through the
        #: batched kernels in :mod:`repro.serde.vecdecode`; the scalar
        #: path keeps the per-datum reference walk.  Charges are
        #: identical either way (the differential layer proves it).
        self.batch_kernels = False
        self._decoder = BinaryDecoder(reader, ctx.cost, ctx.metrics)
        # Operator attribution: every row this reader decodes or skips
        # is credited to whatever operator is current on the profiler.
        # Resolved at construction — profilers install on the ctx
        # before the reader is opened.  The byte reader is stamped with
        # this reader's class name so vecdecode fallback counters can
        # be labeled by reader type.
        self._profiler = getattr(ctx, "profiler", NULL_PROFILER)
        if reader is not None:
            reader._vec_owner = type(self).__name__
        registry = ctx.obs.registry
        self._obs_rows_read = registry.counter(
            "column.rows.read", **self.labels
        )
        self._obs_rows_skipped = registry.counter(
            "column.rows.skipped", **self.labels
        )

    def sync_to(self, index: int) -> None:
        """Position so the next read returns the value at ``index``."""
        if index < self.next_index:
            raise ValueError(
                f"cannot rewind column from {self.next_index} to {index}"
            )
        if index > self.next_index:
            self.skip(index - self.next_index)

    def value_at(self, index: int):
        self.sync_to(index)
        return self.read_value()

    def skip(self, n: int) -> None:
        raise NotImplementedError

    def read_value(self):
        raise NotImplementedError

    def _read_datum_fast(self, reader=None, decoder=None):
        """One datum via the batched map kernel when enabled (sparse
        gathers hit this per survivor); charge-identical to
        ``read_datum`` either way."""
        if self.batch_kernels and vecdecode.map_batch_supported(
            self.field_schema
        ):
            return vecdecode.read_maps(
                reader if reader is not None else self.reader,
                self.field_schema, 1, self.ctx.cost, self.ctx.metrics,
            )[0]
        return (decoder if decoder is not None else self._decoder).read_datum(
            self.field_schema
        )

    def read_vector(self, n: int):
        """Decode the next ``n`` values into a typed vector.

        Charge-identical to ``n`` consecutive :meth:`read_value` calls
        (the vectorized execution contract).  Layouts override this
        with batched fast paths; this generic version is always
        correct, so any reader is batch-capable.
        """
        from repro.core.vector import ObjectVector

        self._check_read_vector(n)
        read_value = self.read_value
        return ObjectVector([read_value() for _ in range(n)])

    def _check_read_vector(self, n: int) -> None:
        if n < 0:
            raise ValueError("cannot read a negative number of values")
        if self.next_index + n > self.count:
            raise EOFError(
                f"read of {n} values at {self.next_index} past column "
                f"end {self.count}"
            )

    def _check_bounds(self, n: int) -> None:
        """Validate a skip of ``n`` rows and account it to the heatmap.

        Every layout's ``skip`` calls this exactly once with the full
        row count before advancing, so it doubles as the single
        ``column.rows.skipped`` attribution point.
        """
        if n < 0:
            raise ValueError("cannot skip backwards")
        if self.next_index + n > self.count:
            raise EOFError(
                f"skip to {self.next_index + n} past column end {self.count}"
            )
        if n:
            self._obs_rows_skipped.inc(n)
            self._profiler.on_cells_skipped(n)


class PlainColumnReader(ColumnReader):
    """Values back to back; skips walk each value individually."""

    def skip(self, n: int) -> None:
        self._check_bounds(n)
        if not (
            self.batch_kernels
            and vecdecode.skip_batch(
                self.reader, self.field_schema, n,
                self.ctx.cost, self.ctx.metrics,
            )
        ):
            for _ in range(n):
                self._decoder.skip_datum(self.field_schema)
        self.next_index += n

    def read_value(self):
        if self.next_index >= self.count:
            raise EOFError("read past column end")
        value = self._read_datum_fast()
        self.next_index += 1
        self._obs_rows_read.inc()
        self._profiler.on_cells(1)
        return value

    def read_vector(self, n: int):
        self._check_read_vector(n)
        decoded = _batch_decode_values(self.reader, self.field_schema, n, self.ctx)
        if decoded is None:  # container kinds: per-value decode is exact
            return super().read_vector(n)
        builder = _VectorBuilder()
        builder.add(decoded)
        self.next_index += n
        self._obs_rows_read.inc(n)
        self._profiler.on_cells(n)
        return builder.finish()


class SkipListColumnReader(ColumnReader):
    """Skip-list layout: block jumps for large skips (Figure 6)."""

    has_dictionaries = False

    def __init__(
        self, reader, field_schema, count, ctx, sizes, labels=None
    ) -> None:
        super().__init__(reader, field_schema, count, ctx, labels=labels)
        self.sizes = tuple(sizes)
        self.dictionary: Optional[KeyDictionary] = None
        registry = ctx.obs.registry
        self._obs_jumps = registry.counter(
            "column.skiplist.jumps", **self.labels
        )
        self._obs_jumped_records = registry.counter(
            "column.skiplist.jumped_records", **self.labels
        )
        self._obs_jumped_bytes = registry.counter(
            "column.skiplist.jumped_bytes", **self.labels
        )

    def _consume_block_header(self, level: int) -> Tuple[int, int]:
        """Read ``count, nbytes`` (charging their bytes as raw scan)."""
        before = self.reader.offset
        block_count = self.reader.read_varint()
        nbytes = self.reader.read_varint()
        self.ctx.cost.charge_raw_scan(self.ctx.metrics, self.reader.offset - before)
        return block_count, nbytes

    def _consume_dictionary(self) -> None:
        before = self.reader.offset
        self.dictionary = KeyDictionary.read(self.reader)
        self.ctx.cost.charge_raw_scan(self.ctx.metrics, self.reader.offset - before)

    def skip(self, n: int) -> None:
        self._check_bounds(n)
        smallest = self.sizes[-1]
        while n > 0:
            jumped = False
            for level, size in enumerate(self.sizes):
                if self.next_index % size:
                    continue
                block_count, nbytes = self._consume_block_header(level)
                if n >= block_count:
                    self.reader.skip(nbytes)
                    self.next_index += block_count
                    n -= block_count
                    self._obs_jumps.inc()
                    self._obs_jumped_records.inc(block_count)
                    self._obs_jumped_bytes.inc(nbytes)
                    jumped = True
                    break
                if level == 0 and self.has_dictionaries:
                    self._consume_dictionary()
            if jumped:
                continue
            # Values are contiguous until the next bottom-block
            # boundary (where headers must be consumed again).
            run = min(n, smallest - self.next_index % smallest)
            if not (
                run > 1 and self.batch_kernels and self._batch_skip_run(run)
            ):
                run = 1
                self._skip_one_value()
            self.next_index += run
            n -= run

    def read_value(self):
        if self.next_index >= self.count:
            raise EOFError("read past column end")
        for level, size in enumerate(self.sizes):
            if self.next_index % size:
                continue
            self._consume_block_header(level)
            if level == 0 and self.has_dictionaries:
                self._consume_dictionary()
        value = self._decode_one_value()
        self.next_index += 1
        self._obs_rows_read.inc()
        self._profiler.on_cells(1)
        return value

    def read_vector(self, n: int):
        """Batched read: consume block headers at boundaries exactly as
        ``n`` scalar reads would, decoding bottom blocks in tight runs."""
        self._check_read_vector(n)
        builder = _VectorBuilder()
        smallest = self.sizes[-1]
        remaining = n
        while remaining:
            for level, size in enumerate(self.sizes):
                if self.next_index % size == 0:
                    self._consume_block_header(level)
                    if level == 0 and self.has_dictionaries:
                        self._consume_dictionary()
            step = min(remaining, smallest - self.next_index % smallest)
            decoded = (
                None if self.has_dictionaries
                else _batch_decode_values(
                    self.reader, self.field_schema, step, self.ctx
                )
            )
            if decoded is None:
                decode = self._decode_one_value
                builder.add_objects([decode() for _ in range(step)])
            else:
                builder.add(decoded)
            self.next_index += step
            remaining -= step
        self._obs_rows_read.inc(n)
        self._profiler.on_cells(n)
        return builder.finish()

    # Hook points so DCSL can change the value encoding only.
    def _skip_one_value(self) -> None:
        self._decoder.skip_datum(self.field_schema)

    def _batch_skip_run(self, run: int) -> bool:
        """Skip ``run`` contiguous in-block values in one kernel call;
        charge-identical to ``run`` calls of :meth:`_skip_one_value`."""
        return vecdecode.skip_batch(
            self.reader, self.field_schema, run,
            self.ctx.cost, self.ctx.metrics,
        )

    def _decode_one_value(self):
        return self._read_datum_fast()


class DcslColumnReader(SkipListColumnReader):
    """Dictionary compressed skip list for map columns (Section 5.3)."""

    has_dictionaries = True

    def _decode_one_value(self) -> dict:
        ctx = self.ctx
        reader = self.reader
        start = reader.offset
        entries = reader.read_varint()
        ctx.cost.charge_map(ctx.metrics, entries)
        out = {}
        for _ in range(entries):
            key_id = reader.read_varint()
            ctx.cost.charge_dictionary_lookup(ctx.metrics)
            key = self.dictionary.key_of(key_id)
            out[key] = self._decoder._read(self.field_schema.values)
        ctx.cost.charge_raw_scan(ctx.metrics, reader.offset - start)
        ctx.metrics.cells += entries
        return out

    def _skip_one_value(self) -> None:
        reader = self.reader
        start = reader.offset
        entries = reader.read_varint()
        for _ in range(entries):
            reader.read_varint()  # key id
            self._decoder.skip_datum(self.field_schema.values)
        self.ctx.cost.charge_raw_scan(
            self.ctx.metrics, reader.offset - start
        )

    def _batch_skip_run(self, run: int) -> bool:
        return vecdecode.skip_dcsl_batch(
            self.reader, self.field_schema.values, run,
            self.ctx.cost, self.ctx.metrics,
        )


class CBlockColumnReader(ColumnReader):
    """Compressed blocks with lazy (all-or-nothing) decompression."""

    def __init__(
        self, reader, field_schema, count, ctx, codec_name, labels=None
    ) -> None:
        super().__init__(reader, field_schema, count, ctx, labels=labels)
        self.codec_name = codec_name
        self._codec = get_codec(codec_name)
        self._block_values: List[bytes] = []
        self._block_reader: Optional[ByteReader] = None
        self._block_decoder: Optional[BinaryDecoder] = None
        self._block_remaining = 0  # values left in the open block
        registry = ctx.obs.registry
        self._obs_blocks_skipped = registry.counter(
            "column.cblock.blocks_skipped_compressed", **self.labels
        )
        # Decompression-amplification probes: compressed bytes read vs
        # raw bytes inflated (touching one value inflates the block).
        self._obs_bytes_compressed = registry.counter(
            "column.cblock.bytes.compressed", **self.labels
        )
        self._obs_bytes_inflated = registry.counter(
            "column.cblock.bytes.inflated", **self.labels
        )
        self._obs_bytes_skipped = registry.counter(
            "column.cblock.bytes.skipped_compressed", **self.labels
        )

    def _block_header(self) -> Tuple[int, int, int]:
        before = self.reader.offset
        block_count = self.reader.read_varint()
        raw_len = self.reader.read_varint()
        comp_len = self.reader.read_varint()
        self.ctx.cost.charge_raw_scan(self.ctx.metrics, self.reader.offset - before)
        return block_count, raw_len, comp_len

    def _open_block(self) -> None:
        ctx = self.ctx
        block_count, raw_len, comp_len = self._block_header()
        compressed = self.reader.read_bytes(comp_len)
        ctx.cost.charge_raw_scan(ctx.metrics, comp_len)
        ctx.cost.charge_block_inflate_setup(ctx.metrics)
        self._obs_bytes_compressed.inc(comp_len)
        self._obs_bytes_inflated.inc(raw_len)
        raw = self._codec.decompress(
            compressed, ctx.cost, ctx.metrics, registry=ctx.obs.registry
        )
        if len(raw) != raw_len:
            raise ValueError("corrupt compressed block")
        self._block_reader = ByteReader(raw)
        self._block_reader._vec_owner = type(self).__name__
        self._block_decoder = BinaryDecoder(self._block_reader, ctx.cost, ctx.metrics)
        self._block_remaining = block_count

    def skip(self, n: int) -> None:
        self._check_bounds(n)
        while n > 0:
            if self._block_remaining == 0:
                block_count, raw_len, comp_len = self._block_header()
                if n >= block_count:
                    # Whole block unused: skip it compressed.
                    self.reader.skip(comp_len)
                    self.next_index += block_count
                    n -= block_count
                    self._obs_blocks_skipped.inc()
                    self._obs_bytes_skipped.inc(comp_len)
                    continue
                # Someone needs a value inside: inflate the whole block.
                compressed = self.reader.read_bytes(comp_len)
                self.ctx.cost.charge_raw_scan(self.ctx.metrics, comp_len)
                self.ctx.cost.charge_block_inflate_setup(self.ctx.metrics)
                self._obs_bytes_compressed.inc(comp_len)
                self._obs_bytes_inflated.inc(raw_len)
                raw = self._codec.decompress(
                    compressed, self.ctx.cost, self.ctx.metrics,
                    registry=self.ctx.obs.registry,
                )
                self._block_reader = ByteReader(raw)
                self._block_reader._vec_owner = type(self).__name__
                self._block_decoder = BinaryDecoder(
                    self._block_reader, self.ctx.cost, self.ctx.metrics
                )
                self._block_remaining = block_count
            step = min(n, self._block_remaining)
            if not (
                self.batch_kernels
                and step > 1
                and vecdecode.skip_batch(
                    self._block_reader, self.field_schema, step,
                    self.ctx.cost, self.ctx.metrics,
                )
            ):
                for _ in range(step):
                    self._block_decoder.skip_datum(self.field_schema)
            self._block_remaining -= step
            self.next_index += step
            n -= step

    def read_value(self):
        if self.next_index >= self.count:
            raise EOFError("read past column end")
        if self._block_remaining == 0:
            self._open_block()
        value = self._read_datum_fast(
            reader=self._block_reader, decoder=self._block_decoder
        )
        self._block_remaining -= 1
        self.next_index += 1
        self._obs_rows_read.inc()
        self._profiler.on_cells(1)
        return value

    def read_vector(self, n: int):
        """Batched read: inflate blocks lazily as scalar reads would,
        then decode each open block's values in one tight run."""
        self._check_read_vector(n)
        builder = _VectorBuilder()
        remaining = n
        while remaining:
            if self._block_remaining == 0:
                self._open_block()
            step = min(remaining, self._block_remaining)
            decoded = _batch_decode_values(
                self._block_reader, self.field_schema, step, self.ctx
            )
            if decoded is None:
                decode = self._block_decoder.read_datum
                schema = self.field_schema
                builder.add_objects([decode(schema) for _ in range(step)])
            else:
                builder.add(decoded)
            self._block_remaining -= step
            self.next_index += step
            remaining -= step
        self._obs_rows_read.inc(n)
        self._profiler.on_cells(n)
        return builder.finish()


class DefaultColumnReader(ColumnReader):
    """Synthesizes a declared-but-unwritten column's default value.

    Used when a split-directory predates a column added with
    :func:`repro.core.cof.declare_column`: there is no file to read, so
    every record gets the field's default (container defaults are
    copied so callers cannot alias a shared value).
    """

    def __init__(
        self, field_schema: Schema, count: int, ctx, default, labels=None
    ) -> None:
        super().__init__(reader=None, field_schema=field_schema,
                         count=count, ctx=ctx, labels=labels)
        self._default = default
        self._decoder = None  # no bytes to decode

    def skip(self, n: int) -> None:
        self._check_bounds(n)
        self.next_index += n

    def read_value(self):
        if self.next_index >= self.count:
            raise EOFError("read past column end")
        self.next_index += 1
        self._obs_rows_read.inc()
        self._profiler.on_cells(1)
        value = self._default
        if isinstance(value, dict):
            return dict(value)
        if isinstance(value, list):
            return list(value)
        return value


class RleColumnReader(ColumnReader):
    """Run-length encoded column: one decode per run, O(1) run skips."""

    def __init__(self, reader, field_schema, count, ctx, labels=None) -> None:
        super().__init__(reader, field_schema, count, ctx, labels=labels)
        self._run_remaining = 0
        self._run_value = None

    def _open_run(self) -> int:
        before = self.reader.offset
        run = self.reader.read_varint()
        self._run_value = self._decoder.read_datum(self.field_schema)
        self.ctx.cost.charge_raw_scan(
            self.ctx.metrics, self.reader.offset - before
        )
        self._run_remaining = run
        return run

    def read_value(self):
        if self.next_index >= self.count:
            raise EOFError("read past column end")
        if self._run_remaining == 0:
            self._open_run()
        else:
            # Re-emitting the run's value is a register copy, not a
            # deserialization.
            self.ctx.cost.charge_dictionary_lookup(self.ctx.metrics)
            self.ctx.metrics.cells += 1
        self._run_remaining -= 1
        self.next_index += 1
        self._obs_rows_read.inc()
        self._profiler.on_cells(1)
        return self._run_value

    def read_vector(self, n: int):
        """Batched read into a RunsVector: one decode per run, one
        re-emit charge per additional row — and downstream filters
        evaluate once per run, never touching individual rows."""
        from repro.core.vector import RunsVector

        self._check_read_vector(n)
        cost, metrics = self.ctx.cost, self.ctx.metrics
        values: list = []
        starts: list = []
        produced = 0
        while produced < n:
            if self._run_remaining == 0:
                # opening charges the decode; the first row re-emits free
                self._open_run()
                take = min(n - produced, self._run_remaining)
                reemits = take - 1
            else:
                take = min(n - produced, self._run_remaining)
                reemits = take
            values.append(self._run_value)
            starts.append(produced)
            if reemits:
                cost.charge_dictionary_lookup(metrics, reemits)
                metrics.cells += reemits
            self._run_remaining -= take
            produced += take
        self.next_index += n
        self._obs_rows_read.inc(n)
        self._profiler.on_cells(n)
        return RunsVector(values, starts, n)

    def skip(self, n: int) -> None:
        self._check_bounds(n)
        while n > 0:
            if self._run_remaining == 0:
                before = self.reader.offset
                run = self.reader.read_varint()
                if n >= run:
                    # The whole run is unwanted: hop the value bytes.
                    self._decoder.skip_datum(self.field_schema)
                    self.ctx.cost.charge_raw_scan(
                        self.ctx.metrics, self.reader.offset - before
                    )
                    self.next_index += run
                    n -= run
                    continue
                self._run_value = self._decoder.read_datum(self.field_schema)
                self.ctx.cost.charge_raw_scan(
                    self.ctx.metrics, self.reader.offset - before
                )
                self._run_remaining = run
            step = min(n, self._run_remaining)
            self._run_remaining -= step
            self.next_index += step
            n -= step


class DeltaColumnReader(ColumnReader):
    """Delta-encoded integer column; values reconstruct cumulatively."""

    def __init__(self, reader, field_schema, count, ctx, labels=None) -> None:
        super().__init__(reader, field_schema, count, ctx, labels=labels)
        self._current = 0

    def read_value(self):
        if self.next_index >= self.count:
            raise EOFError("read past column end")
        before = self.reader.offset
        self._current += self.reader.read_zigzag()
        cost, metrics = self.ctx.cost, self.ctx.metrics
        cost.charge_int(metrics)
        cost.charge_raw_scan(metrics, self.reader.offset - before)
        self.next_index += 1
        self._obs_rows_read.inc()
        self._profiler.on_cells(1)
        return self._current

    def read_vector(self, n: int):
        from repro.core.vector import NumericVector

        self._check_read_vector(n)
        reader = self.reader
        cost, metrics = self.ctx.cost, self.ctx.metrics
        start = reader.offset
        current = self._current
        values = []
        append = values.append
        for delta in vecdecode.read_zigzags(reader, n):
            current += delta
            append(current)
        self._current = current
        metrics.cells += n
        metrics.charge_cpu(
            n * cost.profile.int_decode
            + (reader.offset - start) * cost.profile.raw_scan_per_byte
        )
        self.next_index += n
        self._obs_rows_read.inc(n)
        self._profiler.on_cells(n)
        return NumericVector.build(values, "q")

    def skip(self, n: int) -> None:
        # Deltas are cumulative: every skipped delta must still be
        # summed (cheap — they are bare varints).
        self._check_bounds(n)
        before = self.reader.offset
        for _ in range(n):
            self._current += self.reader.read_zigzag()
        cost, metrics = self.ctx.cost, self.ctx.metrics
        cost.charge_raw_scan(metrics, self.reader.offset - before)
        metrics.charge_cpu(cost.skip_discount(n * cost.profile.int_decode))
        self.next_index += n


def open_column_reader(
    stream, field_schema: Schema, ctx: TaskContext,
    labels: Optional[dict] = None,
) -> ColumnReader:
    """Parse a column file header off ``stream`` and build its reader.

    ``labels`` tag the reader's access counters (see
    :class:`ColumnReader`); CIF passes ``file``/``column`` so the
    storage heatmap can attribute rows to a split directory.
    """
    from repro.hdfs.streams import StreamByteReader

    reader = StreamByteReader(stream)
    magic = reader.read_bytes(len(MAGIC))
    if magic != MAGIC:
        raise ValueError(f"not a column file (magic {magic!r})")
    fmt = reader.read_byte()
    count = reader.read_varint()
    if fmt == FORMAT_PLAIN:
        return PlainColumnReader(reader, field_schema, count, ctx,
                                 labels=labels)
    if fmt in (FORMAT_SKIPLIST, FORMAT_DCSL):
        levels = reader.read_varint()
        sizes = tuple(reader.read_varint() for _ in range(levels))
        cls = DcslColumnReader if fmt == FORMAT_DCSL else SkipListColumnReader
        return cls(reader, field_schema, count, ctx, sizes, labels=labels)
    if fmt == FORMAT_CBLOCK:
        codec_name = reader.read_string()
        return CBlockColumnReader(reader, field_schema, count, ctx, codec_name,
                                  labels=labels)
    if fmt == FORMAT_RLE:
        return RleColumnReader(reader, field_schema, count, ctx, labels=labels)
    if fmt == FORMAT_DELTA:
        return DeltaColumnReader(reader, field_schema, count, ctx,
                                 labels=labels)
    raise ValueError(f"unknown column format byte {fmt}")
