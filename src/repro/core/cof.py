"""ColumnOutputFormat (COF): loading datasets into split-directories.

Figure 4's layout: a dataset directory contains split-directories
``s0, s1, ...``; each holds one file per top-level column plus a
``.schema`` file.  The split-directory naming convention is what the
ColumnPlacementPolicy keys on, so loading through COF on a filesystem
with CPP installed yields fully co-located splits.

Also implements the cheap **add a column** operation of Section 4.3:
one new file dropped into each split-directory plus a schema update —
no existing byte is rewritten (contrast with
:func:`repro.formats.rcfile.add_column_rewrite`).
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.columnio import ColumnSpec, encode_column_file
from repro.core.stats import STATS_FILE, compute_stats, encode_stats
from repro.serde.binary import BinaryEncoder
from repro.serde.record import Record
from repro.serde.schema import Schema, SchemaError
from repro.sim.metrics import Metrics

SCHEMA_FILE = ".schema"
DEFAULT_SPLIT_BYTES = 64 * 1024 * 1024  # split-directories of ~one block

_SPLIT_DIR = re.compile(r"^s(\d+)$")


def split_dirs_of(fs, dataset: str) -> List[str]:
    """Sorted split-directory paths of a COF dataset."""
    names = []
    for child in fs.listdir(dataset):
        match = _SPLIT_DIR.match(child)
        if match:
            names.append((int(match.group(1)), child))
    return [f"{dataset.rstrip('/')}/{name}" for _, name in sorted(names)]


def read_dataset_schema(fs, dataset: str) -> Schema:
    """The dataset's schema, from the first split-directory."""
    dirs = split_dirs_of(fs, dataset)
    if not dirs:
        raise SchemaError(f"{dataset} has no split-directories")
    raw = fs.read_file(f"{dirs[0]}/{SCHEMA_FILE}").decode("utf-8")
    return Schema.parse(raw)


class ColumnOutputFormat:
    """Writes records into split-directories, one file per column.

    ``specs`` maps column name -> :class:`ColumnSpec`; unlisted columns
    use ``default_spec``.  ``split_bytes`` bounds the (plain-encoded)
    bytes per split-directory — the coarse unit CPP load-balances at.
    """

    def __init__(
        self,
        schema: Schema,
        specs: Optional[Dict[str, ColumnSpec]] = None,
        default_spec: Optional[ColumnSpec] = None,
        split_bytes: int = DEFAULT_SPLIT_BYTES,
    ) -> None:
        schema._require_record()
        self.schema = schema
        self.default_spec = default_spec if default_spec is not None else ColumnSpec()
        self.specs = dict(specs) if specs else {}
        unknown = set(self.specs) - set(schema.field_names)
        if unknown:
            raise SchemaError(f"specs for unknown columns {sorted(unknown)}")
        self.split_bytes = split_bytes

    def spec_for(self, column: str) -> ColumnSpec:
        return self.specs.get(column, self.default_spec)

    def write(
        self,
        fs,
        dataset: str,
        records: Iterable,
        metrics: Optional[Metrics] = None,
        first_split_index: int = 0,
    ) -> int:
        """Load ``records`` under ``dataset``; returns split-dirs written.

        ``first_split_index`` lets several loader tasks write into one
        dataset concurrently, each with its own split-directory number
        range (see :func:`repro.core.loader.parallel_load`).
        """
        fields = self.schema.fields
        buffers: List[List] = [[] for _ in fields]
        buffered_bytes = 0
        split_index = first_split_index

        def flush() -> None:
            nonlocal buffers, buffered_bytes, split_index
            if not buffers[0] and split_index > first_split_index:
                return
            split_dir = f"{dataset.rstrip('/')}/s{split_index}"
            fs.write_file(
                f"{split_dir}/{SCHEMA_FILE}",
                self.schema.to_json().encode("utf-8"),
                metrics=metrics,
            )
            # Zone maps: per-column min/max for split pruning.
            stats = compute_stats(
                self.schema,
                {f.name: values for f, values in zip(fields, buffers)},
            )
            fs.write_file(
                f"{split_dir}/{STATS_FILE}", encode_stats(stats),
                metrics=metrics,
            )
            for field, values in zip(fields, buffers):
                payload = encode_column_file(
                    field.schema, values, self.spec_for(field.name)
                )
                fs.write_file(f"{split_dir}/{field.name}", payload, metrics=metrics)
            buffers = [[] for _ in fields]
            buffered_bytes = 0
            split_index += 1

        wrote_any = False
        for record in records:
            wrote_any = True
            values = (
                record.values_in_order()
                if isinstance(record, Record)
                else [record[f.name] for f in fields]
            )
            for buffer, field, value in zip(buffers, fields, values):
                buffer.append(value)
                enc = BinaryEncoder()
                enc.write_datum(field.schema, value)
                buffered_bytes += len(enc.getvalue())
            if buffered_bytes >= self.split_bytes:
                flush()
        if buffers[0] or not wrote_any:
            flush()
        return split_index - first_split_index


def write_dataset(
    fs,
    dataset: str,
    schema: Schema,
    records: Iterable,
    specs: Optional[Dict[str, ColumnSpec]] = None,
    default_spec: Optional[ColumnSpec] = None,
    split_bytes: int = DEFAULT_SPLIT_BYTES,
    metrics: Optional[Metrics] = None,
) -> int:
    """One-shot COF load (the 'parallel loader' of Section 4.2)."""
    cof = ColumnOutputFormat(
        schema, specs=specs, default_spec=default_spec, split_bytes=split_bytes
    )
    return cof.write(fs, dataset, records, metrics=metrics)


def declare_column(
    fs,
    dataset: str,
    name: str,
    column_schema: Schema,
    default,
    metrics: Optional[Metrics] = None,
) -> None:
    """Add a column *by declaration only* — no data files written.

    The schema files of every split-directory are updated to include
    the new field with a default; readers synthesize the default for
    split-directories that have no file for the column (Avro-style
    schema resolution).  Later loads and selective backfills write real
    files, which then take precedence.  This makes column addition an
    O(split-directories) metadata operation instead of O(data).
    """
    schema = read_dataset_schema(fs, dataset)
    evolved = schema.with_field(name, column_schema, default=default)
    payload = evolved.to_json().encode("utf-8")
    for split_dir in split_dirs_of(fs, dataset):
        with fs.create(f"{split_dir}/{SCHEMA_FILE}", overwrite=True) as out:
            out.write(payload)
        if metrics is not None:
            fs.cluster.disk.charge_write(metrics, len(payload))


def add_column(
    fs,
    dataset: str,
    name: str,
    column_schema: Schema,
    values: Sequence,
    spec: Optional[ColumnSpec] = None,
    metrics: Optional[Metrics] = None,
) -> None:
    """Append a derived column to an existing CIF dataset (Section 4.3).

    ``values`` must be in record order across the whole dataset.  Only
    the new column's files and the per-split schema files are written;
    existing column files are untouched.
    """
    from repro.core.cif import column_record_count

    schema = read_dataset_schema(fs, dataset)
    evolved = schema.with_field(name, column_schema)
    spec = spec if spec is not None else ColumnSpec()
    offset = 0
    for split_dir in split_dirs_of(fs, dataset):
        count = column_record_count(fs, f"{split_dir}/{schema.fields[0].name}")
        chunk = values[offset:offset + count]
        if len(chunk) != count:
            raise ValueError(
                f"need {count} values for {split_dir}, got {len(chunk)}"
            )
        payload = encode_column_file(column_schema, chunk, spec)
        fs.write_file(f"{split_dir}/{name}", payload, metrics=metrics)
        with fs.create(f"{split_dir}/{SCHEMA_FILE}", overwrite=True) as out:
            out.write(evolved.to_json().encode("utf-8"))
        offset += count
    if offset != len(values):
        raise ValueError(f"{len(values) - offset} extra values supplied")
