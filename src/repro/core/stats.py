"""Per-split-directory column statistics (zone maps) and split pruning.

An extension in the spirit of the paper's I/O-elimination theme (and of
the systems CIF prefigured — ORC and Parquet both ship per-stripe /
per-row-group min-max statistics): COF records each split-directory's
per-column minimum and maximum in a ``.stats`` file, and CIF can then
*prune whole split-directories* whose statistics prove a conjunctive
predicate can never match — eliminating not just unread columns but
unread splits.

Statistics are kept for orderable primitive columns (int, long, time,
double, string, boolean).  Complex columns get only a count.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.serde.schema import Schema

STATS_FILE = ".stats"

_ORDERABLE = ("int", "long", "time", "double", "string", "boolean")

#: operators a range predicate may use
OPS = ("<", "<=", ">", ">=", "==")


@dataclass(frozen=True)
class RangePredicate:
    """``column <op> value`` — the prunable fragment of a filter."""

    column: str
    op: str
    value: object

    def __post_init__(self):
        if self.op not in OPS:
            raise ValueError(f"unsupported predicate operator {self.op!r}")

    def satisfiable(self, stats: "ColumnStats") -> bool:
        """Could *any* record in a split with these stats match?

        Unknown statistics (None) are conservatively satisfiable.
        """
        lo, hi = stats.minimum, stats.maximum
        if lo is None or hi is None:
            return True
        try:
            if self.op == "<":
                return lo < self.value
            if self.op == "<=":
                return lo <= self.value
            if self.op == ">":
                return hi > self.value
            if self.op == ">=":
                return hi >= self.value
            return lo <= self.value <= hi  # ==
        except TypeError:
            return True  # incomparable types: never prune


@dataclass
class ColumnStats:
    """Min/max (orderable columns only) and non-null count."""

    count: int = 0
    minimum: Optional[object] = None
    maximum: Optional[object] = None

    def observe(self, value) -> None:
        if value is None:
            return
        self.count += 1
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def to_obj(self) -> dict:
        return {"count": self.count, "min": self.minimum, "max": self.maximum}

    @classmethod
    def from_obj(cls, obj: dict) -> "ColumnStats":
        return cls(
            count=obj.get("count", 0),
            minimum=obj.get("min"),
            maximum=obj.get("max"),
        )


def compute_stats(schema: Schema, columns: Dict[str, list]) -> Dict[str, ColumnStats]:
    """Statistics for one split-directory's buffered column values."""
    out: Dict[str, ColumnStats] = {}
    for field in schema.fields:
        stats = ColumnStats()
        values = columns.get(field.name, [])
        if field.schema.kind in _ORDERABLE:
            for value in values:
                stats.observe(value)
        else:
            stats.count = sum(1 for v in values if v is not None)
        out[field.name] = stats
    return out


def encode_stats(stats: Dict[str, ColumnStats]) -> bytes:
    return json.dumps(
        {name: s.to_obj() for name, s in stats.items()}
    ).encode("utf-8")


def decode_stats(payload: bytes) -> Dict[str, ColumnStats]:
    raw = json.loads(payload.decode("utf-8"))
    return {name: ColumnStats.from_obj(obj) for name, obj in raw.items()}


def read_split_stats(fs, split_dir: str) -> Optional[Dict[str, ColumnStats]]:
    """A split-directory's stats, or None if it predates them."""
    path = f"{split_dir}/{STATS_FILE}"
    if not fs.exists(path):
        return None
    return decode_stats(fs.read_file(path))


def split_satisfiable(
    stats: Optional[Dict[str, ColumnStats]],
    predicates: Sequence[RangePredicate],
) -> bool:
    """False only when the stats *prove* no record can match.

    Missing stats (old datasets) or unknown columns never prune; any
    single unsatisfiable conjunct prunes the whole split.
    """
    if stats is None:
        return True
    for predicate in predicates:
        column_stats = stats.get(predicate.column)
        if column_stats is None:
            continue
        if not predicate.satisfiable(column_stats):
            return False
    return True


def extract_range_predicates(filters) -> List[RangePredicate]:
    """Collect the prunable fragments of conjunctive filter expressions.

    Only expressions that self-describe as ``column <op> literal`` (see
    :mod:`repro.query.expr`) contribute; everything else is simply not
    used for pruning (it still filters record-by-record).
    """
    out: List[RangePredicate] = []
    for expr in filters:
        constraints = getattr(expr, "range_constraints", None)
        if constraints is None:
            single = getattr(expr, "range_constraint", None)
            constraints = [single] if single is not None else []
        for constraint in constraints:
            out.append(RangePredicate(*constraint))
    return out
