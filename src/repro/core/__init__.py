"""The paper's primary contribution: CIF/COF column-oriented storage.

- :mod:`repro.core.columnio` — the four column-file layouts: plain,
  skip-list (Section 5.2), compressed blocks (Section 5.3), and
  dictionary compressed skip lists (DCSL),
- :mod:`repro.core.cof` — ``ColumnOutputFormat``: the loader that breaks
  a dataset into split-directories with one file per column plus a
  schema file (Figure 4), and the cheap ``add_column`` operation
  (Section 4.3),
- :mod:`repro.core.cif` — ``ColumnInputFormat``: projection push-down
  via ``set_columns``, split generation over split-directories, and
  eager/lazy record readers,
- :mod:`repro.core.lazy` — ``LazyRecord`` with the split-level
  ``curPos`` / per-column ``lastPos`` scheme of Section 5.1.

Replica co-location (CPP) lives in :mod:`repro.hdfs.placement`; install
it with ``fs.use_column_placement()`` before loading.
"""

from repro.core.cif import (
    CIFSplit,
    ColumnInputFormat,
    VectorizedCIFRecordReader,
)
from repro.core.cof import (
    ColumnOutputFormat,
    add_column,
    declare_column,
    write_dataset,
)
from repro.core.columnio import ColumnSpec
from repro.core.lazy import LazyRecord
from repro.core.loader import ParallelLoadReport, parallel_load
from repro.core.partitions import PartitionedDataset
from repro.core.vector import (
    VectorFrame,
    default_execution,
    reconcile_metrics,
    resolve_execution,
    set_default_execution,
)

__all__ = [
    "CIFSplit",
    "ColumnInputFormat",
    "ColumnOutputFormat",
    "ColumnSpec",
    "LazyRecord",
    "ParallelLoadReport",
    "PartitionedDataset",
    "VectorFrame",
    "VectorizedCIFRecordReader",
    "add_column",
    "declare_column",
    "default_execution",
    "parallel_load",
    "reconcile_metrics",
    "resolve_execution",
    "set_default_execution",
    "write_dataset",
]
