"""Columnar batch execution for the scan hot path.

Scalar execution materializes and evaluates one record per Python
iteration, so real wall-clock is dominated by interpreter overhead
rather than the simulated I/O the cost model charges.  This module is
the vectorized alternative: a column block is decoded into a typed
vector **once** (ints/floats as flat ``array`` buffers, strings as
offsets + one byte buffer, a validity bitmap for nulls), predicates
from :mod:`repro.query.expr` are compiled into kernels that evaluate
whole vectors producing **selection indexes**, and only surviving rows
are late-materialized for map functions.

The contract with the scalar path is *zero-tolerance equivalence*:

- outputs are record-exact identical,
- every integer metric (``disk_bytes``, ``seeks``, ``records``,
  ``cells``, ``objects``, ...) and every obs counter is exactly equal,
- float metrics (``cpu_time``, ``io_time``) agree to 1e-9 relative
  tolerance (batched charging re-associates float sums; the cost model
  is linear, so the terms themselves are identical).

:func:`reconcile_metrics` checks that contract; the differential test
suite and the ``vector_scan`` bench scenario gate on it.

Selections are frame-local row indexes in ascending order.  The
pinned comparison semantics (NULL never satisfies an ordering
predicate, IEEE-754 NaN, exact mixed int/float comparison) live in
:mod:`repro.query.expr` and are imported lazily to keep this module
free of import cycles with the query layer.
"""

from __future__ import annotations

import math
from array import array
from bisect import bisect_right
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "EXECUTION_MODES",
    "DEFAULT_BATCH_ROWS",
    "set_default_execution",
    "default_execution",
    "resolve_execution",
    "Bitmap",
    "Vector",
    "ObjectVector",
    "NumericVector",
    "StringVector",
    "RunsVector",
    "DictionaryVector",
    "full_selection",
    "intersect_selections",
    "union_selections",
    "complement_selection",
    "gather",
    "compile_predicate",
    "PredicateProgram",
    "fold_aggregate",
    "BatchOp",
    "run_batch_map",
    "VectorFrame",
    "VectorRow",
    "CellLedger",
    "reconcile_metrics",
]


# ---------------------------------------------------------------------------
# Execution-mode switch
# ---------------------------------------------------------------------------

EXECUTION_MODES = ("scalar", "vectorized")

#: rows per decoded frame — large enough to amortize per-batch Python
#: overhead, small enough that late materialization stays cache-friendly
DEFAULT_BATCH_ROWS = 1024

_default_execution = "scalar"


def _validate_execution(mode: str) -> str:
    if mode not in EXECUTION_MODES:
        raise ValueError(
            f"execution must be one of {EXECUTION_MODES}, got {mode!r}"
        )
    return mode


def set_default_execution(mode: str) -> str:
    """Set the ambient execution mode; returns the previous one.

    Scans that were not given an explicit ``execution=`` resolve
    against this (the CLI ``--execution`` flag sets it for a run).
    """
    global _default_execution
    previous = _default_execution
    _default_execution = _validate_execution(mode)
    return previous


def default_execution() -> str:
    return _default_execution


def resolve_execution(mode: Optional[str]) -> str:
    """An explicit mode wins; ``None`` falls back to the ambient default."""
    if mode is None:
        return _default_execution
    return _validate_execution(mode)


def _compare_funcs() -> Dict[str, Callable]:
    # Lazy import: repro.query imports repro.core (for planning), so a
    # module-level import here would be circular.  The pinned semantics
    # stay defined in exactly one place — repro.query.expr.
    from repro.query.expr import _COMPARE_FUNCS

    return _COMPARE_FUNCS


# ---------------------------------------------------------------------------
# Validity bitmap
# ---------------------------------------------------------------------------


class Bitmap:
    """A bitset over row indexes; bit *i* set means row *i* is valid."""

    __slots__ = ("length", "_bits")

    def __init__(self, length: int, fill: bool = True) -> None:
        self.length = length
        nbytes = (length + 7) >> 3
        self._bits = bytearray(b"\xff" * nbytes if fill else nbytes)
        if fill and length & 7:
            # mask tail bits past `length` so count_set stays exact
            self._bits[-1] &= (1 << (length & 7)) - 1

    @classmethod
    def from_bools(cls, flags: Sequence[bool]) -> "Bitmap":
        bitmap = cls(len(flags), fill=False)
        for i, flag in enumerate(flags):
            if flag:
                bitmap._bits[i >> 3] |= 1 << (i & 7)
        return bitmap

    def get(self, i: int) -> bool:
        return bool(self._bits[i >> 3] & (1 << (i & 7)))

    def set(self, i: int, flag: bool = True) -> None:
        if flag:
            self._bits[i >> 3] |= 1 << (i & 7)
        else:
            self._bits[i >> 3] &= ~(1 << (i & 7))

    def count_set(self) -> int:
        return sum(bin(b).count("1") for b in self._bits)

    def to_bools(self) -> List[bool]:
        return [self.get(i) for i in range(self.length)]

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return f"Bitmap(length={self.length}, set={self.count_set()})"


# ---------------------------------------------------------------------------
# Typed vectors
# ---------------------------------------------------------------------------


class Vector:
    """One decoded column block: positional access to ``length`` values.

    ``validity`` is ``None`` when every row is valid (the common case —
    the storage layer never writes NULLs; nulls enter through computed
    kernels like map-key access) or a :class:`Bitmap`.  ``value(i)``
    returns ``None`` for invalid rows.
    """

    kind = "object"

    def __init__(self, length: int, validity: Optional[Bitmap] = None) -> None:
        self.length = length
        self.validity = validity

    def is_valid(self, i: int) -> bool:
        return self.validity is None or self.validity.get(i)

    def value(self, i: int):
        raise NotImplementedError

    def to_list(self) -> List:
        return [self.value(i) for i in range(self.length)]

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return f"{type(self).__name__}(length={self.length})"


class ObjectVector(Vector):
    """Arbitrary Python values (the universal fallback representation)."""

    kind = "object"

    def __init__(self, values: List, validity: Optional[Bitmap] = None) -> None:
        super().__init__(len(values), validity)
        self.values = values

    def value(self, i: int):
        if self.validity is not None and not self.validity.get(i):
            return None
        return self.values[i]

    def to_list(self) -> List:
        if self.validity is None:
            return list(self.values)
        return [self.value(i) for i in range(self.length)]


class NumericVector(Vector):
    """Flat int64/float64 buffer (``array('q')`` / ``array('d')``).

    Numeric storage columns have no NULLs, so there is no validity
    bitmap here; values that overflow int64 fall back to
    :class:`ObjectVector` at build time (see ``build``).
    """

    kind = "numeric"

    def __init__(self, data: array) -> None:
        super().__init__(len(data), None)
        self.data = data

    @classmethod
    def build(cls, values: List, typecode: str = "q") -> Vector:
        try:
            return cls(array(typecode, values))
        except (OverflowError, TypeError):
            # e.g. a long column holding values past ±2**63
            return ObjectVector(values)

    def value(self, i: int):
        return self.data[i]

    def to_list(self) -> List:
        return self.data.tolist()


class StringVector(Vector):
    """Strings as one shared byte buffer plus row offsets.

    ``offsets`` has ``length + 1`` entries; row *i* occupies
    ``buffer[offsets[i]:offsets[i + 1]]`` (UTF-8).  Decoding to ``str``
    happens lazily per row and is cached, so predicates that resolve at
    the byte level (substring scan, equality, ordering — UTF-8 byte
    order equals code-point order) never pay for it.
    """

    kind = "string"

    def __init__(self, buffer: bytes, offsets: List[int]) -> None:
        super().__init__(len(offsets) - 1, None)
        self.buffer = buffer
        self.offsets = offsets
        self._decoded: List[Optional[str]] = [None] * self.length

    @classmethod
    def from_chunks(cls, chunks: List[bytes]) -> "StringVector":
        offsets = [0] * (len(chunks) + 1)
        total = 0
        for i, chunk in enumerate(chunks):
            total += len(chunk)
            offsets[i + 1] = total
        return cls(b"".join(chunks), offsets)

    def byte_length(self, i: int) -> int:
        return self.offsets[i + 1] - self.offsets[i]

    def value(self, i: int) -> str:
        cached = self._decoded[i]
        if cached is None:
            cached = self.buffer[self.offsets[i]:self.offsets[i + 1]].decode(
                "utf-8"
            )
            self._decoded[i] = cached
        return cached


class RunsVector(Vector):
    """Run-length-encoded values: ``values[r]`` covers rows
    ``[starts[r], starts[r + 1])``.

    Built directly by the RLE column reader, so a filter evaluates its
    predicate once per run — never decoding (or even touching) the
    individual rows.  Re-emitted rows alias the same value object,
    exactly like the scalar RLE reader.
    """

    kind = "runs"

    def __init__(self, values: List, starts: List[int], length: int) -> None:
        super().__init__(length, None)
        self.run_values = values
        self.starts = starts  # ascending; starts[0] == 0

    def run_of(self, i: int) -> int:
        return bisect_right(self.starts, i) - 1

    def value(self, i: int):
        return self.run_values[self.run_of(i)]


class DictionaryVector(Vector):
    """Dictionary-encoded values: ``codes[i]`` indexes ``dictionary``.

    A filter evaluates its predicate once per distinct dictionary entry
    and then maps the verdicts over the codes — filter without decode.
    Invalid rows (validity bit clear) read as ``None``.
    """

    kind = "dictionary"

    def __init__(
        self,
        codes: List[int],
        dictionary: List,
        validity: Optional[Bitmap] = None,
    ) -> None:
        super().__init__(len(codes), validity)
        self.codes = codes
        self.dictionary = dictionary

    def value(self, i: int):
        if self.validity is not None and not self.validity.get(i):
            return None
        return self.dictionary[self.codes[i]]


# ---------------------------------------------------------------------------
# Selections
# ---------------------------------------------------------------------------


def full_selection(length: int) -> range:
    """All rows of a frame (``range`` — cheap and iteration-friendly)."""
    return range(length)


def intersect_selections(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Rows present in both ascending selections (ascending result)."""
    in_b = set(b)
    return [i for i in a if i in in_b]


def union_selections(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Rows present in either ascending selection (ascending result)."""
    return sorted(set(a) | set(b))


def complement_selection(
    universe: Sequence[int], survivors: Sequence[int]
) -> List[int]:
    """Rows of ``universe`` not in ``survivors`` (ascending result)."""
    dead = set(survivors)
    return [i for i in universe if i not in dead]


def gather(data, sel: Sequence[int]) -> List:
    """Materialize the values of ``sel`` from a vector or sparse dict."""
    if isinstance(data, dict):
        return [data[i] for i in sel]
    value = data.value
    return [value(i) for i in sel]


# ---------------------------------------------------------------------------
# Predicate kernels
# ---------------------------------------------------------------------------
#
# Kernels never charge decode cost — the column readers already charged
# it (batched) when the vector was built, exactly as the scalar path
# charges it per `read_value`.  The only per-row charge a scalar
# predicate makes is `charge_predicate` inside `contains`, which the
# contains kernel reproduces for every evaluated row.

_SWAPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}

_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}


def kernel_compare(data, symbol: str, literal, sel: Sequence[int]) -> List[int]:
    """Rows of ``sel`` where ``value <symbol> literal`` holds.

    Dispatches on the vector representation: numeric buffers compare
    raw; strings compare as UTF-8 byte slices (byte order == code-point
    order, so no decode); runs and dictionaries evaluate the predicate
    once per run / distinct entry.
    """
    fn = _compare_funcs()[symbol]
    if isinstance(data, dict):
        return [i for i in sel if fn(data[i], literal)]
    if isinstance(data, NumericVector):
        # no NULLs and no None literal short-circuit needed beyond fn
        values = data.data
        return [i for i in sel if fn(values[i], literal)]
    if isinstance(data, RunsVector):
        verdicts = [fn(v, literal) for v in data.run_values]
        starts = data.starts
        nruns = len(verdicts)
        out = []
        run = 0
        for i in sel:
            while run + 1 < nruns and i >= starts[run + 1]:
                run += 1
            if verdicts[run]:
                out.append(i)
        return out
    if isinstance(data, DictionaryVector):
        verdicts = [fn(v, literal) for v in data.dictionary]
        none_verdict = fn(None, literal)
        codes = data.codes
        validity = data.validity
        if validity is None:
            return [i for i in sel if verdicts[codes[i]]]
        return [
            i for i in sel
            if (verdicts[codes[i]] if validity.get(i) else none_verdict)
        ]
    if isinstance(data, StringVector) and isinstance(literal, str):
        # Compare byte slices against the encoded literal: UTF-8
        # preserves code-point order, so every operator agrees with
        # Python str comparison and no row needs decoding.
        needle = literal.encode("utf-8")
        buffer = data.buffer
        offsets = data.offsets
        return [
            i for i in sel
            if fn(buffer[offsets[i]:offsets[i + 1]], needle)
        ]
    value = data.value
    return [i for i in sel if fn(value(i), literal)]


def kernel_contains(data, needle, sel: Sequence[int], ctx) -> List[int]:
    """Rows of ``sel`` whose value contains ``needle``.

    Charges ``charge_predicate`` for every evaluated string row, like
    the scalar `contains`.  The StringVector fast path runs one
    ``bytes.find`` scan over the shared buffer (UTF-8 is
    self-synchronizing, so a byte-level hit inside a row's span is a
    character-level hit) instead of a per-row Python loop.
    """
    if isinstance(data, StringVector) and isinstance(needle, str):
        offsets = data.offsets
        if ctx is not None:
            # charge_predicate takes *character* counts; for an ASCII
            # buffer char count == byte span, else decode (cached).
            if data.buffer.isascii():
                total = sum(offsets[i + 1] - offsets[i] for i in sel)
            else:
                total = sum(len(data.value(i)) for i in sel)
            ctx.metrics.charge_cpu(
                total * ctx.cost.profile.predicate_per_byte
            )
        needle_bytes = needle.encode("utf-8")
        if not needle_bytes:
            return list(sel)
        buffer = data.buffer
        find = buffer.find
        hits = set()
        pos = find(needle_bytes)
        while pos != -1:
            row = bisect_right(offsets, pos) - 1
            if pos + len(needle_bytes) <= offsets[row + 1]:
                hits.add(row)
                pos = find(needle_bytes, offsets[row + 1])
            else:
                # match straddles a row boundary: not a real hit,
                # resume just past this position
                pos = find(needle_bytes, pos + 1)
        return [i for i in sel if i in hits]
    if isinstance(data, RunsVector):
        out = []
        starts = data.starts
        nruns = len(data.run_values)
        run = -1
        verdict = False
        run_value = None
        per_byte = None if ctx is None else ctx.cost.profile.predicate_per_byte
        charged_chars = 0
        for i in sel:
            while run + 1 < nruns and (run < 0 or i >= starts[run + 1]):
                run += 1
                run_value = data.run_values[run]
                verdict = needle in run_value
            if per_byte is not None and isinstance(run_value, (str, bytes)):
                charged_chars += len(run_value)
            if verdict:
                out.append(i)
        if per_byte is not None and charged_chars:
            ctx.metrics.charge_cpu(charged_chars * per_byte)
        return out
    values = (
        (lambda i: data[i]) if isinstance(data, dict) else data.value
    )
    out = []
    for i in sel:
        v = values(i)
        if ctx is not None and isinstance(v, (str, bytes)):
            ctx.charge_predicate(v)
        if needle in v:
            out.append(i)
    return out


# ---------------------------------------------------------------------------
# Predicate compiler
# ---------------------------------------------------------------------------
#
# Exprs self-describe their structure (`op_symbol`, `operands`,
# `contains_needle`, ...; see repro.query.expr).  The compiler pattern-
# matches that metadata into vector kernels; any shape it does not
# recognize falls back to evaluating the original Expr row-at-a-time
# over VectorRow views, which is charge-identical to the scalar path by
# construction.  Note scalar `&`/`|` evaluate BOTH sides on every row
# (no short-circuit inside one Expr), so compiled and/or run both
# children over the same selection before combining — keeping contains
# charges identical.


class PredicateProgram:
    """A compiled (or fallback) filter: selection in, selection out."""

    __slots__ = ("expr", "compiled", "_fn")

    def __init__(self, expr, fn: Callable, compiled: bool) -> None:
        self.expr = expr
        self.compiled = compiled
        self._fn = fn

    def run(self, frame, sel: Sequence[int], ctx=None) -> List[int]:
        return self._fn(frame, sel, ctx)

    def __repr__(self) -> str:
        tag = "compiled" if self.compiled else "fallback"
        return f"PredicateProgram({self.expr.description!r}, {tag})"


def _is_column(expr) -> Optional[str]:
    return getattr(expr, "column_name", None)


def _has_literal(expr) -> bool:
    return hasattr(expr, "literal_value")


def _compile_value(expr) -> Optional[Callable]:
    """Compile to ``fn(frame, sel, ctx) -> list`` aligned with ``sel``."""
    name = _is_column(expr)
    if name is not None:
        return lambda frame, sel, ctx: gather(frame.column(name, sel), sel)
    if _has_literal(expr):
        literal = expr.literal_value
        return lambda frame, sel, ctx: [literal] * len(sel)
    symbol = getattr(expr, "op_symbol", None)
    if symbol == "getitem":
        base_fn = _compile_value(expr.operands[0])
        if base_fn is None:
            return None
        key = expr.getitem_key

        def getitem_values(frame, sel, ctx):
            out = []
            for v in base_fn(frame, sel, ctx):
                if isinstance(v, dict):
                    out.append(v.get(key))
                else:
                    out.append(v[key])
            return out

        return getitem_values
    if symbol in _ARITH:
        left_fn = _compile_value(expr.operands[0])
        right_fn = _compile_value(expr.operands[1])
        if left_fn is None or right_fn is None:
            return None
        op = _ARITH[symbol]
        return lambda frame, sel, ctx: [
            op(a, b)
            for a, b in zip(left_fn(frame, sel, ctx), right_fn(frame, sel, ctx))
        ]
    return None


def _compile_pred(expr) -> Optional[Callable]:
    """Compile to ``fn(frame, sel, ctx) -> selection`` or None."""
    symbol = getattr(expr, "op_symbol", None)
    if symbol in _SWAPPED:  # <, <=, >, >=, ==, !=
        left, right = expr.operands
        left_col, right_col = _is_column(left), _is_column(right)
        if left_col is not None and _has_literal(right):
            literal = right.literal_value
            return lambda frame, sel, ctx: kernel_compare(
                frame.column(left_col, sel), symbol, literal, sel
            )
        if right_col is not None and _has_literal(left):
            literal = left.literal_value
            swapped = _SWAPPED[symbol]
            return lambda frame, sel, ctx: kernel_compare(
                frame.column(right_col, sel), swapped, literal, sel
            )
        left_fn = _compile_value(left)
        right_fn = _compile_value(right)
        if left_fn is None or right_fn is None:
            return None

        def general_compare(frame, sel, ctx):
            fn = _compare_funcs()[symbol]
            lhs = left_fn(frame, sel, ctx)
            rhs = right_fn(frame, sel, ctx)
            return [i for i, a, b in zip(sel, lhs, rhs) if fn(a, b)]

        return general_compare
    if symbol == "and":
        left_fn = _compile_pred(expr.operands[0])
        right_fn = _compile_pred(expr.operands[1])
        if left_fn is None or right_fn is None:
            return None
        return lambda frame, sel, ctx: intersect_selections(
            left_fn(frame, sel, ctx), right_fn(frame, sel, ctx)
        )
    if symbol == "or":
        left_fn = _compile_pred(expr.operands[0])
        right_fn = _compile_pred(expr.operands[1])
        if left_fn is None or right_fn is None:
            return None
        return lambda frame, sel, ctx: union_selections(
            left_fn(frame, sel, ctx), right_fn(frame, sel, ctx)
        )
    if symbol == "not":
        child_fn = _compile_pred(expr.operands[0])
        if child_fn is None:
            return None
        return lambda frame, sel, ctx: complement_selection(
            sel, child_fn(frame, sel, ctx)
        )
    if symbol == "is_null":
        value_fn = _compile_value(expr.operands[0])
        if value_fn is None:
            return None
        return lambda frame, sel, ctx: [
            i for i, v in zip(sel, value_fn(frame, sel, ctx)) if v is None
        ]
    if symbol == "contains":
        needle = expr.contains_needle
        base = expr.operands[0]
        base_col = _is_column(base)
        if base_col is not None:
            return lambda frame, sel, ctx: kernel_contains(
                frame.column(base_col, sel), needle, sel, ctx
            )
        value_fn = _compile_value(base)
        if value_fn is None:
            return None

        def contains_values(frame, sel, ctx):
            out = []
            for i, v in zip(sel, value_fn(frame, sel, ctx)):
                if ctx is not None and isinstance(v, (str, bytes)):
                    ctx.charge_predicate(v)
                if needle in v:
                    out.append(i)
            return out

        return contains_values
    return None


def compile_predicate(expr) -> PredicateProgram:
    """Compile one filter Expr; always succeeds (fallback is row-eval)."""
    fn = _compile_pred(expr)
    if fn is not None:
        return PredicateProgram(expr, fn, compiled=True)

    def fallback(frame, sel, ctx):
        evaluate = expr.evaluate
        row = frame.row
        return [i for i in sel if bool(evaluate(row(i), ctx))]

    return PredicateProgram(expr, fallback, compiled=False)


# ---------------------------------------------------------------------------
# Aggregate folds
# ---------------------------------------------------------------------------


def fold_aggregate(agg, values: Sequence, state=None):
    """Fold one aggregate over already-gathered values.

    NULL semantics match repro.query.aggregates: ``count`` counts every
    row, every value-consuming aggregate skips None.  Sums fold left in
    row order so float results are bit-identical to the scalar ``step``
    chain, not merely close.
    """
    kind = getattr(agg, "kind", None)
    if state is None:
        state = agg.init()
    if kind == "count":
        return state + len(values)
    if kind == "sum":
        for v in values:
            if v is not None:
                state = state + v
        return state
    if kind == "min" or kind == "max":
        # strict left fold: min/max are not associative under NaN, and
        # the contract is bit-exact agreement with the scalar chain
        pick = min if kind == "min" else max
        for v in values:
            if v is not None:
                state = v if state is None else pick(state, v)
        return state
    if kind == "avg":
        total, n = state
        for v in values:
            if v is not None:
                total = total + v
                n += 1
        return (total, n)
    if kind == "count_distinct":
        state.update(v for v in values if v is not None)
        return state
    for v in values:
        state = agg.step(state, v)
    return state


# ---------------------------------------------------------------------------
# Batch frames and late materialization
# ---------------------------------------------------------------------------


class VectorFrame:
    """A window of rows over one split-directory, decoded column-wise
    on demand.

    A column is decoded exactly once per frame, at its first use: the
    whole frame (``read_vector``) when the requesting selection covers
    every row, else a sparse per-row gather (``sync_to`` +
    ``read_value`` — byte-for-byte the scalar access pattern).  Because
    selections only shrink as filters apply, later uses are always
    subsets of the first and hit the cache, mirroring LazyRecord's
    first-touch-only accounting.

    Row indexes are frame-local (0 .. length-1); ``start`` maps them to
    absolute record positions for the column readers.
    """

    def __init__(
        self, readers: Dict, schema, start: int, length: int, ctx,
        ledger: Optional["CellLedger"] = None,
    ) -> None:
        self._readers = readers
        self.schema = schema
        self.start = start
        self.length = length
        self.ctx = ctx
        self.ledger = ledger
        self._columns: Dict[str, object] = {}
        self._touched: Dict[str, object] = {}  # name -> set of rows | True
        self.selection: Sequence[int] = full_selection(length)

    def _require_reader(self, name: str):
        reader = self._readers.get(name)
        if reader is None:
            from repro.serde.schema import SchemaError

            raise SchemaError(
                f"column {name!r} is not in this reader's projection"
            )
        return reader

    def touched(self, name: str):
        return self._touched.get(name)

    def column(self, name: str, sel: Sequence[int]):
        """The column's data at ``sel``: a Vector (full frame) or a
        sparse ``{row: value}`` dict."""
        data = self._columns.get(name)
        if data is None:
            reader = self._require_reader(name)
            if len(sel) == self.length:
                reader.sync_to(self.start)
                data = reader.read_vector(self.length)
                self._touched[name] = True
                if self.ledger is not None:
                    self.ledger.on_materialized(name, self.length)
            else:
                data = {}
                sync_to, read_value = reader.sync_to, reader.read_value
                for i in sel:
                    sync_to(self.start + i)
                    data[i] = read_value()
                self._touched[name] = set(sel)
                if self.ledger is not None:
                    self.ledger.on_materialized(name, len(sel))
            self._columns[name] = data
        elif isinstance(data, dict):
            # Selections shrink monotonically, so this is normally a
            # cache hit; gather any genuinely new rows (ascending —
            # column readers cannot rewind).
            missing = [i for i in sel if i not in data]
            if missing:
                reader = self._require_reader(name)
                for i in missing:
                    reader.sync_to(self.start + i)
                    data[i] = reader.read_value()
                self._touched[name].update(missing)
                if self.ledger is not None:
                    self.ledger.on_materialized(name, len(missing))
        return data

    def get_value(self, name: str, i: int):
        """One cell, decoding at most once (LazyRecord.get semantics)."""
        data = self._columns.get(name)
        if data is not None:
            if isinstance(data, dict):
                if i in data:
                    return data[i]
            else:
                return data.value(i)
        reader = self._require_reader(name)
        reader.sync_to(self.start + i)
        value = reader.read_value()
        if not isinstance(data, dict):
            data = {}
            self._columns[name] = data
            self._touched[name] = set()
        data[i] = value
        self._touched[name].add(i)
        if self.ledger is not None:
            self.ledger.on_materialized(name, 1)
        return value

    def row(self, i: int) -> "VectorRow":
        return VectorRow(self, i)

    def __repr__(self) -> str:
        return (
            f"VectorFrame(start={self.start}, length={self.length}, "
            f"decoded={sorted(self._columns)})"
        )


class VectorRow:
    """A late-materialized row view (duck-types LazyRecord for map fns).

    Unlike LazyRecord it is not reused across rows — but like it, a
    value is deserialized at most once per (row, column)."""

    __slots__ = ("_frame", "_row")

    def __init__(self, frame: VectorFrame, row: int) -> None:
        self._frame = frame
        self._row = row

    @property
    def schema(self):
        return self._frame.schema

    def get(self, name: str):
        return self._frame.get_value(name, self._row)

    def materialize(self):
        from repro.serde.record import Record

        record = Record(self.schema)
        for name in self.schema.field_names:
            record.put(name, self.get(name))
        return record

    def to_dict(self) -> dict:
        return self.materialize().to_dict()

    def __repr__(self) -> str:
        return f"VectorRow(row={self._frame.start + self._row})"


class CellLedger:
    """Replicates LazyRecord's obs counters for batch execution.

    Same counter names and labels (``lazy.records``,
    ``lazy.cells.materialized{column=}``, ``lazy.cells.skipped{column=}``),
    created eagerly like LazyRecord does, so registry snapshots compare
    exactly — including LazyRecord's advance-settles-previous quirk:
    the final record of a split-directory is never settled, so its
    untouched columns are not counted as skipped.
    """

    def __init__(self, names: Sequence[str], obs) -> None:
        registry = obs.registry
        self._records = registry.counter("lazy.records")
        self._materialized = {
            name: registry.counter("lazy.cells.materialized", column=name)
            for name in names
        }
        self._skipped = {
            name: registry.counter("lazy.cells.skipped", column=name)
            for name in names
        }
        self._names = list(names)

    def on_rows(self, n: int) -> None:
        self._records.inc(n)

    def on_materialized(self, name: str, n: int) -> None:
        self._materialized[name].inc(n)

    def settle_row(self, frame: VectorFrame, i: int) -> None:
        """Row-granular settle (iterator mode), exactly LazyRecord._advance."""
        for name in self._names:
            touched = frame.touched(name)
            if touched is True:
                continue
            if touched is None or i not in touched:
                self._skipped[name].inc()

    def settle_frame(self, frame: VectorFrame, exclude_last: bool) -> None:
        """Frame-granular settle (batch mode).

        ``exclude_last`` marks the final frame of a split-directory,
        whose last row the scalar path never settles.
        """
        settled = frame.length - (1 if exclude_last else 0)
        if settled <= 0:
            return
        for name in self._names:
            touched = frame.touched(name)
            if touched is True:
                continue
            covered = (
                0 if touched is None
                else sum(1 for i in touched if i < settled)
            )
            if settled > covered:
                self._skipped[name].inc(settled - covered)


# ---------------------------------------------------------------------------
# Batch map execution
# ---------------------------------------------------------------------------


class BatchOp:
    """A vectorizable mapper: ``filters`` run as selection kernels over
    each frame, then ``row_fn(row, emit, ctx)`` runs per survivor."""

    __slots__ = ("filters", "row_fn")

    def __init__(self, filters: Sequence, row_fn: Callable) -> None:
        self.filters = list(filters)
        self.row_fn = row_fn


def run_batch_map(job, reader, emit, ctx) -> None:
    """Drain a batch-capable reader through a job's BatchOp.

    Charge parity with the scalar loop: the reader counts records as
    frames open; ``map_invoke`` is charged once per row (batched
    multiply); filters are applied in `.where()` order over shrinking
    selections, matching the scalar ``all()`` short-circuit between
    filters (never within one Expr).
    """
    op = job.batch_op
    programs = [compile_predicate(f) for f in op.filters]
    map_invoke = job.cost.profile.map_invoke
    metrics = ctx.metrics
    row_fn = op.row_fn
    profiler = ctx.profiler
    while True:
        frame = reader.read_batch()
        if frame is None:
            return
        metrics.charge_cpu(frame.length * map_invoke)
        sel = frame.selection
        if programs:
            profiler.switch("filter")
            for program in programs:
                if not sel:
                    break
                sel = program.run(frame, sel, ctx)
            profiler.add_rows("filter", frame.length, len(sel))
        profiler.switch("materialize")
        profiler.add_rows("materialize", len(sel), len(sel))
        row = frame.row
        for i in sel:
            row_fn(row(i), emit, ctx)
        # Attribute the next read_batch to the scan stage.
        profiler.switch("scan")


# ---------------------------------------------------------------------------
# Zero-tolerance reconcile
# ---------------------------------------------------------------------------

_INT_METRIC_FIELDS = (
    "disk_bytes", "net_bytes", "requested_bytes", "seeks",
    "records", "cells", "objects",
)
_FLOAT_METRIC_FIELDS = ("io_time", "cpu_time")


def reconcile_metrics(scalar, vectorized, rel_tol: float = 1e-9) -> List[str]:
    """Compare two Metrics under the vectorized-equivalence contract.

    Integer fields must match exactly (the simulated bytes, seeks,
    records, cells and objects are charged identically, just batched);
    float times must agree within ``rel_tol`` (batched charging
    re-associates the same float terms).  Returns human-readable
    mismatch descriptions — empty means reconciled.
    """
    mismatches = []
    exact = "exact match required"
    close = f"rel_tol={rel_tol:g}, abs_tol=1e-12"
    for name in _INT_METRIC_FIELDS:
        a, b = getattr(scalar, name), getattr(vectorized, name)
        if a != b:
            mismatches.append(
                f"{name}: scalar={a!r} vectorized={b!r} ({exact})"
            )
    for name in _FLOAT_METRIC_FIELDS:
        a, b = getattr(scalar, name), getattr(vectorized, name)
        if not math.isclose(a, b, rel_tol=rel_tol, abs_tol=1e-12):
            mismatches.append(
                f"{name}: scalar={a!r} vectorized={b!r} ({close})"
            )
    for key in sorted(set(scalar.extra) | set(vectorized.extra)):
        a = scalar.extra.get(key, 0)
        b = vectorized.extra.get(key, 0)
        if isinstance(a, float) or isinstance(b, float):
            if not math.isclose(a, b, rel_tol=rel_tol, abs_tol=1e-12):
                mismatches.append(
                    f"extra[{key}]: scalar={a!r} vectorized={b!r} ({close})"
                )
        elif a != b:
            mismatches.append(
                f"extra[{key}]: scalar={a!r} vectorized={b!r} ({exact})"
            )
    return mismatches
