"""ColumnInputFormat (CIF): reading split-directories with projection.

The paper's reading path (Section 4.2): a split is one or more
split-directories; the record reader scans the column files of the
projected columns in parallel positions and reassembles records.
Projections are pushed down with :meth:`ColumnInputFormat.set_columns`
— files of unprojected columns are never opened, let alone read.

Two materialization strategies (Section 5.1): ``lazy=False`` builds an
eager :class:`~repro.serde.record.Record` per record; ``lazy=True``
yields a reused :class:`~repro.core.lazy.LazyRecord` that deserializes
a column value only when the map function calls ``get()``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.core.cof import SCHEMA_FILE, split_dirs_of
from repro.core.columnio import (
    ColumnReader,
    DefaultColumnReader,
    open_column_reader,
)
from repro.core.stats import (
    RangePredicate,
    read_split_stats,
    split_satisfiable,
)
from repro.core.lazy import LazyRecord
from repro.core.vector import (
    DEFAULT_BATCH_ROWS,
    CellLedger,
    VectorFrame,
    compile_predicate,
    full_selection,
    resolve_execution,
)
from repro.mapreduce.types import InputFormat, InputSplit, RecordReader, TaskContext
from repro.serde.record import Record
from repro.serde.schema import Schema
from repro.sim.calibration import interleave_bandwidth_scale


def column_record_count(fs, column_path: str) -> int:
    """Record count stored in a column file's header."""
    from repro.util.buffers import ByteReader
    from repro.core import columnio

    head = fs.open(column_path).read(32)
    reader = ByteReader(head)
    magic = reader.read_bytes(len(columnio.MAGIC))
    if magic != columnio.MAGIC:
        raise ValueError(f"{column_path} is not a column file")
    reader.read_byte()
    return reader.read_varint()


class CIFSplit(InputSplit):
    """One or more whole split-directories assigned to a map task."""

    def __init__(self, split_dirs: List[str], length: int, locations: List[int]):
        super().__init__(length, locations, label="+".join(split_dirs))
        self.split_dirs = list(split_dirs)


class CIFRecordReader(RecordReader):
    """Reassembles records from the column files of split-directories."""

    def __init__(
        self,
        fs,
        split: CIFSplit,
        columns: Optional[Sequence[str]],
        lazy: bool,
        ctx: TaskContext,
    ) -> None:
        super().__init__(ctx)
        self._fs = fs
        self._dirs = list(split.split_dirs)
        self._columns = list(columns) if columns is not None else None
        self._lazy = lazy
        self._dir_index = 0
        self._readers: dict = {}
        self._schema: Optional[Schema] = None
        self._count = 0
        self._cursor = 0
        self._record: Optional[LazyRecord] = None

    def _open_next_dir(self) -> bool:
        if self._dir_index >= len(self._dirs):
            return False
        split_dir = self._dirs[self._dir_index]
        self._dir_index += 1
        fs, ctx = self._fs, self.ctx
        obs = ctx.obs
        raw_schema = fs.open(
            f"{split_dir}/{SCHEMA_FILE}", node=ctx.node, metrics=ctx.metrics,
            probe=obs.stream_probe(
                file=f"{split_dir}/{SCHEMA_FILE}", column=SCHEMA_FILE,
                format="cif",
            ),
        ).read_fully()
        full_schema = Schema.parse(raw_schema.decode("utf-8"))
        names = (
            self._columns if self._columns is not None else full_schema.field_names
        )
        self._schema = full_schema.project(names)
        self._readers = {}
        counts = set()
        # Scanning k column files concurrently interleaves disk access
        # across files — the "additional seeks" behind CIF's ~25%
        # all-columns overhead in Section 6.2 (see calibration).
        scale = interleave_bandwidth_scale(len(names))
        defaulted = []  # columns declared with a default but unwritten
        for name in names:
            path = f"{split_dir}/{name}"
            field = full_schema.field(name)
            if not fs.exists(path):
                if not field.has_default:
                    raise ValueError(
                        f"{split_dir} has no file for column {name!r} "
                        "and the field declares no default"
                    )
                defaulted.append(field)
                continue
            stream = fs.open(
                path,
                node=ctx.node,
                metrics=ctx.metrics,
                buffer_size=ctx.io_buffer_size,
                bandwidth_scale=scale,
                probe=obs.stream_probe(file=path, column=name, format="cif"),
            )
            reader = open_column_reader(
                stream, field.schema, ctx,
                labels={"file": path, "column": name},
            )
            self._readers[name] = reader
            counts.add(reader.count)
        if len(counts) > 1:
            raise ValueError(
                f"column files of {split_dir} disagree on record count: {counts}"
            )
        if counts:
            self._count = counts.pop()
        elif defaulted:
            # Every projected column is defaulted: take the record count
            # from any materialized column file of the directory.
            self._count = self._any_column_count(split_dir, full_schema)
        else:
            self._count = 0
        for field in defaulted:
            self._readers[field.name] = DefaultColumnReader(
                field.schema, self._count, ctx, field.default,
                labels={
                    "file": f"{split_dir}/{field.name}",
                    "column": field.name,
                },
            )
        self._cursor = 0
        self._record = (
            LazyRecord(self._schema, self._readers, obs=obs)
            if self._lazy else None
        )
        return True

    def _any_column_count(self, split_dir: str, schema: Schema) -> int:
        for field in schema.fields:
            path = f"{split_dir}/{field.name}"
            if self._fs.exists(path):
                return column_record_count(self._fs, path)
        return 0

    def read_next(self):
        while self._cursor >= self._count:
            if not self._open_next_dir():
                return None
        row = self._cursor
        self._cursor += 1
        if self._lazy:
            self._record._advance(row)
            return None, self._record
        record = Record(self._schema)
        # Eager materialization is the scalar engine's decode stage;
        # lazy cells are instead charged to whichever operator calls
        # ``get()`` (filter/materialize), mirroring the vectorized path.
        profiler = self.ctx.profiler
        prev = profiler.switch("decode")
        profiler.add_rows("decode", 1, 1)
        for name, reader in self._readers.items():
            reader.sync_to(row)
            record.put(name, reader.read_value())
        profiler.switch(prev)
        return None, record


class VectorizedCIFRecordReader(CIFRecordReader):
    """Batch-decoding CIF reader (the ``execution="vectorized"`` path).

    Decodes column frames of up to ``batch_rows`` records with the
    whole-vector ``read_vector`` fast paths and supports two mutually
    exclusive drain styles:

    - **row iteration** (:meth:`read_next`): a drop-in for
      :class:`CIFRecordReader` that yields :class:`~repro.core.vector.
      VectorRow` views.  Lazy-materialization accounting replicates
      :class:`~repro.core.lazy.LazyRecord` exactly — a row's untouched
      columns settle as ``cells.skipped`` when the *next* row of the
      same directory is read, and a directory's final row never
      settles.
    - **batch iteration** (:meth:`read_batch`): returns whole
      :class:`~repro.core.vector.VectorFrame` objects with any pushed
      filters already applied to ``frame.selection``; record counts are
      charged per frame here (row iteration leaves that to
      ``RecordReader.__iter__``).

    Frames never span split-directories, so every frame reads one
    contiguous row range of one directory's column files.
    """

    def __init__(
        self,
        fs,
        split: CIFSplit,
        columns: Optional[Sequence[str]],
        lazy: bool,
        ctx: TaskContext,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        filters: Optional[Sequence] = None,
    ) -> None:
        super().__init__(fs, split, columns, lazy, ctx)
        if batch_rows < 1:
            raise ValueError("batch_rows must be >= 1")
        self._batch_rows = batch_rows
        self._filters = list(filters or [])
        self._programs = None
        self._mode: Optional[str] = None
        self._ledger: Optional[CellLedger] = None
        self._frame: Optional[VectorFrame] = None
        self._frame_last = False  # frame ends its directory
        self._frame_row = 0  # next row to yield (row-iteration mode)
        self._pending = None  # (frame, row) awaiting lazy settle

    def _next_frame(self) -> Optional[VectorFrame]:
        while self._cursor >= self._count:
            if not self._open_next_dir():
                self._frame = None
                return None
            for column_reader in self._readers.values():
                column_reader.batch_kernels = True
            self._ledger = (
                CellLedger(self._readers, self.ctx.obs) if self._lazy else None
            )
        start = self._cursor
        length = min(self._batch_rows, self._count - start)
        self._cursor += length
        frame = VectorFrame(
            self._readers, self._schema, start, length, self.ctx,
            ledger=self._ledger,
        )
        self._frame = frame
        self._frame_last = self._cursor >= self._count
        self._frame_row = 0
        profiler = self.ctx.profiler
        profiler.on_batch(length)
        if not self._lazy:
            # Eager materialization decodes every projected column —
            # same cells as the scalar eager path, charged frame-wise.
            sel = full_selection(length)
            prev = profiler.switch("decode")
            profiler.add_rows("decode", length, length)
            for name in self._readers:
                frame.column(name, sel)
            profiler.switch(prev)
        return frame

    def read_next(self):
        if self._mode == "batches":
            raise RuntimeError(
                "reader is being drained with read_batch(); "
                "row iteration cannot be mixed in"
            )
        self._mode = "rows"
        frame = self._frame
        if frame is None or self._frame_row >= frame.length:
            frame = self._next_frame()
            if frame is None:
                return None
        row = self._frame_row
        self._frame_row = row + 1
        pending = self._pending
        if pending is not None:
            prev_frame, prev_row = pending
            if prev_frame.ledger is not None:
                prev_frame.ledger.settle_row(prev_frame, prev_row)
        # A directory's final row is never settled (LazyRecord parity).
        dir_last = self._frame_last and row == frame.length - 1
        self._pending = None if dir_last else (frame, row)
        if frame.ledger is not None:
            frame.ledger.on_rows(1)
        return None, frame.row(row)

    def read_batch(self) -> Optional[VectorFrame]:
        """Next frame with filters applied, or ``None`` at end of split."""
        if self._mode == "rows":
            raise RuntimeError(
                "reader is being drained with read_next(); "
                "batch iteration cannot be mixed in"
            )
        if self._mode is None:
            self._mode = "batches"
            self._programs = [compile_predicate(f) for f in self._filters]
        prev, prev_last = self._frame, self._frame_last
        if prev is not None and prev.ledger is not None:
            prev.ledger.settle_frame(prev, exclude_last=prev_last)
        frame = self._next_frame()
        if frame is None:
            return None
        self.ctx.metrics.records += frame.length
        if frame.ledger is not None:
            frame.ledger.on_rows(frame.length)
        sel = frame.selection
        if self._programs:
            profiler = self.ctx.profiler
            prev = profiler.switch("filter")
            for program in self._programs:
                if not sel:
                    break
                sel = program.run(frame, sel, self.ctx)
            profiler.add_rows("filter", frame.length, len(sel))
            profiler.switch(prev)
        frame.selection = sel
        return frame


class ColumnInputFormat(InputFormat):
    """CIF: projection push-down plus split-directory-granular splits.

    ``dirs_per_split`` assigns several split-directories to one map task
    ("CIF can actually assign one or more split-directories to a single
    split", Section 4.2).
    """

    def __init__(
        self,
        dataset: str,
        columns: Optional[Union[str, Sequence[str]]] = None,
        lazy: bool = True,
        dirs_per_split: int = 1,
        predicates: Optional[Sequence[RangePredicate]] = None,
        execution: Optional[str] = None,
        batch_rows: int = DEFAULT_BATCH_ROWS,
    ) -> None:
        if dirs_per_split < 1:
            raise ValueError("dirs_per_split must be >= 1")
        self.dataset = dataset
        self.columns: Optional[List[str]] = None
        if columns is not None:
            self.set_columns(columns)
        self.lazy = lazy
        self.dirs_per_split = dirs_per_split
        self.predicates: List[RangePredicate] = list(predicates or [])
        #: "scalar" | "vectorized" | None (None defers to the ambient
        #: default set by repro.core.vector.set_default_execution)
        self.execution = execution
        if execution is not None:
            resolve_execution(execution)  # validate eagerly
        self.batch_rows = batch_rows
        self.filters: List = []
        #: split-directories pruned by zone maps on the last get_splits
        self.pruned_dirs = 0

    def set_columns(self, columns: Union[str, Sequence[str]]) -> None:
        """Push a projection down, as in
        ``ColumnInputFormat.setColumns(job, "url, metadata")``."""
        if isinstance(columns, str):
            columns = [c.strip() for c in columns.split(",") if c.strip()]
        self.columns = list(columns)

    def set_predicates(self, predicates: Sequence[RangePredicate]) -> None:
        """Push conjunctive range predicates down for split pruning.

        A split-directory whose ``.stats`` zone map proves a predicate
        unsatisfiable is never scheduled — its files are not even
        opened.  Predicates do NOT filter surviving records; callers
        still apply their full filter per record.
        """
        self.predicates = list(predicates)

    def get_splits(self, fs, cluster) -> List[CIFSplit]:
        dirs = split_dirs_of(fs, self.dataset)
        if self.predicates:
            kept = []
            for split_dir in dirs:
                stats = read_split_stats(fs, split_dir)
                if split_satisfiable(stats, self.predicates):
                    kept.append(split_dir)
            self.pruned_dirs = len(dirs) - len(kept)
            dirs = kept
        else:
            self.pruned_dirs = 0
        splits: List[CIFSplit] = []
        for start in range(0, len(dirs), self.dirs_per_split):
            group = dirs[start:start + self.dirs_per_split]
            length = 0
            hosts: Optional[set] = None
            for split_dir in group:
                # A task also reads the split's schema file, so full
                # locality requires it on the same node as the columns
                # (with CPP it always is; without, rarely).
                needed = [f"{split_dir}/{SCHEMA_FILE}"] + [
                    f"{split_dir}/{name}"
                    for name in self._projected_files(fs, split_dir)
                ]
                for i, path in enumerate(needed):
                    if not fs.exists(path):
                        continue  # declared-with-default, not yet written
                    if i > 0:
                        length += fs.file_length(path)
                    file_hosts = set(fs.hosts_for(path))
                    hosts = file_hosts if hosts is None else hosts & file_hosts
            splits.append(CIFSplit(group, length, sorted(hosts or ())))
        return splits

    def _projected_files(self, fs, split_dir: str) -> List[str]:
        if self.columns is not None:
            return self.columns
        # Dot-files (.schema, .stats) are metadata, not columns.
        return [c for c in fs.listdir(split_dir) if not c.startswith(".")]

    def set_filter(self, *exprs) -> None:
        """Push full row filters (:class:`repro.query.expr.Expr`) down.

        Unlike :meth:`set_predicates` (zone-map pruning only), these
        filter records: the vectorized reader applies them as selection
        kernels in :meth:`VectorizedCIFRecordReader.read_batch`.  The
        scalar path ignores them — scalar callers still filter per
        record, exactly as before.
        """
        self.filters = list(exprs)

    def open_reader(self, fs, split: CIFSplit, ctx: TaskContext) -> RecordReader:
        if resolve_execution(self.execution) == "vectorized":
            return VectorizedCIFRecordReader(
                fs, split, self.columns, self.lazy, ctx,
                batch_rows=self.batch_rows, filters=self.filters,
            )
        return CIFRecordReader(fs, split, self.columns, self.lazy, ctx)
