"""The parallel COF loader (Section 4.2).

"Data may arrive into Hadoop in any format.  Once it is in HDFS, a
parallel loader is used to load the data using COF."  This module is
that loader: one load task per input split, scheduled across the
cluster's map slots with the usual locality preference, each task
writing its own disjoint range of split-directories so the result is
byte-identical in content to a sequential load (record order is
preserved because ranges follow input-split order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.cof import ColumnOutputFormat
from repro.core.columnio import ColumnSpec
from repro.core.lazy import LazyRecord
from repro.mapreduce.scheduler import ScheduledTask, makespan, schedule_map_tasks
from repro.mapreduce.types import InputFormat, InputSplit, TaskContext
from repro.serde.schema import Schema
from repro.sim.cost import CpuCostModel
from repro.sim.metrics import Metrics

#: Split-directory indices reserved per loader task.  A single input
#: split never produces more directories than this (it would need to be
#: ~6 TB at default sizes).
INDEX_STRIDE = 100_000


@dataclass
class ParallelLoadReport:
    """What a parallel load did and cost."""

    records: int
    split_dirs: int
    load_time: float       # sum of task times / total map slots
    makespan: float        # wall clock across the cluster
    metrics: Metrics
    tasks: List[ScheduledTask] = field(default_factory=list)


def parallel_load(
    fs,
    input_format: InputFormat,
    dataset: str,
    schema: Schema,
    specs: Optional[Dict[str, ColumnSpec]] = None,
    default_spec: Optional[ColumnSpec] = None,
    split_bytes: int = 64 * 1024 * 1024,
    cost: Optional[CpuCostModel] = None,
) -> ParallelLoadReport:
    """Convert ``input_format``'s data into a CIF dataset, in parallel."""
    cluster = fs.cluster
    cost = cost if cost is not None else CpuCostModel()
    splits = input_format.get_splits(fs, cluster)
    ordinal_of = {id(split): i for i, split in enumerate(splits)}
    counters = {"records": 0, "dirs": 0}

    def execute(split: InputSplit, node: int) -> Metrics:
        ctx = TaskContext(
            node=node, cost=cost, io_buffer_size=cluster.io_buffer_size
        )
        records = []
        reader = input_format.open_reader(fs, split, ctx)
        try:
            for _, record in reader:
                if isinstance(record, LazyRecord):
                    record = record.materialize()
                records.append(record)
        finally:
            reader.close()
        cof = ColumnOutputFormat(
            schema, specs=specs, default_spec=default_spec,
            split_bytes=split_bytes,
        )
        written = cof.write(
            fs, dataset, records,
            metrics=ctx.metrics,
            first_split_index=ordinal_of[id(split)] * INDEX_STRIDE,
        )
        counters["records"] += len(records)
        counters["dirs"] += written
        return ctx.metrics

    tasks = schedule_map_tasks(
        splits, cluster.num_nodes, cluster.map_slots_per_node, execute
    )
    total = Metrics()
    for task in tasks:
        total.add(task.metrics)
    return ParallelLoadReport(
        records=counters["records"],
        split_dirs=counters["dirs"],
        load_time=sum(t.duration for t in tasks) / cluster.total_map_slots,
        makespan=makespan(tasks),
        metrics=total,
        tasks=tasks,
    )
