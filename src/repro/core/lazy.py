"""Lazy record construction (Section 5.1).

``EagerRecord`` and ``LazyRecord`` implement the same ``get(name)``
interface, so map functions cannot tell which one the InputFormat
instantiated — the paper's design requirement.

A :class:`LazyRecord` holds no values.  The record reader advances a
split-level ``curPos``; each column reader keeps its own ``lastPos``
(its ``next_index``).  Only when ``get()`` is called does the column
reader ``skip(curPos - lastPos)`` and deserialize one value — so
columns that a map function never touches (for a given record) are
never deserialized, and with skip-list files their bytes are never
read at all.

As in Hadoop, the record object handed to ``map()`` is **reused**
across calls: values fetched for record *i* are invalid once the reader
advances to record *i+1*.  Call :meth:`LazyRecord.materialize` to take
a stable copy.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.columnio import ColumnReader
from repro.obs import NULL_OBS, Observability
from repro.serde.record import Record
from repro.serde.schema import Schema, SchemaError


class LazyRecord:
    """A record whose fields deserialize on first access (per record)."""

    def __init__(
        self,
        schema: Schema,
        readers: Dict[str, ColumnReader],
        obs: Optional[Observability] = None,
    ) -> None:
        schema._require_record()
        self.schema = schema
        self._readers = readers
        self._row = -1
        self._cache: Dict[str, object] = {}
        registry = (obs if obs is not None else NULL_OBS).registry
        self._obs_records = registry.counter("lazy.records")
        # Per-column cells: labeled so the heatmap can show which
        # projected columns a map function actually touches.  Aggregate
        # queries (value_of with no labels) still sum across columns.
        self._obs_materialized = {
            name: registry.counter("lazy.cells.materialized", column=name)
            for name in readers
        }
        self._obs_skipped = {
            name: registry.counter("lazy.cells.skipped", column=name)
            for name in readers
        }

    def _advance(self, row: int) -> None:
        """Move to record ``row`` (called by the record reader)."""
        if self._row >= 0:
            # Settle the previous record's books: projected columns the
            # map function never touched were skipped, not deserialized.
            for name in self._readers:
                if name not in self._cache:
                    self._obs_skipped[name].inc()
        self._obs_records.inc()
        self._row = row
        self._cache.clear()

    def get(self, name: str):
        """Deserialize (at most once) and return field ``name``'s value."""
        if name in self._cache:
            return self._cache[name]
        reader = self._readers.get(name)
        if reader is None:
            raise SchemaError(
                f"column {name!r} is not in this reader's projection"
            )
        # lastPos (reader.next_index) catches up to curPos (self._row):
        # the records in between are skipped, not deserialized.
        reader.sync_to(self._row)
        value = reader.read_value()
        # Counted only after the read succeeds, so a fault mid-read
        # cannot desynchronize this from column.rows.read — the exact
        # reconciliation `repro explain` performs depends on it.
        self._obs_materialized[name].inc()
        self._cache[name] = value
        return value

    def materialize(self) -> Record:
        """An eager copy of this record (all projected fields fetched)."""
        record = Record(self.schema)
        for name in self._readers:
            record.put(name, self.get(name))
        return record

    def to_dict(self) -> dict:
        return self.materialize().to_dict()

    def __repr__(self) -> str:
        return f"LazyRecord(row={self._row}, cached={sorted(self._cache)})"
