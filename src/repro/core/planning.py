"""Capacity planning for CIF datasets (Section 4.3's parallelism math).

The paper's discussion: a MapReduce job reaches maximum parallelism
when it has at least as many splits as the cluster has map slots
(``m``).  RCFile splits at row-group granularity (``r`` row groups per
block), so it parallelizes fully once the dataset exceeds ``m / r``
blocks.  CIF splits at split-directory granularity; with ``c`` column
files of one block each per split-directory, full parallelism needs
``m x c`` blocks — the paper's example: 200 map slots, 64 MB blocks and
10 columns need a 128 GB dataset.

These helpers let a user check where a dataset sits before choosing
split-directory sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ParallelismReport:
    """How much of the cluster a dataset can keep busy."""

    splits: int
    map_slots: int

    @property
    def fully_parallel(self) -> bool:
        return self.splits >= self.map_slots

    @property
    def utilization(self) -> float:
        """Fraction of map slots a single wave can occupy."""
        if self.map_slots <= 0:
            return 0.0
        return min(1.0, self.splits / self.map_slots)


def cif_splits(dataset_bytes: int, split_dir_bytes: int) -> int:
    """Number of CIF splits (= split-directories) for a dataset."""
    if split_dir_bytes <= 0:
        raise ValueError("split_dir_bytes must be positive")
    return max(1, math.ceil(dataset_bytes / split_dir_bytes)) if dataset_bytes else 0


def rcfile_splits(dataset_bytes: int, block_bytes: int) -> int:
    """Number of RCFile splits (= HDFS blocks; row groups subdivide
    further for scheduling but a block is the locality unit)."""
    if block_bytes <= 0:
        raise ValueError("block_bytes must be positive")
    return math.ceil(dataset_bytes / block_bytes) if dataset_bytes else 0


def cif_parallelism(
    dataset_bytes: int, split_dir_bytes: int, map_slots: int
) -> ParallelismReport:
    return ParallelismReport(cif_splits(dataset_bytes, split_dir_bytes), map_slots)


def min_dataset_for_full_parallelism(
    map_slots: int, num_columns: int, block_bytes: int
) -> int:
    """Section 4.3's bound: ``m x c`` blocks.

    "Assuming a typical cluster with 200 map slots and 64M blocks, a
    dataset with 10 columns would need to be at least 128GB in size
    before full parallelism is reached."
    """
    if map_slots < 1 or num_columns < 1 or block_bytes < 1:
        raise ValueError("all arguments must be positive")
    return map_slots * num_columns * block_bytes


def rcfile_min_dataset_for_full_parallelism(
    map_slots: int, row_groups_per_block: int, block_bytes: int
) -> int:
    """The paper's RCFile bound: ``m / r`` blocks."""
    if map_slots < 1 or row_groups_per_block < 1 or block_bytes < 1:
        raise ValueError("all arguments must be positive")
    return math.ceil(map_slots / row_groups_per_block) * block_bytes


def recommended_split_dir_bytes(
    dataset_bytes: int, map_slots: int, block_bytes: int, waves: int = 3
) -> int:
    """A split-directory size giving ~``waves`` scheduling waves.

    Bounded above by one HDFS block (the paper's "typically 64 MB") and
    below by a floor that keeps per-directory overhead amortized.
    """
    if dataset_bytes <= 0:
        return block_bytes
    target_splits = max(1, map_slots * waves)
    size = dataset_bytes // target_splits
    floor = block_bytes // 64
    return max(floor, min(block_bytes, size or floor))
