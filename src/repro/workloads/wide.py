"""Wide-record datasets for Appendix B.5 (Figure 11).

"We generated three datasets with 20, 40, and 80 columns per record.
Each column contained a random string of length 30."
"""

from __future__ import annotations

import random
import string
from typing import Iterator, List

from repro.serde.record import Record
from repro.serde.schema import Schema

_ALPHABET = string.ascii_letters + string.digits


def column_names(num_columns: int) -> List[str]:
    return [f"c{i:03d}" for i in range(num_columns)]


def wide_schema(num_columns: int) -> Schema:
    return Schema.record(
        f"wide{num_columns}",
        [(name, Schema.string()) for name in column_names(num_columns)],
    )


def wide_records(num_columns: int, n: int, seed: int = 411) -> Iterator[Record]:
    schema = wide_schema(num_columns)
    rng = random.Random(seed + num_columns)
    names = column_names(num_columns)
    for _ in range(n):
        record = Record(schema)
        for name in names:
            record.put(name, "".join(rng.choices(_ALPHABET, k=30)))
        yield record
