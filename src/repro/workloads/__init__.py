"""Workload generators and the paper's MapReduce jobs.

The paper evaluates on two datasets we cannot have — a 57 GB synthetic
dataset (Section 6.2) and a 6.4 TB Nutch intranet crawl (Section 6.3) —
so this package generates seeded, scale-controlled equivalents with the
same schema shapes, column-size distributions and predicate
selectivities:

- :mod:`repro.workloads.micro` — the microbenchmark records (6 strings,
  6 integers, one 10-entry map),
- :mod:`repro.workloads.crawl` — Figure 2's ``URLInfo`` records with a
  tunable-selectivity ``ibm.com/jp`` predicate and multi-KB content,
- :mod:`repro.workloads.wide` — the 20/40/80-column datasets of
  Appendix B.5,
- :mod:`repro.workloads.jobs` — the map/reduce functions the paper
  runs: the distinct content-type job (Figure 1) and the selectivity
  aggregation of Appendix B.4.
"""

from repro.workloads.crawl import (
    CRAWL_PREDICATE,
    compress_content_column,
    crawl_records,
    crawl_schema,
)
from repro.workloads.micro import micro_records, micro_schema
from repro.workloads.wide import wide_records, wide_schema

__all__ = [
    "CRAWL_PREDICATE",
    "compress_content_column",
    "crawl_records",
    "crawl_schema",
    "micro_records",
    "micro_schema",
    "wide_records",
    "wide_schema",
]
