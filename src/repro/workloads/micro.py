"""The Section 6.2 microbenchmark dataset.

"Each record consisted of 6 strings, 6 integers, and a map.  The
integers were randomly assigned values between 1 and 10000.  Random
strings of length between 20 and 40 were generated over readable ASCII
characters.  Each map column consisted of 10 items, where the keys were
random strings of length 4, and the values were randomly chosen
integers."
"""

from __future__ import annotations

import random
import string
from typing import Iterator, List

from repro.serde.record import Record
from repro.serde.schema import Schema

_READABLE = string.ascii_letters + string.digits + " .,;:-_/"

STRING_COLUMNS = [f"str{i}" for i in range(6)]
INT_COLUMNS = [f"int{i}" for i in range(6)]
MAP_COLUMN = "attrs"


def micro_schema() -> Schema:
    fields = [(name, Schema.string()) for name in STRING_COLUMNS]
    fields += [(name, Schema.int_()) for name in INT_COLUMNS]
    fields.append((MAP_COLUMN, Schema.map(Schema.int_())))
    return Schema.record("micro", fields)


def _random_string(rng: random.Random, lo: int, hi: int) -> str:
    return "".join(rng.choices(_READABLE, k=rng.randint(lo, hi)))


def micro_records(n: int, seed: int = 62) -> Iterator[Record]:
    """Yield ``n`` deterministic microbenchmark records."""
    schema = micro_schema()
    rng = random.Random(seed)
    # A limited key universe of 4-char keys, as a real map column has.
    key_universe = [_random_string(rng, 4, 4) for _ in range(64)]
    for _ in range(n):
        record = Record(schema)
        for name in STRING_COLUMNS:
            record.put(name, _random_string(rng, 20, 40))
        for name in INT_COLUMNS:
            record.put(name, rng.randint(1, 10000))
        keys: List[str] = rng.sample(key_universe, 10)
        record.put(MAP_COLUMN, {k: rng.randint(1, 10000) for k in keys})
        yield record
