"""The paper's MapReduce jobs, written against the generic Record API.

``distinct_content_types_job`` is Figure 1's job: find every distinct
``content-type`` reported by pages whose URL contains a pattern.  The
map function works identically over TXT, SEQ, RCFile and CIF (eager or
lazy) records — the portability the paper's design preserves.

``selectivity_aggregation`` is Appendix B.4's job: aggregate the value
under a given key of the map-typed column for records whose string
column matches a pattern.
"""

from __future__ import annotations

from typing import Optional

from repro.mapreduce.job import Job
from repro.mapreduce.types import InputFormat
from repro.workloads.crawl import CRAWL_PREDICATE


def make_content_type_mapper(pattern: str = CRAWL_PREDICATE):
    """Figure 1's map function over URLInfo records."""

    def mapper(key, record, emit, ctx):
        url = record.get("url")
        ctx.charge_predicate(url)
        if pattern in url:
            emit(record.get("metadata").get("content-type"), None)

    return mapper


def distinct_reducer(key, values, emit, ctx):
    """Figure 1's reduce: one output row per distinct key."""
    for _ in values:
        pass  # drain
    emit(key, None)


def distinct_content_types_job(
    input_format: InputFormat,
    pattern: str = CRAWL_PREDICATE,
    num_reducers: int = 40,
    name: str = "distinct-content-types",
) -> Job:
    """The Section 6.3 job, ready to run over any input format."""
    return Job(
        name,
        make_content_type_mapper(pattern),
        input_format,
        reducer=distinct_reducer,
        num_reducers=num_reducers,
    )


def make_selectivity_mapper(
    string_column: str,
    map_column: str,
    map_key: str,
    pattern: str,
):
    """Appendix B.4's map: sum ``map_column[map_key]`` where
    ``string_column`` contains ``pattern``."""

    def mapper(key, record, emit, ctx):
        text = record.get(string_column)
        ctx.charge_predicate(text)
        if pattern in text:
            value = record.get(map_column).get(map_key)
            if value is not None:
                emit("sum", value)

    return mapper


def sum_reducer(key, values, emit, ctx):
    emit(key, sum(values))


def selectivity_aggregation_job(
    input_format: InputFormat,
    string_column: str,
    map_column: str,
    map_key: str,
    pattern: str,
    name: str = "selectivity-aggregation",
) -> Job:
    return Job(
        name,
        make_selectivity_mapper(string_column, map_column, map_key, pattern),
        input_format,
        reducer=sum_reducer,
        num_reducers=1,
    )


def make_projection_scan_mapper(columns, counter: Optional[str] = None):
    """A pure scan: touch the given columns of every record (Figure 7)."""

    def mapper(key, record, emit, ctx):
        for column in columns:
            record.get(column)
        if counter:
            ctx.counters.increment(counter)

    return mapper


def projection_scan_job(
    input_format: InputFormat, columns, name: str = "scan"
) -> Job:
    """Map-only scan over a projection; used by the microbenchmarks."""
    return Job(name, make_projection_scan_mapper(columns), input_format)
