"""A synthetic intranet crawl with Figure 2's ``URLInfo`` schema.

The paper's Section 6.3 experiments run over a 6.4 TB Nutch crawl of an
IBM intranet; this generator produces a seeded, scaled-down equivalent
that preserves the properties the experiments depend on:

- the ``URLInfo`` schema: url, srcUrl, fetchTime, inlink array,
  metadata map (including ``content-type`` and other HTTP response
  headers), annotations map, and a multi-KB ``content`` byte column
  that dominates record size,
- a predicate (``url contains "ibm.com/jp"``) with controllable
  selectivity (~6% in the paper),
- metadata/annotation keys drawn from a limited universe (what makes
  dictionary compression effective, Section 5.3),
- compressible content (so SEQ-block/record and RCFile-comp show
  realistic ratios).
"""

from __future__ import annotations

import random
import string
from typing import Iterator

from repro.compress.codecs import get_codec
from repro.serde.record import Record
from repro.serde.schema import Schema

CRAWL_PREDICATE = "ibm.com/jp"

CONTENT_TYPES = [
    "text/html",
    "text/html; charset=utf-8",
    "text/html; charset=shift_jis",
    "application/pdf",
    "application/xml",
    "text/plain",
    "image/png",
    "application/msword",
]

_METADATA_KEYS = [
    "content-type", "encoding", "language", "location", "server",
    "last-modified", "content-length", "cache-control", "expires",
    "etag", "status", "x-frame-options", "via", "vary", "connection",
    "set-cookie", "pragma", "age", "x-powered-by", "transfer-encoding",
]

_ANNOTATION_KEYS = [
    "title", "summary", "topic", "entity", "sentiment", "category",
    "boilerplate", "outdegree", "pagerank-bucket", "spam-score",
]

_WORDS = [
    "server", "cloud", "data", "analytics", "intranet", "portal", "team",
    "product", "support", "global", "service", "platform", "research",
    "storage", "network", "division", "report", "quarter", "customer",
    "solution", "japan", "tokyo", "systems", "software", "hardware",
]


def crawl_schema() -> Schema:
    return Schema.record(
        "URLInfo",
        [
            ("url", Schema.string()),
            ("srcUrl", Schema.string()),
            ("fetchTime", Schema.time()),
            ("inlink", Schema.array(Schema.string())),
            ("metadata", Schema.map(Schema.string())),
            ("annotations", Schema.map(Schema.string())),
            ("content", Schema.bytes_()),
        ],
    )


def _url(rng: random.Random, match: bool) -> str:
    host = rng.choice(["w3.ibm.com", "ibm.com", "research.ibm.com"])
    path = "/".join(rng.choices(_WORDS, k=rng.randint(2, 4)))
    if match:
        return f"http://{host}/jp/{path}" .replace(f"{host}/jp", "ibm.com/jp")
    return f"http://{host}/{path}/p{rng.randint(1, 99999)}.html"


def _content(rng: random.Random, mean_bytes: int) -> bytes:
    """Page content compressing at ~2x, like the paper's crawl.

    Table 1: SEQ-record shrank the 6400 GB crawl to ~3008 GB, i.e. the
    content column compresses just over 2x.  Half the filler here is
    markup-like repetitive text, half is incompressible (already-encoded
    images/PDF payloads in a real crawl).
    """
    size = max(64, int(rng.gauss(mean_bytes, mean_bytes / 4)))
    half = size // 2
    words = []
    total = 0
    while total < half:
        word = rng.choice(_WORDS)
        words.append(word)
        total += len(word) + 1
    text = " ".join(words).encode("utf-8")[:half]
    return text + rng.randbytes(size - len(text))


def crawl_records(
    n: int,
    selectivity: float = 0.06,
    content_bytes: int = 4096,
    seed: int = 1969,
) -> Iterator[Record]:
    """Yield ``n`` URLInfo records; ``selectivity`` of them match the
    ``ibm.com/jp`` predicate."""
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError("selectivity must be within [0, 1]")
    schema = crawl_schema()
    rng = random.Random(seed)
    for i in range(n):
        match = rng.random() < selectivity
        record = Record(schema)
        record.put("url", _url(rng, match))
        record.put("srcUrl", _url(rng, False))
        record.put("fetchTime", 1_293_840_000 + i * 37)
        record.put(
            "inlink",
            [_url(rng, False) for _ in range(rng.randint(0, 6))],
        )
        metadata = {"content-type": rng.choice(CONTENT_TYPES)}
        for key in rng.sample(_METADATA_KEYS[1:], rng.randint(14, 19)):
            metadata[key] = "".join(
                rng.choices(
                    string.ascii_lowercase + string.digits,
                    k=rng.randint(8, 24),
                )
            )
        record.put("metadata", metadata)
        record.put(
            "annotations",
            {
                key: rng.choice(_WORDS)
                for key in rng.sample(_ANNOTATION_KEYS, rng.randint(3, 7))
            },
        )
        record.put("content", _content(rng, content_bytes))
        yield record


def compress_content_column(records) -> Iterator[Record]:
    """The SEQ-custom transformation (Section 6.3): application code
    compresses just the bulky ``content`` column before writing an
    otherwise-uncompressed SequenceFile."""
    codec = get_codec("lzo")
    for record in records:
        clone = Record(record.schema, record.to_dict())
        clone.put("content", codec.compress(record.get("content")))
        yield clone
