"""Deterministic, boundary-biased case generation for the oracle/fuzzer.

One seed maps to exactly one :class:`Case` — a schema, a batch of
records, a query and a chaos seed — forever.  Reproducing any fuzzer
finding is therefore ``repro check run --seed N``: no corpus file or
saved state is required, the seed *is* the test case.

The generators are structure-aware and boundary-biased: value pools
lead with the encodings most likely to break (empty strings, NUL bytes,
max/min varint values, deep maps, empty containers), and per-field "run
modes" produce long constant runs so RLE/delta layouts and lazy
skip-ahead paths get exercised, not just random noise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.serde.record import Record
from repro.serde.schema import Schema

__all__ = [
    "Case",
    "QuerySpec",
    "case_from_obj",
    "case_to_obj",
    "expected_output",
    "freeze",
    "generate_case",
    "normalize",
    "to_records",
    "zero_value",
]

# -- boundary-biased value pools --------------------------------------------
#
# Pools lead with the nastiest values (index order matters: the
# generator samples low indices more often than high ones), so even a
# one-record shrunk case tends to keep a boundary value.

INT_POOL = [
    0, 2**31 - 1, -(2**31), -1, 1, 127, 128, -128, 255, 256, 7, 42, 1000,
]
LONG_POOL = [
    0, 2**63 - 1, -(2**63), 2**31 - 1, -(2**31), -1, 1, 2**40, 300, 7,
]
DOUBLE_POOL = [
    0.0, -0.0, 1.0, -1.5, 1e300, -1e-300, 3.141592653589793, 2.5, -273.15,
]
STRING_POOL = [
    "",
    "\x00",
    "a",
    "tab\there",
    "nl\nhere",
    "back\\slash",
    "comma,semi;colon:",
    "x" * 300,
    "héllo wörld ✓",
    "urn:cnn.com/2011",
]
BYTES_POOL = [b"", b"\x00", b"\xff" * 8, b"\x00\x01\x7f\x80", b"payload"]
BOOL_POOL = [False, True]
TIME_POOL = [0, 1302000000, 2**31, 2**62, 1, 86400]
MAP_KEY_POOL = ["", "k", "anchor", "a" * 40, "key:colon", "k2", "k3"]

_POOLS = {
    "int": INT_POOL,
    "long": LONG_POOL,
    "double": DOUBLE_POOL,
    "boolean": BOOL_POOL,
    "string": STRING_POOL,
    "bytes": BYTES_POOL,
    "time": TIME_POOL,
}

#: primitive kinds a group-by key may have (doubles excluded: -0.0/0.0
#: would merge groups in Python while staying distinct on disk)
KEY_KINDS = ("int", "long", "string", "boolean", "time")

#: schema kinds whose values ``len()`` applies to (the lensum aggregate)
LEN_KINDS = ("string", "bytes")

#: int-kinded fields usable by the sum aggregate
SUM_KINDS = ("int", "long", "time")


@dataclass(frozen=True)
class QuerySpec:
    """The query half of a case: what job the oracle runs.

    ``kind == "project"`` emits the tuple of ``columns`` per record
    (identity through the shuffle); ``kind == "group"`` groups by
    ``columns[0]`` and aggregates ``agg`` over ``value_col``.
    """

    kind: str                      # "project" | "group"
    columns: tuple                 # columns the mapper touches, in order
    agg: Optional[str] = None      # "count" | "sum" | "lensum"
    value_col: Optional[str] = None

    def to_obj(self) -> dict:
        return {
            "kind": self.kind,
            "columns": list(self.columns),
            "agg": self.agg,
            "value_col": self.value_col,
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "QuerySpec":
        return cls(
            kind=obj["kind"],
            columns=tuple(obj["columns"]),
            agg=obj.get("agg"),
            value_col=obj.get("value_col"),
        )


@dataclass
class Case:
    """One differential test case: dataset + query + chaos seed.

    ``rows`` is the ground truth as plain Python values (dicts for
    records/maps, lists for arrays) — the oracle compares every
    format's scan output against it after :func:`normalize`.
    """

    seed: int
    schema: Schema
    rows: List[dict]
    query: QuerySpec
    chaos_seed: int
    #: free-form provenance note ("generated", "shrunk from seed N"...)
    note: str = "generated"

    def describe(self) -> str:
        kinds = ", ".join(
            f"{f.name}:{f.schema.kind}" for f in self.schema.fields
        )
        return (
            f"case(seed={self.seed}, rows={len(self.rows)}, "
            f"query={self.query.kind}/{'+'.join(self.query.columns)}, "
            f"fields=[{kinds}])"
        )


# -- schema generation ------------------------------------------------------


def _gen_field_schema(rng: random.Random, depth: int = 0) -> Schema:
    """One field schema; complex kinds only at depth 0."""
    roll = rng.random()
    if depth == 0 and roll < 0.12:
        # maps, ~1/3 of them deep (map of map) — the DCSL columns
        inner = (
            Schema.map(values=_primitive(rng))
            if rng.random() < 0.35
            else _primitive(rng)
        )
        return Schema.map(values=inner)
    if depth == 0 and roll < 0.20:
        return Schema.array(items=_primitive(rng))
    if depth == 0 and roll < 0.25:
        return Schema.record(
            "nested",
            [("n0", _primitive(rng)), ("n1", _primitive(rng))],
        )
    return _primitive(rng)


def _primitive(rng: random.Random) -> Schema:
    kind = rng.choices(
        ["string", "int", "long", "double", "boolean", "bytes", "time"],
        weights=[28, 22, 12, 10, 10, 10, 8],
    )[0]
    return Schema(kind)


def _gen_schema(rng: random.Random) -> Schema:
    nfields = rng.randint(2, 6)
    fields = [("c0", Schema(rng.choice(KEY_KINDS)))]
    for i in range(1, nfields):
        fields.append((f"c{i}", _gen_field_schema(rng)))
    return Schema.record("fuzz", fields)


# -- value generation -------------------------------------------------------


def _gen_value(rng: random.Random, schema: Schema):
    if schema.kind in _POOLS:
        pool = _POOLS[schema.kind]
        # bias toward the head of the pool (the boundary values)
        index = min(
            rng.randrange(len(pool)), rng.randrange(len(pool))
        )
        return pool[index]
    if schema.kind == "array":
        return [
            _gen_value(rng, schema.items)
            for _ in range(rng.choice([0, 0, 1, 2, 3]))
        ]
    if schema.kind == "map":
        nkeys = rng.choice([0, 1, 1, 2, 3])
        keys = rng.sample(MAP_KEY_POOL, k=min(nkeys, len(MAP_KEY_POOL)))
        return {k: _gen_value(rng, schema.values) for k in sorted(keys)}
    if schema.kind == "record":
        return {f.name: _gen_value(rng, f.schema) for f in schema.fields}
    raise ValueError(f"cannot generate for schema kind {schema.kind!r}")


def zero_value(schema: Schema):
    """The simplest legal value for ``schema`` (the shrinker's target)."""
    simple = {
        "int": 0, "long": 0, "time": 0, "double": 0.0,
        "boolean": False, "string": "", "bytes": b"",
    }
    if schema.kind in simple:
        return simple[schema.kind]
    if schema.kind == "array":
        return []
    if schema.kind == "map":
        return {}
    if schema.kind == "record":
        return {f.name: zero_value(f.schema) for f in schema.fields}
    raise ValueError(f"no zero value for schema kind {schema.kind!r}")


def _gen_rows(
    rng: random.Random, schema: Schema, num_rows: int
) -> List[dict]:
    """Rows with per-field value modes.

    ``pool``   — fresh draw per row (noise)
    ``run``    — one constant value for the whole batch (RLE heaven)
    ``runs``   — alternating constant runs of 3-8 rows (null runs when
                 the constant is the zero value, which the pools favor)
    """
    modes = {}
    for f in schema.fields:
        modes[f.name] = rng.choices(
            ["pool", "run", "runs"], weights=[55, 20, 25]
        )[0]
    constants = {f.name: _gen_value(rng, f.schema) for f in schema.fields}
    rows: List[dict] = []
    run_left = {f.name: 0 for f in schema.fields}
    for _ in range(num_rows):
        row = {}
        for f in schema.fields:
            mode = modes[f.name]
            if mode == "pool":
                row[f.name] = _gen_value(rng, f.schema)
            elif mode == "run":
                row[f.name] = constants[f.name]
            else:
                if run_left[f.name] == 0:
                    constants[f.name] = _gen_value(rng, f.schema)
                    run_left[f.name] = rng.randint(3, 8)
                run_left[f.name] -= 1
                row[f.name] = constants[f.name]
        rows.append(row)
    return rows


# -- query generation -------------------------------------------------------


def _gen_query(rng: random.Random, schema: Schema) -> QuerySpec:
    names = schema.field_names
    if rng.random() < 0.5:
        count = rng.randint(1, min(3, len(names)))
        columns = tuple(sorted(rng.sample(names, k=count)))
        return QuerySpec(kind="project", columns=columns)
    key = "c0"  # generated schemas always make c0 a key-able primitive
    sum_cols = [
        f.name for f in schema.fields
        if f.schema.kind in SUM_KINDS and f.name != key
    ]
    len_cols = [f.name for f in schema.fields if f.schema.kind in LEN_KINDS]
    choices = [("count", None)]
    if sum_cols:
        choices.append(("sum", rng.choice(sum_cols)))
    if len_cols:
        choices.append(("lensum", rng.choice(len_cols)))
    agg, value_col = rng.choice(choices)
    columns = (key,) if value_col is None else (key, value_col)
    return QuerySpec(kind="group", columns=columns, agg=agg,
                     value_col=value_col)


def rewrite_query(query: QuerySpec, schema: Schema) -> QuerySpec:
    """Restrict ``query`` to columns still present in ``schema``
    (used by the shrinker after dropping fields)."""
    names = schema.field_names
    if query.kind == "project":
        kept = tuple(c for c in query.columns if c in names)
        return replace(query, columns=kept or (names[0],))
    key = query.columns[0]
    if key not in names or schema.field(key).schema.kind not in KEY_KINDS:
        fallback = next(
            (n for n in names if schema.field(n).schema.kind in KEY_KINDS),
            names[0],
        )
        return QuerySpec(kind="project", columns=(fallback,))
    if query.value_col is not None and query.value_col not in names:
        return QuerySpec(kind="group", columns=(key,), agg="count")
    return query


# -- the one entry point ----------------------------------------------------


def generate_case(
    seed: int, num_rows: Optional[int] = None
) -> Case:
    """The deterministic seed -> case mapping (stable across runs)."""
    # int-only seeding: seeding from a str/tuple would go through
    # hash(), which PYTHONHASHSEED randomizes per process
    rng = random.Random(0x5EED ^ (seed * 2654435761 % 2**63))
    schema = _gen_schema(rng)
    rows = _gen_rows(rng, schema, num_rows or rng.randint(4, 28))
    query = _gen_query(rng, schema)
    chaos_seed = rng.randrange(1 << 30)
    return Case(seed=seed, schema=schema, rows=rows, query=query,
                chaos_seed=chaos_seed)


# -- canonical forms and reference semantics --------------------------------


def normalize(value):
    """Project a scanned value onto plain Python ground-truth form."""
    if isinstance(value, Record):
        return {
            name: normalize(v) for name, v in value.to_dict().items()
        }
    if isinstance(value, dict):
        return {k: normalize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [normalize(v) for v in value]
    return value


def freeze(value):
    """A hashable, order-canonical form of a normalized value."""
    if isinstance(value, dict):
        return tuple(sorted((k, freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(freeze(v) for v in value)
    return value


def to_records(schema: Schema, rows: Sequence[dict]) -> List[Record]:
    """Materialize ground-truth rows as writable :class:`Record`s."""
    out = []
    for row in rows:
        rec = Record(schema)
        for f in schema.fields:
            rec.put(f.name, _to_storage(f.schema, row[f.name]))
        out.append(rec)
    return out


def _to_storage(schema: Schema, value):
    """Nested record values stay dicts — every encoder in the tree
    accepts dict-indexable records, and dicts survive deep copies."""
    return value


def expected_output(case: Case) -> List[tuple]:
    """Reference job output computed purely from the ground truth,
    sorted the way the oracle sorts real job output (by repr)."""
    query = case.query
    pairs: List[tuple] = []
    if query.kind == "project":
        for row in case.rows:
            pairs.append(
                (0, tuple(freeze(normalize(row[c])) for c in query.columns))
            )
    else:
        groups: Dict[object, int] = {}
        key_col = query.columns[0]
        for row in case.rows:
            key = row[key_col]
            if query.agg == "count":
                delta = 1
            elif query.agg == "sum":
                delta = row[query.value_col]
            else:  # lensum
                delta = len(row[query.value_col])
            groups[key] = groups.get(key, 0) + delta
        pairs = list(groups.items())
    return sorted(pairs, key=repr)


# -- JSON persistence (corpus files) ----------------------------------------


def _encode_value(schema: Schema, value):
    if schema.kind == "bytes":
        return value.hex()
    if schema.kind == "array":
        return [_encode_value(schema.items, v) for v in value]
    if schema.kind == "map":
        return {k: _encode_value(schema.values, v) for k, v in value.items()}
    if schema.kind == "record":
        return {
            f.name: _encode_value(f.schema, value[f.name])
            for f in schema.fields
        }
    return value


def _decode_value(schema: Schema, obj):
    if schema.kind == "bytes":
        return bytes.fromhex(obj)
    if schema.kind == "array":
        return [_decode_value(schema.items, v) for v in obj]
    if schema.kind == "map":
        return {k: _decode_value(schema.values, v) for k, v in obj.items()}
    if schema.kind == "record":
        return {
            f.name: _decode_value(f.schema, obj[f.name])
            for f in schema.fields
        }
    return obj


def case_to_obj(case: Case) -> dict:
    return {
        "version": 1,
        "seed": case.seed,
        "chaos_seed": case.chaos_seed,
        "note": case.note,
        "schema": case.schema.to_obj(),
        "query": case.query.to_obj(),
        "rows": [_encode_value(case.schema, row) for row in case.rows],
    }


def case_from_obj(obj: dict) -> Case:
    schema = Schema.parse(obj["schema"])
    return Case(
        seed=obj["seed"],
        schema=schema,
        rows=[_decode_value(schema, row) for row in obj["rows"]],
        query=QuerySpec.from_obj(obj["query"]),
        chaos_seed=obj["chaos_seed"],
        note=obj.get("note", "loaded"),
    )
