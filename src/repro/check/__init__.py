"""Differential correctness harness (`repro.check`).

The paper's central claim is that CIF/COF, lazy records, skip lists and
DCSL are *semantically transparent*: every storage format and access
path returns byte-identical records; only the cost changes.  This
package proves it continuously:

``generators``
    Deterministic, boundary-biased schema/record/query generators — one
    seed, one :class:`Case`, forever.

``oracle``
    The differential oracle: a case executed across the full storage
    matrix ({TXT, SEQ variants, RCFile +/- ZLIB, CIF layouts} x
    {eager, lazy} x {codecs} x {no faults, seeded fault plans}),
    asserting identical records, identical job output, and counter
    sanity (lazy never requests more bytes than eager).

``metamorphic``
    Invariants under dataset transformations: adding a never-projected
    column leaves CIF column bytes unchanged; row permutation leaves
    aggregates unchanged; schema-evolution appends round-trip.

``fuzzer``
    A deterministic fuzz loop over generated cases, a greedy shrinker
    that reduces failing cases to minimal repros, and corpus
    persistence under ``tests/corpus/``.

CLI: ``repro check run|fuzz|shrink|corpus`` (see ``docs/testing.md``).
"""

from repro.check.generators import (
    Case,
    QuerySpec,
    expected_output,
    generate_case,
    normalize,
)
from repro.check.oracle import (
    CellResult,
    OracleReport,
    matrix_configs,
    run_matrix,
)
from repro.check.metamorphic import run_metamorphic
from repro.check.fuzzer import (
    corpus_files,
    fuzz,
    load_case,
    save_case,
    shrink,
)

__all__ = [
    "Case",
    "CellResult",
    "OracleReport",
    "QuerySpec",
    "corpus_files",
    "expected_output",
    "fuzz",
    "generate_case",
    "load_case",
    "matrix_configs",
    "normalize",
    "run_matrix",
    "run_metamorphic",
    "save_case",
    "shrink",
]
