"""Deterministic fuzz loop, greedy shrinker, and corpus persistence.

The fuzzer is *structure-aware and seeded*: case ``i`` of a run with
base seed ``S`` is exactly ``generate_case(S + i)``, so any finding
reproduces from its printed seed alone —

    repro check run --seed <N> --matrix quick

A failing case is shrunk before it is reported: the shrinker greedily
removes rows, drops fields, and zeroes values while the failure
persists, bounded by an evaluation budget so pathological cases cannot
stall the loop.  Shrunk repros are persisted as JSON under
``tests/corpus/`` — the corpus is the regression suite's memory, and
``replay_corpus`` (wired into pytest) keeps every past finding fixed.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple

from repro.check.generators import (
    Case,
    case_from_obj,
    case_to_obj,
    rewrite_query,
    zero_value,
)
from repro.check.oracle import run_matrix

__all__ = [
    "FuzzFailure",
    "FuzzResult",
    "check_case",
    "corpus_files",
    "fuzz",
    "load_case",
    "replay_corpus",
    "save_case",
    "shrink",
]

#: default corpus location, relative to the repo root
DEFAULT_CORPUS_DIR = os.path.join("tests", "corpus")

#: shrinker evaluation budget: each candidate costs one matrix run
DEFAULT_SHRINK_EVALS = 200


def check_case(case: Case, matrix: str = "quick") -> Optional[str]:
    """Run ``case`` through the oracle; the first failure, or None."""
    failure = run_matrix(case, matrix=matrix).first_failure()
    if failure is None:
        return None
    return f"{failure.name}: {failure.detail}" if failure.detail \
        else failure.name


# -- shrinking --------------------------------------------------------------


def shrink(
    case: Case,
    check: Callable[[Case], Optional[str]],
    max_evals: int = DEFAULT_SHRINK_EVALS,
    log: Optional[Callable[[str], None]] = None,
) -> Tuple[Case, str]:
    """Greedily minimize ``case`` while ``check`` still fails.

    ``check`` returns a failure message (or None when the case passes);
    the returned case is the smallest failing case found within
    ``max_evals`` oracle evaluations, with its final failure message.
    Deterministic: candidate order is a function of the case alone.
    """
    message = check(case)
    if message is None:
        raise ValueError("shrink() needs a failing case")
    best = case
    evals = 0

    def attempt(candidate: Case) -> bool:
        nonlocal best, message, evals
        if evals >= max_evals:
            return False
        evals += 1
        result = check(candidate)
        if result is not None:
            best = candidate
            message = result
            if log:
                log(
                    f"  shrink: rows={len(best.rows)} "
                    f"fields={len(best.schema.fields)}  {result}"
                )
            return True
        return False

    def smaller(rows: List[dict]) -> Case:
        return replace(best, rows=list(rows),
                       note=f"shrunk from seed {case.seed}")

    progress = True
    while progress and evals < max_evals:
        progress = False

        # 1. halve the record batch
        while len(best.rows) > 1 and evals < max_evals:
            half = len(best.rows) // 2
            if attempt(smaller(best.rows[:half])):
                progress = True
            elif attempt(smaller(best.rows[half:])):
                progress = True
            else:
                break

        # 2. drop single records
        index = 0
        while index < len(best.rows) and len(best.rows) > 1 \
                and evals < max_evals:
            if not attempt(
                smaller(best.rows[:index] + best.rows[index + 1:])
            ):
                index += 1
            else:
                progress = True

        # 3. drop whole fields (query rewritten to surviving columns)
        for name in list(case.schema.field_names):
            if evals >= max_evals or len(best.schema.fields) <= 1:
                break
            if not best.schema.has_field(name):
                continue
            remaining = [n for n in best.schema.field_names if n != name]
            projected = best.schema.project(remaining)
            candidate = replace(
                best,
                schema=projected,
                rows=[
                    {k: row[k] for k in remaining} for row in best.rows
                ],
                query=rewrite_query(best.query, projected),
                note=f"shrunk from seed {case.seed}",
            )
            if attempt(candidate):
                progress = True

        # 4. flatten each surviving field to its zero value
        for f in list(best.schema.fields):
            if evals >= max_evals:
                break
            zero = zero_value(f.schema)
            if all(row[f.name] == zero for row in best.rows):
                continue
            candidate = replace(
                best,
                rows=[dict(row, **{f.name: zero}) for row in best.rows],
                note=f"shrunk from seed {case.seed}",
            )
            if attempt(candidate):
                progress = True

    return best, message


# -- corpus persistence -----------------------------------------------------


def save_case(
    case: Case, directory: str, error: str = ""
) -> str:
    """Persist a case as JSON; returns the written path."""
    obj = case_to_obj(case)
    if error:
        obj["error"] = error
    payload = json.dumps(obj, indent=2, sort_keys=True)
    digest = hashlib.sha1(payload.encode("utf-8")).hexdigest()[:8]
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"case-s{case.seed}-{digest}.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload + "\n")
    return path


def load_case(path: str) -> Case:
    with open(path, "r", encoding="utf-8") as handle:
        return case_from_obj(json.load(handle))


def corpus_files(directory: str = DEFAULT_CORPUS_DIR) -> List[str]:
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".json")
    )


def replay_corpus(
    directory: str = DEFAULT_CORPUS_DIR, matrix: str = "quick"
) -> List[Tuple[str, Optional[str]]]:
    """Re-run every corpus case; ``(path, failure-or-None)`` pairs.

    Corpus entries are *fixed* findings: a non-None failure means a
    regression resurfaced.
    """
    return [
        (path, check_case(load_case(path), matrix=matrix))
        for path in corpus_files(directory)
    ]


# -- the fuzz loop ----------------------------------------------------------


@dataclass
class FuzzFailure:
    seed: int
    message: str
    case: Case
    shrunk: Case
    corpus_path: Optional[str] = None

    def repro_command(self) -> str:
        return f"repro check run --seed {self.seed} --matrix quick"


@dataclass
class FuzzResult:
    base_seed: int
    executed: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def fuzz(
    budget: int,
    seed: int = 0,
    matrix: str = "quick",
    corpus_dir: Optional[str] = DEFAULT_CORPUS_DIR,
    stop_on_failure: bool = True,
    shrink_evals: int = DEFAULT_SHRINK_EVALS,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzResult:
    """Run ``budget`` generated cases through the oracle.

    Case ``i`` is ``generate_case(seed + i)``.  On failure the case is
    shrunk to a minimal repro and (when ``corpus_dir`` is set) saved
    there; ``stop_on_failure`` ends the run at the first finding.
    """
    from repro.check.generators import generate_case

    result = FuzzResult(base_seed=seed)
    checker = lambda c: check_case(c, matrix=matrix)  # noqa: E731
    for i in range(budget):
        case_seed = seed + i
        case = generate_case(case_seed)
        result.executed += 1
        message = checker(case)
        if log and (i + 1) % 50 == 0:
            log(f"fuzz: {i + 1}/{budget} cases, "
                f"{len(result.failures)} failures")
        if message is None:
            continue
        if log:
            log(f"fuzz: seed {case_seed} FAILED: {message}")
        shrunk, final_message = shrink(
            case, checker, max_evals=shrink_evals, log=log
        )
        corpus_path = None
        if corpus_dir:
            corpus_path = save_case(shrunk, corpus_dir, error=final_message)
            if log:
                log(f"fuzz: minimal repro saved to {corpus_path}")
        result.failures.append(FuzzFailure(
            seed=case_seed, message=final_message, case=case,
            shrunk=shrunk, corpus_path=corpus_path,
        ))
        if stop_on_failure:
            break
    return result
