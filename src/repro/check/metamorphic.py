"""Metamorphic invariants: transformations the answers must not see.

Differential cells prove that every storage path gives the *same*
answer; metamorphic cells prove the answer is insensitive to
transformations that should be invisible:

``meta:add-column``
    Appending a column the query never projects (a real backfilled
    column, via ``add_column``) leaves a projected CIF scan's *column*
    bytes unchanged — late schema evolution must not tax existing
    readers.  Only the ``.schema``/``.stats`` sidecars may grow.

``meta:permutation``
    Permuting the rows of the dataset leaves the query's aggregate
    (sorted output) unchanged: nothing in the stack may depend on
    record order beyond the order itself.

``meta:evolution``
    A declare-default / append-under-evolved-schema round-trip: old
    split-directories synthesize the default, appended ones carry real
    values, and the original rows still read back exactly.
"""

from __future__ import annotations

import random
from typing import List

from repro.check.generators import Case, normalize, to_records
from repro.core import ColumnInputFormat, add_column, declare_column, write_dataset
from repro.core.cof import ColumnOutputFormat
from repro.obs import FlightRecorder
from repro.serde.schema import Schema

__all__ = ["run_metamorphic"]

_EVO_DEFAULT = 41


def _column_bytes(registry) -> float:
    """Requested bytes attributed to CIF *column* streams (the
    ``.schema``/``.stats`` sidecars excluded — they legitimately grow
    when columns are added)."""
    total = 0.0
    for labels, metric in registry.find("hdfs.bytes.requested", format="cif"):
        column = dict(labels).get("column", "")
        if column.startswith("."):
            continue
        total += metric.value
    return total


def _projected_scan(fs, path: str, columns):
    from repro.check.oracle import scan_records

    recorder = FlightRecorder()
    with recorder.activate():
        rows, _ = scan_records(
            fs, ColumnInputFormat(path, columns=list(columns), lazy=False)
        )
    return rows, _column_bytes(recorder.registry)


def _meta_add_column(case: Case):
    from repro.check.oracle import CellResult, SPLIT_BYTES, _fresh_fs

    path = "/meta/add-column"
    columns = [
        c for c in case.query.columns if case.schema.has_field(c)
    ] or [case.schema.fields[0].name]
    records = to_records(case.schema, case.rows)

    base_fs = _fresh_fs("cif")
    write_dataset(base_fs, path, case.schema, records,
                  split_bytes=SPLIT_BYTES)
    base_rows, base_bytes = _projected_scan(base_fs, path, columns)

    evolved_fs = _fresh_fs("cif")
    write_dataset(evolved_fs, path, case.schema, records,
                  split_bytes=SPLIT_BYTES)
    add_column(
        evolved_fs, path, "zz_never_projected", Schema.string(),
        ["decoy"] * len(case.rows),
    )
    evolved_rows, evolved_bytes = _projected_scan(evolved_fs, path, columns)

    if base_rows != evolved_rows:
        return CellResult(
            "meta:add-column", False,
            "projected rows changed after adding an unrelated column",
        )
    if base_bytes != evolved_bytes:
        return CellResult(
            "meta:add-column", False,
            f"column bytes changed {base_bytes} -> {evolved_bytes} after "
            f"adding a never-projected column",
        )
    return CellResult("meta:add-column", True)


def _agg_case(case: Case) -> Case:
    """The case with a guaranteed order-insensitive aggregate query."""
    from dataclasses import replace

    from repro.check.generators import KEY_KINDS, QuerySpec

    if case.query.kind == "group":
        return case
    key = next(
        (f.name for f in case.schema.fields
         if f.schema.kind in KEY_KINDS),
        None,
    )
    if key is None:
        return case  # fall back to the (sorted) projection query
    return replace(
        case, query=QuerySpec(kind="group", columns=(key,), agg="count")
    )


def _meta_permutation(case: Case):
    from repro.check.oracle import (
        CellResult, SPLIT_BYTES, _fresh_fs, _sorted_output, make_job,
    )
    from repro.mapreduce import run_job

    agg = _agg_case(case)
    path = "/meta/permutation"
    rng = random.Random(case.seed ^ 0xA5A5)
    permuted_rows = list(agg.rows)
    rng.shuffle(permuted_rows)

    outputs = []
    for rows in (agg.rows, permuted_rows):
        fs = _fresh_fs("cif")
        write_dataset(fs, path, agg.schema, to_records(agg.schema, rows),
                      split_bytes=SPLIT_BYTES)
        fmt = ColumnInputFormat(path, lazy=True)
        outputs.append(
            _sorted_output(run_job(fs, make_job(agg, fmt, "perm")).output)
        )
    if outputs[0] != outputs[1]:
        return CellResult(
            "meta:permutation", False,
            f"aggregate changed under row permutation: "
            f"{outputs[0]!r} != {outputs[1]!r}",
        )
    return CellResult("meta:permutation", True)


def _meta_evolution(case: Case):
    from repro.check.oracle import CellResult, SPLIT_BYTES, _fresh_fs, scan_records

    path = "/meta/evolution"
    records = to_records(case.schema, case.rows)
    truth = [normalize(r) for r in case.rows]

    fs = _fresh_fs("cif")
    splits = write_dataset(fs, path, case.schema, records,
                           split_bytes=SPLIT_BYTES)

    # evolve: declare with a default, then append under the new schema
    declare_column(fs, path, "evo", Schema.int_(), _EVO_DEFAULT)
    evolved = case.schema.with_field("evo", Schema.int_(),
                                     default=_EVO_DEFAULT)
    appended = []
    for i, row in enumerate(case.rows[: max(1, len(case.rows) // 2)]):
        grown = dict(row)
        grown["evo"] = 1000 + i
        appended.append(grown)
    ColumnOutputFormat(evolved, split_bytes=SPLIT_BYTES).write(
        fs, path, to_records(evolved, appended), first_split_index=splits
    )

    rows, _ = scan_records(fs, ColumnInputFormat(path, lazy=False))
    expected = [dict(r, evo=_EVO_DEFAULT) for r in truth] + [
        normalize(r) for r in appended
    ]
    if rows != expected:
        return CellResult(
            "meta:evolution", False,
            f"evolution round-trip diverged ({len(rows)} rows back, "
            f"{len(expected)} expected)",
        )

    # the old projection still reads exactly the original data
    old_columns = case.schema.field_names
    rows, _ = scan_records(
        fs, ColumnInputFormat(path, columns=old_columns, lazy=False)
    )
    if rows != truth + [
        {k: v for k, v in r.items() if k != "evo"}
        for r in (normalize(r) for r in appended)
    ]:
        return CellResult(
            "meta:evolution", False,
            "old-schema projection diverged after evolution",
        )
    return CellResult("meta:evolution", True)


def run_metamorphic(case: Case) -> List:
    """All metamorphic cells for one case (never raises)."""
    from repro.check.oracle import CellResult

    cells = []
    for fn, name in (
        (_meta_add_column, "meta:add-column"),
        (_meta_permutation, "meta:permutation"),
        (_meta_evolution, "meta:evolution"),
    ):
        try:
            cells.append(fn(case))
        except Exception as exc:  # noqa: BLE001 - every cell must report
            cells.append(CellResult(
                name, False, f"{type(exc).__name__}: {exc}"
            ))
    return cells
