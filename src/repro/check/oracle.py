"""The differential oracle: one case, every storage path, equal answers.

Each generated :class:`~repro.check.generators.Case` is written through
every applicable storage configuration — TXT, SequenceFile (none /
record-ZLIB / block-ZLIB / block-LZO), RCFile with and without ZLIB,
and the CIF column layouts (plain, skip list, LZO/ZLIB compressed
blocks, RLE/delta light encodings, DCSL) — then checked cell by cell:

``scan``        eager full scan returns exactly the ground-truth rows
``scan-lazy``   (CIF) lazy records materialize to the same rows
``job``         the case's MapReduce job matches the reference output
                computed from the ground truth, and logical counters
                (``map.records``, ``reduce.groups``) agree
``lazy-bytes``  (CIF) under projection, a lazy job requests no more
                bytes than the same job run eagerly, with equal output
``chaos``       (full matrix) the job under a survivable seeded
                FaultPlan is byte-identical — output and counters —
                to the fault-free run

With ``plant_corruption=True`` the oracle instead proves the *negative*
path: a ``corrupt_block`` fault (every replica corrupted, via the
existing fault injector) must be detected — either a
:class:`~repro.hdfs.CorruptBlockError`/job failure or a divergence from
ground truth.  A corruption that reads back clean is the failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.check.generators import (
    Case,
    expected_output,
    freeze,
    normalize,
)
from repro.check.generators import to_records
from repro.core import ColumnInputFormat, ColumnSpec, write_dataset
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.formats.rcfile import RCFileInputFormat, write_rcfile
from repro.formats.sequence_file import (
    SequenceFileInputFormat,
    write_sequence_file,
)
from repro.formats.text import TextInputFormat, write_text
from repro.hdfs import ClusterConfig, FaultError, FileSystem
from repro.mapreduce import Job, JobFailedError, run_job
from repro.mapreduce.types import TaskContext
from repro.serde.record import Record
from repro.serde.schema import Schema
from repro.sim.cost import CpuCostModel

__all__ = [
    "CellResult",
    "OracleReport",
    "StorageConfig",
    "matrix_configs",
    "run_matrix",
    "scan_records",
]

#: cluster shape shared by every cell, sized like the chaos tests:
#: small blocks so even tiny datasets span block boundaries, and
#: 3-way replication so survivable fault plans stay survivable
NUM_NODES = 6
REPLICATION = 3
BLOCK_SIZE = 16 * 1024
IO_BUFFER = 2 * 1024

#: deliberately small layout granularities so skip lists, compressed
#: blocks and row groups all get multiple units even on tiny cases
SPLIT_BYTES = 8 * 1024
ROW_GROUP_BYTES = 4 * 1024
CBLOCK_BYTES = 512
SKIP_SIZES = (16, 4)


@dataclass
class CellResult:
    """One (config, check) outcome of a matrix run."""

    name: str
    ok: bool
    detail: str = ""
    skipped: bool = False

    def line(self) -> str:
        mark = "SKIP" if self.skipped else ("ok" if self.ok else "FAIL")
        suffix = f"  {self.detail}" if self.detail else ""
        return f"  [{mark:>4}] {self.name}{suffix}"


@dataclass
class OracleReport:
    """Everything a matrix run learned about one case."""

    case: Case
    matrix: str
    cells: List[CellResult] = field(default_factory=list)

    @property
    def failures(self) -> List[CellResult]:
        return [c for c in self.cells if not c.ok and not c.skipped]

    @property
    def ok(self) -> bool:
        return not self.failures

    def first_failure(self) -> Optional[CellResult]:
        return self.failures[0] if self.failures else None

    def render(self) -> str:
        ran = [c for c in self.cells if not c.skipped]
        lines = [
            f"{self.case.describe()}  matrix={self.matrix}",
            f"cells: {len(ran)} ran, {len(self.cells) - len(ran)} skipped, "
            f"{len(self.failures)} failed",
        ]
        lines.extend(c.line() for c in self.cells)
        return "\n".join(lines)


@dataclass
class StorageConfig:
    """One leg of the matrix: how to write and how to read it back."""

    name: str
    kind: str  # txt | seq | rcfile | cif
    write: Callable  # (fs, path, schema, records) -> None
    #: (path, columns, lazy) -> InputFormat; columns/lazy honored where
    #: the format supports them
    make_input: Callable
    #: relative path (under the dataset path) of one data-bearing file
    #: to target with corrupt_block; None means the dataset path itself
    corrupt_suffix: Optional[Callable] = None
    lazy_capable: bool = False
    #: returns a skip reason, or None when the config applies
    skip_reason: Callable[[Case], Optional[str]] = lambda case: None


def _all_primitive(case: Case) -> Optional[str]:
    bad = [
        f.name for f in case.schema.fields if not f.schema.is_primitive
    ]
    return f"txt cannot round-trip complex fields ({'+'.join(bad)})" \
        if bad else None


def _has_map(case: Case) -> Optional[str]:
    if any(f.schema.kind == "map" for f in case.schema.fields):
        return None
    return "dcsl requires a map-typed column"


def _seq_config(name: str, compression: str, codec: str) -> StorageConfig:
    def write(fs, path, schema, records):
        write_sequence_file(
            fs, path, schema, records,
            compression=compression, codec=codec, sync_interval=10,
            block_records=8,
        )

    return StorageConfig(
        name=name, kind="seq", write=write,
        make_input=lambda path, columns, lazy: SequenceFileInputFormat(path),
    )


def _rcfile_config(name: str, codec: Optional[str]) -> StorageConfig:
    def write(fs, path, schema, records):
        write_rcfile(
            fs, path, schema, records,
            row_group_bytes=ROW_GROUP_BYTES, codec=codec,
        )

    return StorageConfig(
        name=name, kind="rcfile", write=write,
        make_input=lambda path, columns, lazy: RCFileInputFormat(
            path, columns=columns
        ),
    )


def _cif_config(
    name: str,
    spec_fn: Callable[[Schema], Tuple[dict, Optional[ColumnSpec]]],
    skip_reason=lambda case: None,
    execution: str = "scalar",
) -> StorageConfig:
    def write(fs, path, schema, records):
        specs, default_spec = spec_fn(schema)
        write_dataset(
            fs, path, schema, records,
            specs=specs, default_spec=default_spec, split_bytes=SPLIT_BYTES,
        )

    def corrupt_suffix(schema):
        # target a real column file, not the split's .schema sidecar
        return f"s0/{schema.fields[0].name}"

    # Small batches so even tiny cases cross frame boundaries.
    return StorageConfig(
        name=name, kind="cif", write=write,
        make_input=lambda path, columns, lazy: ColumnInputFormat(
            path, columns=columns, lazy=lazy,
            execution=execution, batch_rows=7,
        ),
        corrupt_suffix=corrupt_suffix,
        lazy_capable=True,
        skip_reason=skip_reason,
    )


def _light_specs(schema: Schema) -> Tuple[dict, Optional[ColumnSpec]]:
    """RLE for booleans/strings, delta for integer kinds."""
    specs = {}
    for f in schema.fields:
        if f.schema.kind in ("int", "long", "time"):
            specs[f.name] = ColumnSpec("delta")
        elif f.schema.kind in ("boolean", "string"):
            specs[f.name] = ColumnSpec("rle")
    return specs, None


def _dcsl_specs(schema: Schema) -> Tuple[dict, Optional[ColumnSpec]]:
    specs = {
        f.name: ColumnSpec("dcsl", skip_sizes=SKIP_SIZES)
        for f in schema.fields
        if f.schema.kind == "map"
    }
    return specs, None


def matrix_configs(matrix: str) -> List[StorageConfig]:
    """The storage legs of the requested matrix.

    ``full`` is the complete cross-product leg list; ``quick`` is the
    four-config subset the fuzzer's inner loop uses (one row format,
    one PAX format, one compressed CIF, one DCSL CIF).
    """
    txt = StorageConfig(
        name="txt", kind="txt",
        write=lambda fs, path, schema, records: write_text(
            fs, path, schema, records
        ),
        make_input=lambda path, columns, lazy: TextInputFormat(path),
        skip_reason=_all_primitive,
    )
    plain = _cif_config(
        "cif-plain", lambda schema: ({}, ColumnSpec("plain"))
    )
    skiplist = _cif_config(
        "cif-skiplist",
        lambda schema: ({}, ColumnSpec("skiplist", skip_sizes=SKIP_SIZES)),
    )
    lzo = _cif_config(
        "cif-lzo",
        lambda schema: (
            {}, ColumnSpec("cblock", codec="lzo", block_bytes=CBLOCK_BYTES)
        ),
    )
    zlib = _cif_config(
        "cif-zlib",
        lambda schema: (
            {}, ColumnSpec("cblock", codec="zlib", block_bytes=CBLOCK_BYTES)
        ),
    )
    light = _cif_config("cif-light", _light_specs)
    dcsl = _cif_config("cif-dcsl", _dcsl_specs, skip_reason=_has_map)
    # Vectorized legs: same layouts drained through the batch layer.
    plain_vec = _cif_config(
        "cif-plain-vec", lambda schema: ({}, ColumnSpec("plain")),
        execution="vectorized",
    )
    skiplist_vec = _cif_config(
        "cif-skiplist-vec",
        lambda schema: ({}, ColumnSpec("skiplist", skip_sizes=SKIP_SIZES)),
        execution="vectorized",
    )
    zlib_vec = _cif_config(
        "cif-zlib-vec",
        lambda schema: (
            {}, ColumnSpec("cblock", codec="zlib", block_bytes=CBLOCK_BYTES)
        ),
        execution="vectorized",
    )
    light_vec = _cif_config(
        "cif-light-vec", _light_specs, execution="vectorized"
    )
    dcsl_vec = _cif_config(
        "cif-dcsl-vec", _dcsl_specs, skip_reason=_has_map,
        execution="vectorized",
    )

    if matrix == "quick":
        return [
            _seq_config("seq-none", "none", "zlib"),
            _rcfile_config("rcfile-zlib", "zlib"),
            zlib,
            dcsl,
            skiplist_vec,
        ]
    if matrix == "full":
        return [
            txt,
            _seq_config("seq-none", "none", "zlib"),
            _seq_config("seq-record-zlib", "record", "zlib"),
            _seq_config("seq-block-zlib", "block", "zlib"),
            _seq_config("seq-block-lzo", "block", "lzo"),
            _rcfile_config("rcfile", None),
            _rcfile_config("rcfile-zlib", "zlib"),
            plain,
            skiplist,
            lzo,
            zlib,
            light,
            dcsl,
            plain_vec,
            skiplist_vec,
            zlib_vec,
            light_vec,
            dcsl_vec,
        ]
    raise ValueError(f"unknown matrix {matrix!r} (use 'quick' or 'full')")


# -- plumbing ---------------------------------------------------------------


def _fresh_fs(kind: str) -> FileSystem:
    fs = FileSystem(
        ClusterConfig(
            num_nodes=NUM_NODES, replication=REPLICATION,
            block_size=BLOCK_SIZE, io_buffer_size=IO_BUFFER,
        )
    )
    if kind == "cif":
        fs.use_column_placement()
    return fs


def _materialize(record) -> dict:
    """Ground-truth form of an eager Record *or* a LazyRecord."""
    if isinstance(record, Record):
        return normalize(record)
    return {
        name: normalize(record.get(name))
        for name in record.schema.field_names
    }


def scan_records(fs: FileSystem, input_format):
    """Scan every split in order; returns (normalized rows, Metrics)."""
    ctx = TaskContext(
        node=0, cost=CpuCostModel(), io_buffer_size=fs.cluster.io_buffer_size
    )
    rows: List[dict] = []
    for split in input_format.get_splits(fs, fs.cluster):
        reader = input_format.open_reader(fs, split, ctx)
        try:
            for _, record in reader:
                rows.append(_materialize(record))
        finally:
            reader.close()
    return rows, ctx.metrics


def make_job(case: Case, input_format, name: str) -> Job:
    """The case's query as a MapReduce job.

    Mappers only touch ``value.get(column)``, so the identical closure
    runs against eager records, lazy records, and every row format.
    """
    query = case.query
    if query.kind == "project":
        columns = query.columns

        def mapper(key, value, emit, ctx):
            emit(0, tuple(freeze(normalize(value.get(c))) for c in columns))

        def reducer(key, values, emit, ctx):
            for v in values:
                emit(key, v)

    else:
        key_col = query.columns[0]
        agg = query.agg
        value_col = query.value_col

        def mapper(key, value, emit, ctx):
            if agg == "count":
                emit(value.get(key_col), 1)
            elif agg == "sum":
                emit(value.get(key_col), value.get(value_col))
            else:  # lensum
                emit(value.get(key_col), len(value.get(value_col)))

        def reducer(key, values, emit, ctx):
            emit(key, sum(values))

    return Job(name, mapper, input_format, reducer=reducer, num_reducers=2)


def _sorted_output(pairs) -> List[tuple]:
    return sorted((tuple(p) for p in pairs), key=repr)


def _diff(expected, actual, limit: int = 3) -> str:
    """First few positions where two row/pair lists diverge."""
    notes = []
    if len(expected) != len(actual):
        notes.append(f"len {len(expected)} != {len(actual)}")
    for i, (e, a) in enumerate(zip(expected, actual)):
        if e != a:
            notes.append(f"[{i}] {e!r} != {a!r}")
            if len(notes) >= limit:
                break
    return "; ".join(notes) or "equal"


# -- the matrix -------------------------------------------------------------


def _run_config(
    case: Case, config: StorageConfig, with_chaos: bool
) -> List[CellResult]:
    cells: List[CellResult] = []
    path = f"/check/{config.name}"
    records = to_records(case.schema, case.rows)
    truth = [normalize(row) for row in case.rows]
    expected = expected_output(case)

    fs = _fresh_fs(config.kind)
    config.write(fs, path, case.schema, records)

    # scan: eager full scan == ground truth, in row order
    try:
        rows, _ = scan_records(fs, config.make_input(path, None, False))
        cells.append(CellResult(
            f"scan:{config.name}", rows == truth,
            "" if rows == truth else _diff(truth, rows),
        ))
    except Exception as exc:  # noqa: BLE001 - every cell must report
        cells.append(CellResult(
            f"scan:{config.name}", False, f"{type(exc).__name__}: {exc}"
        ))
        return cells  # unreadable dataset: later cells would only cascade

    # scan-lazy: lazy materialization is invisible
    if config.lazy_capable:
        try:
            rows, _ = scan_records(fs, config.make_input(path, None, True))
            cells.append(CellResult(
                f"scan-lazy:{config.name}", rows == truth,
                "" if rows == truth else _diff(truth, rows),
            ))
        except Exception as exc:  # noqa: BLE001
            cells.append(CellResult(
                f"scan-lazy:{config.name}", False,
                f"{type(exc).__name__}: {exc}",
            ))

    # job: query result matches the pure-Python reference
    baseline = None
    try:
        fmt = config.make_input(path, None, config.lazy_capable)
        baseline = run_job(fs, make_job(case, fmt, f"job-{config.name}"))
        got = _sorted_output(baseline.output)
        ok = got == expected
        detail = "" if ok else _diff(expected, got)
        if ok and baseline.counters.get("map.records") != len(case.rows):
            ok = False
            detail = (
                f"map.records={baseline.counters.get('map.records')} "
                f"!= {len(case.rows)} rows"
            )
        cells.append(CellResult(f"job:{config.name}", ok, detail))
    except Exception as exc:  # noqa: BLE001
        cells.append(CellResult(
            f"job:{config.name}", False, f"{type(exc).__name__}: {exc}"
        ))

    # lazy-bytes: under projection, lazy requests <= eager bytes
    if config.lazy_capable:
        try:
            columns = list(case.query.columns)
            eager = run_job(fs, make_job(
                case, config.make_input(path, columns, False), "eager"
            ))
            lazy = run_job(fs, make_job(
                case, config.make_input(path, columns, True), "lazy"
            ))
            same = _sorted_output(eager.output) == _sorted_output(lazy.output)
            within = (
                lazy.map_metrics.requested_bytes
                <= eager.map_metrics.requested_bytes
            )
            detail = ""
            if not same:
                detail = "lazy/eager outputs diverge: " + _diff(
                    _sorted_output(eager.output), _sorted_output(lazy.output)
                )
            elif not within:
                detail = (
                    f"lazy requested {lazy.map_metrics.requested_bytes}B "
                    f"> eager {eager.map_metrics.requested_bytes}B"
                )
            cells.append(CellResult(
                f"lazy-bytes:{config.name}", same and within, detail
            ))
        except Exception as exc:  # noqa: BLE001
            cells.append(CellResult(
                f"lazy-bytes:{config.name}", False,
                f"{type(exc).__name__}: {exc}",
            ))

    # chaos: a survivable fault plan is invisible in output and counters
    if with_chaos and baseline is not None:
        try:
            plan = FaultPlan.random(case.chaos_seed, num_nodes=NUM_NODES)
            chaos_fs = _fresh_fs(config.kind)
            config.write(chaos_fs, path, case.schema, records)
            fmt = config.make_input(path, None, config.lazy_capable)
            result = run_job(
                chaos_fs, make_job(case, fmt, f"chaos-{config.name}"),
                faults=plan,
            )
            same_output = (
                _sorted_output(result.output) == _sorted_output(baseline.output)
            )
            same_counters = (
                result.counters.as_dict() == baseline.counters.as_dict()
            )
            detail = ""
            if not same_output:
                detail = "chaos output diverged: " + _diff(
                    _sorted_output(baseline.output),
                    _sorted_output(result.output),
                )
            elif not same_counters:
                detail = (
                    f"chaos counters diverged: {baseline.counters.as_dict()}"
                    f" != {result.counters.as_dict()}"
                )
            cells.append(CellResult(
                f"chaos:{config.name}", same_output and same_counters, detail
            ))
        except Exception as exc:  # noqa: BLE001
            cells.append(CellResult(
                f"chaos:{config.name}", False, f"{type(exc).__name__}: {exc}"
            ))

    return cells


def _run_corruption_config(
    case: Case, config: StorageConfig
) -> CellResult:
    """Corrupt one data block (all replicas) and require detection."""
    name = f"corrupt:{config.name}"
    path = f"/check/{config.name}"
    records = to_records(case.schema, case.rows)
    truth = [normalize(row) for row in case.rows]
    fs = _fresh_fs(config.kind)
    config.write(fs, path, case.schema, records)

    target = path
    if config.corrupt_suffix is not None:
        target = f"{path}/{config.corrupt_suffix(case.schema)}"
    plan = FaultPlan(
        [FaultEvent("corrupt_block", path=target, at_time=0.0)],
        seed=case.seed,
    )
    FaultInjector(fs, plan).fire_all()

    try:
        rows, _ = scan_records(fs, config.make_input(path, None, False))
    except (FaultError, JobFailedError) as exc:
        return CellResult(name, True, f"caught: {type(exc).__name__}")
    except Exception as exc:  # noqa: BLE001 - decode noise also counts
        return CellResult(name, True, f"caught: {type(exc).__name__}: {exc}")
    if rows != truth:
        return CellResult(name, True, "caught: scan diverged from truth")
    return CellResult(
        name, False,
        "corrupted block read back clean: corruption NOT detected",
    )


def run_matrix(
    case: Case,
    matrix: str = "full",
    plant_corruption: bool = False,
    configs: Optional[Sequence[StorageConfig]] = None,
) -> OracleReport:
    """Run ``case`` across the matrix; the one oracle entry point."""
    report = OracleReport(case=case, matrix=matrix)
    for config in (configs if configs is not None else matrix_configs(matrix)):
        reason = config.skip_reason(case)
        if reason:
            report.cells.append(CellResult(
                f"scan:{config.name}", True, reason, skipped=True
            ))
            continue
        if plant_corruption:
            report.cells.append(_run_corruption_config(case, config))
        else:
            report.cells.extend(
                _run_config(case, config, with_chaos=(matrix == "full"))
            )
    if not plant_corruption and matrix == "full":
        from repro.check.metamorphic import run_metamorphic

        report.cells.extend(run_metamorphic(case))
    return report
