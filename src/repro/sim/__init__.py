"""Performance-simulation substrate.

The paper's experiments ran on a 40-datanode Hadoop cluster with Java
mappers.  Re-running them directly in Python would produce misleading
CPU-bound numbers (Python is uniformly slow, so the I/O-vs-CPU crossovers
the paper reports would land in the wrong places).  Instead, every format
in this reproduction does the *real* byte-level work (serialization,
compression, skipping), while *time* is charged through the models in
this package:

- :class:`~repro.sim.models.DiskModel` / :class:`~repro.sim.models.NetworkModel`
  convert bytes and seeks into I/O seconds,
- :class:`~repro.sim.cost.CpuCostModel` converts deserialization /
  parsing / decompression operations into CPU seconds, and
- :class:`~repro.sim.metrics.Metrics` accumulates both per task, plus the
  byte counters the paper reports (Table 1's "Data Read" column).

Constants live in :mod:`repro.sim.calibration`, derived from the ratios
the paper itself reports.
"""

from repro.sim.calibration import CostProfile, MANAGED_PROFILE, NATIVE_PROFILE
from repro.sim.cost import CpuCostModel
from repro.sim.metrics import Metrics
from repro.sim.models import DiskModel, NetworkModel

__all__ = [
    "CostProfile",
    "CpuCostModel",
    "DiskModel",
    "Metrics",
    "NetworkModel",
    "MANAGED_PROFILE",
    "NATIVE_PROFILE",
]
