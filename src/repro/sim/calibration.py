"""Calibration constants for the simulated cluster and CPU cost model.

Everything here is derived from numbers the paper itself reports, so the
simulator reproduces the paper's *shape* (who wins, by what factor, where
crossovers fall) rather than the raw seconds of the authors' testbed.

Derivations
-----------

**Per-task scan bandwidth** (``DISK_BYTES_PER_SEC``).  Table 1:
SEQ-uncomp reads 6400 GB across 240 map slots (40 nodes x 6 slots) in a
map time of 1416 s.  That is 6400 GB / 240 / 1416 s ~= 19 MB/s of
sustained HDFS scan bandwidth per mapper — far below raw SATA speed
because 6 mappers share 4 data disks and HDFS adds checksumming and
copy overhead.  We use 20 MB/s effective per task.

**Remote read bandwidth** (``REMOTE_BYTES_PER_SEC``).  Section 6.4: the
same CIF job was 5.1x slower without co-location, when column files were
fetched from other datanodes over the shared 1 GbE fabric.  A remote
read also still pays the remote node's disk.  4 MB/s effective per task
reproduces the ~5x penalty.

**Managed (Java) decode costs.**  Appendix B / Figure 8 reports read
bandwidth scanning 1000-byte records where a fraction ``f`` is typed
data and the rest is an opaque byte array:

- raw byte-array scan plateaus near ~1.6 GB/s  -> 0.6 ns/byte,
- Java integers at f=1.0 run at ~250 MB/s; 250 ints per record
  -> (1000 B / 0.25 GB/s) / 250 ~= 16 ns per int decode,
- Java doubles at f=1.0 near ~400 MB/s; 125 doubles per record
  -> ~20 ns per double,
- Java maps (4 entries, mutable-string keys, int values) drop below a
  SATA disk's ~100 MB/s once f > 0.6.  With ~40-byte maps, f=0.6 is
  ~15 maps = 60 entries per record; 1000 B / 100 MB/s = 10 us per
  record  -> ~150 ns per map entry (HashMap node + key object + boxing).

**Native (C++) decode costs.**  Figure 8's C++ integer/double curves stay
near memory bandwidth (values are cast out of the buffer): ~1 ns per
primitive.  ``std::map`` still allocates a node per entry: ~60 ns.

**Text parsing** (``text_parse_per_byte``).  Section 6.2: SEQ scanned
the 57 GB dataset ~3x faster than TXT and TXT was CPU-bound.  SEQ's scan
is disk-bound at 20 MB/s -> TXT's parse must sustain ~6.7 MB/s
-> ~150 ns/byte of line splitting, field conversion, and object churn.

**Decompression.**  Effective in-Hadoop decompression is far slower
than raw codec speed (stream wrappers, buffer copies, codec pooling):
Table 1's SEQ variants and CIF-ZLIB/LZO rows are mutually consistent
with ZLIB inflating at ~80 MB/s effective (12 ns/B) and LZO at
~200 MB/s (5 ns/B), plus a fixed per-block setup cost of ~50 us
(codec/buffer initialization) that dominates for the small compressed
blocks CIF uses — which is why CIF-LZO and CIF-ZLIB buy nothing over
plain CIF despite reading fewer bytes.  The DCSL dictionary decode is
a per-entry table lookup: ~20 ns.

**RCFile per-field overhead.**  Table 1 shows RCFile beating SEQ-custom
by only 1.1x despite reading 2.7x less data; the paper blames "the use
of inefficient serialization in parts of RCFile" and per-row-group
metadata interpretation.  RCFile materializes a BytesRefWritable per
projected field per row on top of the actual value decode: ~250 ns per
field, plus a per-row-group metadata parse cost.  Interpreting the key
buffer itself allocates and fills per-cell byte-range refs for *every*
column of *every* row, projected or not (~150 ns per length entry) —
this is what keeps RCFile's narrow projections far behind CIF's in
Figure 7 while barely moving its all-columns scan.
"""

from __future__ import annotations

from dataclasses import dataclass

NS = 1e-9  # nanoseconds -> seconds

# ---------------------------------------------------------------------------
# Cluster / I/O constants (defaults for ClusterConfig)
# ---------------------------------------------------------------------------

#: Effective sustained HDFS scan bandwidth per map task (local replica).
DISK_BYTES_PER_SEC = 20e6

#: Effective bandwidth per task when reading a non-local replica.
REMOTE_BYTES_PER_SEC = 4e6

#: Average positioning cost per disk seek (SATA).
SEEK_SECONDS = 0.008

#: Fixed cost to open / reposition a remote stream: the network
#: round-trip plus the *serving* node's disk positioning (a remote read
#: still seeks a disk somewhere — without this, tiny remote reads would
#: look cheaper than local ones).
REMOTE_LATENCY_SECONDS = 0.010

#: Default HDFS readahead (io.file.buffer.size), as in Section 6.2.
IO_BUFFER_BYTES = 128 * 1024

#: Default HDFS block size (Section 4.3 assumes 64 MB blocks).
BLOCK_BYTES = 64 * 1024 * 1024

#: Shuffle transfer bandwidth per reducer (1 GbE shared).
SHUFFLE_BYTES_PER_SEC = 30e6

#: Interleaving penalty when one task scans k column files at once.
#: Section 6.2: scanning *all* columns through CIF was ~25% slower than
#: the single-file SEQ scan "because of the additional seeks ...
#: gathering data from columns stored in different files".  We model a
#: per-task effective-bandwidth scale of 1 / (1 + alpha * (k - 1));
#: the paper's 13-column dataset and 25% penalty give alpha ~= 0.02.
#: The same model makes CIF's all-columns overhead grow with record
#: width, as Appendix B.5 observes.
INTERLEAVE_ALPHA = 0.02

#: Fixed per-job wall-clock overhead (setup, scheduling, shuffle/sort
#: floor).  Table 1's total-vs-map gaps are nearly constant across
#: formats (SEQ-uncomp 1482-1416 = 66 s; CIF 78-12.4 ~= 66 s), i.e. the
#: non-map phases of this job cost ~65 s regardless of storage format.
#: ClusterConfig defaults to 0 (pure simulation); the Table 1 bench sets
#: this value to reproduce the paper's total-time compression.
JOB_OVERHEAD_SECONDS = 65.0


def interleave_bandwidth_scale(num_streams: int) -> float:
    """Effective-bandwidth scale for a task reading k files at once."""
    if num_streams <= 1:
        return 1.0
    return 1.0 / (1.0 + INTERLEAVE_ALPHA * (num_streams - 1))

# ---------------------------------------------------------------------------
# CPU cost profiles
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CostProfile:
    """Per-operation CPU charges, in seconds.

    Two instances exist: :data:`MANAGED_PROFILE` models the Java stack the
    paper targets (deserialization creates objects); :data:`NATIVE_PROFILE`
    models the C++ comparison of Appendix B.1 (values are cast directly
    out of the read buffer).
    """

    # Raw buffer traffic (applies to every byte a decoder touches).
    raw_scan_per_byte: float
    # Primitive decodes (varint/fixed read + boxing where applicable).
    int_decode: float
    long_decode: float
    double_decode: float
    bool_decode: float
    # Strings: object creation + per-byte charset decode.
    string_decode_base: float
    string_decode_per_byte: float
    # Opaque byte arrays: one allocation + bulk copy.
    bytes_decode_base: float
    bytes_decode_per_byte: float
    # Containers.
    map_decode_base: float
    map_entry: float
    array_decode_base: float
    array_element: float
    record_decode_base: float
    # Skipping a serialized datum without materializing it still walks
    # its length structure; charged as a fraction of the decode cost.
    skip_fraction: float
    # Text-format parsing (line splitting, number parsing, object churn).
    text_parse_per_byte: float
    # Decompression, per *output* byte.
    zlib_inflate_per_byte: float
    lzo_inflate_per_byte: float
    zlib_deflate_per_byte: float
    lzo_deflate_per_byte: float
    # DCSL dictionary decode, per map entry.
    dictionary_lookup: float
    # Fixed cost to set up decompression of one compressed block.
    block_inflate_setup: float
    # RCFile-specific overheads (see module docstring).
    rcfile_field_overhead: float
    rcfile_rowgroup_parse: float
    rcfile_length_entry: float
    # User-code costs inside map().
    predicate_per_byte: float
    map_invoke: float


MANAGED_PROFILE = CostProfile(
    raw_scan_per_byte=0.6 * NS,
    int_decode=16 * NS,
    long_decode=20 * NS,
    double_decode=20 * NS,
    bool_decode=8 * NS,
    string_decode_base=40 * NS,
    string_decode_per_byte=1.0 * NS,
    bytes_decode_base=20 * NS,
    bytes_decode_per_byte=0.2 * NS,
    map_decode_base=60 * NS,
    map_entry=150 * NS,
    array_decode_base=40 * NS,
    array_element=20 * NS,
    record_decode_base=50 * NS,
    skip_fraction=0.4,
    text_parse_per_byte=150 * NS,
    zlib_inflate_per_byte=12.0 * NS,  # ~80 MB/s effective in-Hadoop
    lzo_inflate_per_byte=5.0 * NS,    # ~200 MB/s effective in-Hadoop
    zlib_deflate_per_byte=30 * NS,    # ~33 MB/s
    lzo_deflate_per_byte=5 * NS,      # ~200 MB/s
    dictionary_lookup=20 * NS,
    block_inflate_setup=50_000 * NS,
    rcfile_field_overhead=250 * NS,
    rcfile_rowgroup_parse=2_000 * NS,
    rcfile_length_entry=150 * NS,
    predicate_per_byte=1.0 * NS,
    map_invoke=100 * NS,
)

NATIVE_PROFILE = CostProfile(
    raw_scan_per_byte=0.5 * NS,
    int_decode=1 * NS,
    long_decode=1 * NS,
    double_decode=1 * NS,
    bool_decode=0.5 * NS,
    string_decode_base=15 * NS,
    string_decode_per_byte=0.1 * NS,
    bytes_decode_base=10 * NS,
    bytes_decode_per_byte=0.1 * NS,
    map_decode_base=30 * NS,
    map_entry=60 * NS,
    array_decode_base=20 * NS,
    array_element=5 * NS,
    record_decode_base=20 * NS,
    skip_fraction=0.3,
    text_parse_per_byte=40 * NS,
    zlib_inflate_per_byte=4.0 * NS,
    lzo_inflate_per_byte=1.0 * NS,
    zlib_deflate_per_byte=20 * NS,
    lzo_deflate_per_byte=3 * NS,
    dictionary_lookup=5 * NS,
    block_inflate_setup=10_000 * NS,
    rcfile_field_overhead=40 * NS,
    rcfile_rowgroup_parse=500 * NS,
    rcfile_length_entry=30 * NS,
    predicate_per_byte=0.5 * NS,
    map_invoke=20 * NS,
)
