"""CPU cost model: converts decode/parse/decompress operations to seconds.

Decoders, parsers and codecs call into a :class:`CpuCostModel` as they do
their (real) byte-level work; the model charges the simulated Java (or
C++) CPU time for each operation into the task's
:class:`~repro.sim.metrics.Metrics`.
"""

from __future__ import annotations

from repro.sim.calibration import MANAGED_PROFILE, CostProfile
from repro.sim.metrics import Metrics


class CpuCostModel:
    """Charges per-operation CPU seconds from a :class:`CostProfile`.

    One instance is shared across the tasks of a job; it is stateless
    apart from the profile, so sharing is safe.
    """

    def __init__(self, profile: CostProfile = MANAGED_PROFILE) -> None:
        self.profile = profile

    # -- primitives ---------------------------------------------------

    def charge_raw_scan(self, metrics: Metrics, nbytes: int) -> None:
        """Bytes streamed through a decoder without type interpretation."""
        metrics.charge_cpu(nbytes * self.profile.raw_scan_per_byte)

    def charge_int(self, metrics: Metrics) -> None:
        metrics.charge_cpu(self.profile.int_decode)
        metrics.cells += 1

    def charge_long(self, metrics: Metrics) -> None:
        metrics.charge_cpu(self.profile.long_decode)
        metrics.cells += 1

    def charge_double(self, metrics: Metrics) -> None:
        metrics.charge_cpu(self.profile.double_decode)
        metrics.cells += 1

    def charge_bool(self, metrics: Metrics) -> None:
        metrics.charge_cpu(self.profile.bool_decode)
        metrics.cells += 1

    def charge_string(self, metrics: Metrics, nbytes: int) -> None:
        metrics.charge_cpu(
            self.profile.string_decode_base
            + nbytes * self.profile.string_decode_per_byte
        )
        metrics.cells += 1
        metrics.objects += 1

    def charge_bytes(self, metrics: Metrics, nbytes: int) -> None:
        metrics.charge_cpu(
            self.profile.bytes_decode_base
            + nbytes * self.profile.bytes_decode_per_byte
        )
        metrics.cells += 1
        metrics.objects += 1

    # -- containers ---------------------------------------------------

    def charge_map(self, metrics: Metrics, entries: int) -> None:
        """Container overhead for a map; key/value datums charge separately."""
        metrics.charge_cpu(
            self.profile.map_decode_base + entries * self.profile.map_entry
        )
        metrics.objects += 1 + entries

    def charge_array(self, metrics: Metrics, elements: int) -> None:
        metrics.charge_cpu(
            self.profile.array_decode_base
            + elements * self.profile.array_element
        )
        metrics.objects += 1

    def charge_record(self, metrics: Metrics) -> None:
        metrics.charge_cpu(self.profile.record_decode_base)
        metrics.objects += 1

    # -- skipping / parsing / codecs -----------------------------------

    def skip_discount(self, seconds: float) -> float:
        """CPU cost of skipping work that would have cost ``seconds``."""
        return seconds * self.profile.skip_fraction

    def charge_text_parse(self, metrics: Metrics, nbytes: int) -> None:
        metrics.charge_cpu(nbytes * self.profile.text_parse_per_byte)

    def charge_inflate(self, metrics: Metrics, codec: str, out_bytes: int) -> None:
        """Decompression cost, charged per *output* byte."""
        per_byte = {
            "zlib": self.profile.zlib_inflate_per_byte,
            "lzo": self.profile.lzo_inflate_per_byte,
        }[codec]
        metrics.charge_cpu(out_bytes * per_byte)

    def charge_deflate(self, metrics: Metrics, codec: str, in_bytes: int) -> None:
        per_byte = {
            "zlib": self.profile.zlib_deflate_per_byte,
            "lzo": self.profile.lzo_deflate_per_byte,
        }[codec]
        metrics.charge_cpu(in_bytes * per_byte)

    def charge_dictionary_lookup(self, metrics: Metrics, lookups: int = 1) -> None:
        metrics.charge_cpu(lookups * self.profile.dictionary_lookup)

    def charge_block_inflate_setup(self, metrics: Metrics) -> None:
        """Fixed codec/buffer initialization per compressed block."""
        metrics.charge_cpu(self.profile.block_inflate_setup)

    # -- format-specific -----------------------------------------------

    def charge_rcfile_fields(self, metrics: Metrics, fields: int) -> None:
        """Per-field writable materialization overhead in RCFile."""
        metrics.charge_cpu(fields * self.profile.rcfile_field_overhead)

    def charge_rcfile_rowgroup(self, metrics: Metrics, length_entries: int) -> None:
        """Parsing one row group's metadata region.

        ``length_entries`` is rows x columns — every value length in the
        key buffer is decoded regardless of the projection.
        """
        metrics.charge_cpu(
            self.profile.rcfile_rowgroup_parse
            + length_entries * self.profile.rcfile_length_entry
        )

    # -- user code ------------------------------------------------------

    def charge_predicate(self, metrics: Metrics, nbytes: int) -> None:
        """A string-matching predicate over ``nbytes`` of input."""
        metrics.charge_cpu(nbytes * self.profile.predicate_per_byte)

    def charge_map_invoke(self, metrics: Metrics) -> None:
        """Fixed overhead of one map() call."""
        metrics.charge_cpu(self.profile.map_invoke)
