"""Disk and network timing models.

These convert *accounted* bytes and seeks into simulated seconds.  The
byte accounting itself (readahead granularity, local vs remote) is done
by the HDFS stream layer in :mod:`repro.hdfs.streams`; the models here
are pure arithmetic so they are trivial to test and swap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import calibration
from repro.sim.metrics import Metrics


@dataclass(frozen=True)
class DiskModel:
    """Local-disk timing: per-task effective bandwidth plus seek costs.

    ``bytes_per_sec`` is the *effective per-mapper* scan bandwidth (disk
    sharing among map slots, HDFS checksumming and copy overhead are
    folded in — see :mod:`repro.sim.calibration`).
    """

    bytes_per_sec: float = calibration.DISK_BYTES_PER_SEC
    seek_seconds: float = calibration.SEEK_SECONDS

    def charge_read(
        self,
        metrics: Metrics,
        nbytes: int,
        seeks: int = 0,
        bandwidth_scale: float = 1.0,
    ) -> None:
        """Charge a local disk fetch of ``nbytes`` with ``seeks`` seeks.

        ``bandwidth_scale`` < 1 models reduced effective bandwidth when
        the task interleaves reads across several files (CIF scanning
        many columns at once — see calibration.INTERLEAVE_ALPHA).
        """
        metrics.disk_bytes += nbytes
        metrics.seeks += seeks
        metrics.charge_io(
            nbytes / (self.bytes_per_sec * bandwidth_scale)
            + seeks * self.seek_seconds
        )

    def charge_write(self, metrics: Metrics, nbytes: int) -> None:
        """Charge a local disk write (loads, map output spills)."""
        metrics.disk_bytes += nbytes
        metrics.charge_io(nbytes / self.bytes_per_sec)


@dataclass(frozen=True)
class NetworkModel:
    """Remote-read and shuffle timing over the shared 1 GbE fabric."""

    bytes_per_sec: float = calibration.REMOTE_BYTES_PER_SEC
    latency_seconds: float = calibration.REMOTE_LATENCY_SECONDS
    shuffle_bytes_per_sec: float = calibration.SHUFFLE_BYTES_PER_SEC

    def charge_remote_read(
        self, metrics: Metrics, nbytes: int, transfers: int = 0
    ) -> None:
        """Charge a block read served by a non-local datanode."""
        metrics.net_bytes += nbytes
        metrics.charge_io(
            nbytes / self.bytes_per_sec + transfers * self.latency_seconds
        )

    def charge_shuffle(self, metrics: Metrics, nbytes: int) -> None:
        """Charge moving map output to a reducer."""
        metrics.net_bytes += nbytes
        metrics.charge_io(nbytes / self.shuffle_bytes_per_sec)
