"""Per-task and per-job metric accumulation.

A single :class:`Metrics` instance rides along with each map/reduce task
(inside the task context).  Streams charge I/O into it, decoders charge
CPU into it, and the job runner aggregates task metrics into the numbers
the paper's tables report.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class Metrics:
    """Accumulated simulated costs and byte counters for one task or job.

    Attributes
    ----------
    disk_bytes:
        Bytes actually fetched from local disk, at readahead granularity.
        This is what Table 1's "Data Read" column counts.
    net_bytes:
        Bytes fetched over the network (remote block reads + shuffle).
    requested_bytes:
        Bytes the reader *asked* for; ``disk_bytes - requested_bytes`` is
        readahead waste (the mechanism that hurts RCFile's column
        skipping).
    seeks:
        Disk seeks issued (file opens, skips beyond the readahead buffer).
    io_time / cpu_time:
        Simulated seconds.  Hadoop 0.21 map tasks read and deserialize
        synchronously in the mapper thread, so a task's runtime is
        modelled as ``io_time + cpu_time``.
    records / cells / objects:
        Records materialized, datums decoded, objects created — used by
        the deserialization experiments (Figure 8, Figure 10).
    """

    disk_bytes: int = 0
    net_bytes: int = 0
    requested_bytes: int = 0
    seeks: int = 0
    io_time: float = 0.0
    cpu_time: float = 0.0
    records: int = 0
    cells: int = 0
    objects: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def total_bytes_read(self) -> int:
        """All bytes that crossed a disk or the network."""
        return self.disk_bytes + self.net_bytes

    @property
    def task_time(self) -> float:
        """Simulated task runtime (serial read/deserialize/map loop)."""
        return self.io_time + self.cpu_time

    def charge_cpu(self, seconds: float) -> None:
        self.cpu_time += seconds

    def charge_io(self, seconds: float) -> None:
        self.io_time += seconds

    def add(self, other: "Metrics") -> None:
        """Fold another task's metrics into this aggregate."""
        for f in fields(self):
            if f.name == "extra":
                for key, value in other.extra.items():
                    self.extra[key] = self.extra.get(key, 0) + value
            else:
                setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def copy(self) -> "Metrics":
        out = Metrics()
        out.add(self)
        return out

    def reset(self) -> None:
        for f in fields(self):
            if f.name == "extra":
                self.extra.clear()
            else:
                setattr(self, f.name, type(getattr(self, f.name))())
