"""Shared experiment plumbing: scaled clusters, scans, table rendering.

The paper's experiments ran at terabyte scale; ours run megabytes.  To
keep the *shape* of the results scale-invariant, experiments shrink the
three storage granularities (HDFS block, readahead buffer, RCFile row
group) by the same factor as the dataset, so every "X is smaller/larger
than the readahead window" relationship in the paper still holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.hdfs import ClusterConfig, FileSystem
from repro.mapreduce.types import InputFormat, TaskContext
from repro.obs import current_obs
from repro.sim import calibration
from repro.sim.cost import CpuCostModel
from repro.sim.metrics import Metrics
from repro.sim.models import DiskModel, NetworkModel

#: The experiments shrink the paper's datasets ~100x-1000x; the storage
#: granularities shrink by GRANULARITY_SCALE so every "smaller/larger
#: than the readahead window / row group / block" relationship in the
#: paper is preserved.  Per-seek and per-transfer *latencies* shrink by
#: the same factor: a scaled-down dataset crosses file/block boundaries
#: proportionally more often per byte, and leaving latencies full-size
#: would make fixed costs dominate in a way they do not at paper scale.
GRANULARITY_SCALE = 0.01
MICRO_IO_BUFFER = 12 * 1024         # paper: 128 KB readahead
MICRO_BLOCK = 4 * 1024 * 1024       # scaled block; >> row group, as in paper
MICRO_ROW_GROUP = 384 * 1024        # paper: 4 MB = 31 readahead windows
MICRO_SPLIT_BYTES = 512 * 1024      # CIF split-directories ("~one block")


def scaled_disk() -> DiskModel:
    return DiskModel(seek_seconds=calibration.SEEK_SECONDS * GRANULARITY_SCALE)


def scaled_network() -> NetworkModel:
    return NetworkModel(
        latency_seconds=calibration.REMOTE_LATENCY_SECONDS * GRANULARITY_SCALE
    )


def single_node_fs(
    block_size: int = 64 * 1024 * 1024, io_buffer: int = MICRO_IO_BUFFER
) -> FileSystem:
    """The single-node setup of Section 6.2's microbenchmark.

    The default block size exceeds the microbenchmark datasets so each
    file scans as a single split, as in the paper's single-node test
    (no mid-file sync resynchronization).
    """
    return FileSystem(
        ClusterConfig(
            num_nodes=1,
            replication=1,
            map_slots_per_node=1,
            block_size=block_size,
            io_buffer_size=io_buffer,
            disk=scaled_disk(),
            network=scaled_network(),
        )
    )


def cluster_fs(
    num_nodes: int = 40,
    block_size: int = MICRO_BLOCK,
    io_buffer: int = MICRO_IO_BUFFER,
    job_overhead: float = 0.0,
    seed: int = 20110401,
) -> FileSystem:
    """The full-cluster setup of Section 6.1 (40 nodes, 6 map slots)."""
    return FileSystem(
        ClusterConfig(
            num_nodes=num_nodes,
            map_slots_per_node=6,
            reduce_slots_per_node=1,
            block_size=block_size,
            io_buffer_size=io_buffer,
            disk=scaled_disk(),
            network=scaled_network(),
            job_overhead_seconds=job_overhead,
            seed=seed,
        )
    )


def make_context(
    fs: FileSystem, node: Optional[int] = 0, cost: Optional[CpuCostModel] = None
) -> TaskContext:
    return TaskContext(
        node=node,
        cost=cost if cost is not None else CpuCostModel(),
        io_buffer_size=fs.cluster.io_buffer_size,
    )


def scan(
    fs: FileSystem,
    input_format: InputFormat,
    touch_columns: Optional[Sequence[str]] = None,
    node: Optional[int] = 0,
) -> Metrics:
    """Scan every split of ``input_format`` on one node; return metrics.

    ``touch_columns`` calls ``record.get`` on those columns (what a map
    function would do); None touches nothing beyond materialization.

    Under an active flight recorder the scan is traced (one span per
    scan, one per split) and its metrics snapshot is recorded, so every
    benchmark emits a flight-recorder artifact with no extra plumbing.
    """
    obs = current_obs()
    ctx = make_context(fs, node=node)
    fmt = type(input_format).__name__
    dataset = getattr(
        input_format, "dataset", getattr(input_format, "path", "")
    )
    label = f"scan:{fmt}:{dataset}" + (
        f":{'+'.join(touch_columns)}" if touch_columns else ""
    )
    with obs.tracer.span(
        "scan", kind="scan", format=fmt, dataset=dataset,
        columns=list(touch_columns) if touch_columns else None,
        metrics=ctx.metrics,
    ):
        for split in input_format.get_splits(fs, fs.cluster):
            reader = input_format.open_reader(fs, split, ctx)
            try:
                with obs.tracer.span(
                    "split_scan", kind="split", split=split.label,
                    metrics=ctx.metrics,
                ):
                    for _, record in reader:
                        if touch_columns:
                            for column in touch_columns:
                                record.get(column)
            finally:
                reader.close()
    obs.record_metrics(label, ctx.metrics)
    return ctx.metrics


@dataclass
class Row:
    """One printable result row: a label plus named values."""

    label: str
    values: dict

    def __getitem__(self, key):
        return self.values[key]


def format_table(title: str, headers: List[str], rows: List[Row]) -> str:
    """Render rows as a fixed-width table like the paper's."""
    widths = [max(len(h), 14) for h in headers]
    label_width = max([len(r.label) for r in rows] + [12])
    lines = [title, "=" * len(title)]
    lines.append(
        " ".join(["Layout".ljust(label_width)] + [
            h.rjust(w) for h, w in zip(headers, widths)
        ])
    )
    for row in rows:
        cells = []
        for header, width in zip(headers, widths):
            value = row.values.get(header, "")
            if isinstance(value, float):
                value = f"{value:,.2f}"
            cells.append(str(value).rjust(width))
        lines.append(" ".join([row.label.ljust(label_width)] + cells))
    return "\n".join(lines)


def ratio(base: float, other: float) -> float:
    """Speedup of ``other`` relative to ``base`` (base / other)."""
    return base / other if other else float("inf")
