"""Figure 8 / Appendix B.1: deserialization and object-creation cost.

Scans 1000-byte records in which a fraction ``f`` of the bytes hold
typed data (integers, doubles, or 4-entry maps) and the remainder is an
opaque byte array, entirely in memory (the paper warms the filesystem
cache), under the managed (Java-like) and native (C++-like) cost
profiles.

Paper shape targets:
- read bandwidth falls as ``f`` rises for every type,
- the native profile sustains far higher bandwidth than managed for
  integers and doubles,
- managed maps drop below a typical SATA disk's bandwidth
  (~100 MB/s) once ``f`` exceeds ~60% — deserialization, not disk,
  becomes the bottleneck.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.bench import harness
from repro.serde.binary import BinaryDecoder, BinaryEncoder
from repro.serde.schema import Schema
from repro.sim.calibration import MANAGED_PROFILE, NATIVE_PROFILE
from repro.sim.cost import CpuCostModel
from repro.sim.metrics import Metrics
from repro.util.buffers import ByteReader

RECORD_BYTES = 1000
FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
TYPES = ("integers", "doubles", "maps")
PROFILES = {"managed": MANAGED_PROFILE, "native": NATIVE_PROFILE}

_INT = Schema.int_()
_DOUBLE = Schema.double()
_MAP = Schema.map(Schema.int_())
_BYTES = Schema.bytes_()


def _build_record(rng: random.Random, typed: str, fraction: float):
    """Encode one 1000-byte record: typed prefix + byte-array filler.

    Returns ``(payload, typed_schemas)`` where ``typed_schemas`` is the
    datum-by-datum decode plan.
    """
    target = int(RECORD_BYTES * fraction)
    enc = BinaryEncoder()
    plan: List[Schema] = []
    while enc.writer.position < target:
        if typed == "integers":
            # values sized so each datum is ~4 bytes, like a Java int.
            enc.write_datum(_INT, rng.randint(1 << 22, (1 << 25) - 1))
            plan.append(_INT)
        elif typed == "doubles":
            enc.write_datum(_DOUBLE, rng.random() * 1e6)
            plan.append(_DOUBLE)
        else:
            enc.write_datum(
                _MAP,
                {
                    f"key{rng.randint(0, 9)}{k}": rng.randint(0, 9999)
                    for k in range(4)
                },
            )
            plan.append(_MAP)
    filler = bytes(RECORD_BYTES - enc.writer.position - 3 if
                   RECORD_BYTES - enc.writer.position > 3 else 0)
    enc.write_datum(_BYTES, filler)
    plan.append(_BYTES)
    return enc.getvalue(), plan


@dataclass
class Fig8Result:
    #: bandwidth[profile][type][fraction] -> MB/s
    bandwidth: Dict[str, Dict[str, Dict[float, float]]] = field(
        default_factory=dict
    )

    def series(self, profile: str, typed: str) -> Dict[float, float]:
        return self.bandwidth[profile][typed]


def run(records: int = 200, seed: int = 8) -> Fig8Result:
    result = Fig8Result()
    for profile_name, profile in PROFILES.items():
        cost = CpuCostModel(profile)
        by_type: Dict[str, Dict[float, float]] = {}
        for typed in TYPES:
            series: Dict[float, float] = {}
            for fraction in FRACTIONS:
                rng = random.Random(seed)
                total_bytes = 0
                metrics = Metrics()
                for _ in range(records):
                    payload, plan = _build_record(rng, typed, fraction)
                    total_bytes += len(payload)
                    dec = BinaryDecoder(ByteReader(payload), cost, metrics)
                    for schema in plan:
                        dec.read_datum(schema)
                series[fraction] = (
                    total_bytes / metrics.cpu_time / 1e6
                    if metrics.cpu_time
                    else float("inf")
                )
            by_type[typed] = series
        result.bandwidth[profile_name] = by_type
    return result


def format_table(result: Fig8Result) -> str:
    headers = [f"f={f:.0%}" for f in FRACTIONS]
    rows = []
    for profile_name, by_type in result.bandwidth.items():
        for typed, series in by_type.items():
            rows.append(
                harness.Row(
                    f"{profile_name} {typed}",
                    {
                        h: round(series[f], 1)
                        for h, f in zip(headers, FRACTIONS)
                    },
                )
            )
    return harness.format_table(
        "Figure 8 - read bandwidth (MB/s) vs fraction of typed data",
        headers,
        rows,
    )


def format_chart(result: Fig8Result) -> str:
    from repro.bench.ascii_plot import line_chart

    series = {
        f"{profile} {typed}": result.series(profile, typed)
        for profile in PROFILES
        for typed in TYPES
    }
    return line_chart(
        series,
        title="Figure 8 - read bandwidth vs fraction of typed data",
        x_label="fraction typed",
        y_label="MB/s",
    )


def main() -> None:
    result = run()
    print(format_table(result))
    print()
    print(format_chart(result))


if __name__ == "__main__":
    main()
