"""Table 2 / Appendix B.3: load times.

Converts the Section 6.2 synthetic dataset from SequenceFile form into
CIF, CIF-SL and RCFile, measuring the simulated cost of each load (read
the source + write the target).  Because HDFS is append-only, building
skip lists double-buffers each column in memory before writing — the
paper measures that overhead as minor (89 vs 93 minutes).

Paper shape targets:
- adding skip lists costs only a few percent extra load time,
- converting to RCFile costs about the same as converting to CIF.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.bench import harness
from repro.core import ColumnSpec, write_dataset
from repro.formats.rcfile import write_rcfile
from repro.formats.sequence_file import SequenceFileInputFormat, write_sequence_file
from repro.workloads.micro import micro_records, micro_schema

LAYOUTS = ("CIF", "CIF-SL", "RCFile")


@dataclass
class Table2Result:
    records: int
    #: simulated seconds per target layout
    load_times: Dict[str, float] = field(default_factory=dict)
    bytes_written: Dict[str, int] = field(default_factory=dict)


def _read_source(fs, ctx) -> list:
    fmt = SequenceFileInputFormat("/t2/seq")
    records = []
    for split in fmt.get_splits(fs, fs.cluster):
        records.extend(r for _, r in fmt.open_reader(fs, split, ctx))
    return records


def run(records: int = 20000) -> Table2Result:
    schema = micro_schema()
    result = Table2Result(records=records)
    for layout in LAYOUTS:
        fs = harness.single_node_fs()
        write_sequence_file(fs, "/t2/seq", schema, micro_records(records))
        ctx = harness.make_context(fs)
        data = _read_source(fs, ctx)
        metrics = ctx.metrics  # conversion job: read cost accrues here
        before = metrics.disk_bytes
        if layout == "CIF":
            write_dataset(
                fs, "/t2/out", schema, data,
                split_bytes=harness.MICRO_SPLIT_BYTES, metrics=metrics,
            )
        elif layout == "CIF-SL":
            write_dataset(
                fs, "/t2/out", schema, data,
                default_spec=ColumnSpec("skiplist"),
                split_bytes=harness.MICRO_SPLIT_BYTES, metrics=metrics,
            )
        else:
            write_rcfile(
                fs, "/t2/out", schema, data,
                row_group_bytes=harness.MICRO_ROW_GROUP, metrics=metrics,
            )
        result.load_times[layout] = metrics.task_time
        result.bytes_written[layout] = metrics.disk_bytes - before
    return result


def format_table(result: Table2Result) -> str:
    rows = [
        harness.Row(
            layout,
            {
                "Load time (s)": round(result.load_times[layout], 3),
                "Bytes written": result.bytes_written[layout],
            },
        )
        for layout in LAYOUTS
    ]
    return harness.format_table(
        f"Table 2 - load times ({result.records} records)",
        ["Load time (s)", "Bytes written"],
        rows,
    )


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()
