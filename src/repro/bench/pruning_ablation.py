"""Ablation: zone-map split pruning vs predicate selectivity.

Extension experiment (the direction CIF's successors took): how much
I/O do per-split-directory min/max statistics eliminate for range
queries, on arrival-ordered (shuffled) vs clustered (sorted) data, as
the queried fraction of the dataset shrinks?

Expected shape:
- on shuffled data every directory's range covers the predicate, so
  pruning eliminates ~nothing at any selectivity;
- on clustered data, bytes scanned fall roughly linearly with the
  selected fraction — the split-level analogue of the paper's
  column-level I/O elimination.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.bench import harness
from repro.core import ColumnInputFormat, write_dataset
from repro.core.stats import RangePredicate
from repro.serde.record import Record
from repro.serde.schema import Schema
from repro.tools.sort import sort_dataset

DAYS = 100
#: fraction of the day range each query selects
SELECTED_FRACTIONS = (1.0, 0.5, 0.2, 0.05)


def reading_schema() -> Schema:
    return Schema.record(
        "Reading",
        [("day", Schema.int_()), ("sensor", Schema.string()),
         ("value", Schema.double())],
    )


def reading_records(n: int, seed: int = 21) -> List[Record]:
    rng = random.Random(seed)
    schema = reading_schema()
    return [
        Record(schema, {
            "day": rng.randrange(DAYS),
            "sensor": f"s{rng.randrange(50)}",
            "value": rng.gauss(0, 1),
        })
        for _ in range(n)
    ]


@dataclass
class PruningResult:
    records: int
    #: bytes[layout][fraction] and scanned records
    bytes_read: Dict[str, Dict[float, int]] = field(default_factory=dict)
    records_scanned: Dict[str, Dict[float, int]] = field(default_factory=dict)
    answers: Dict[float, int] = field(default_factory=dict)


def _query(fs, dataset: str, min_day: int):
    fmt = ColumnInputFormat(
        dataset, columns=["day"], lazy=False,
        predicates=[RangePredicate("day", ">=", min_day)],
    )
    ctx = harness.make_context(fs)
    matches = 0
    for split in fmt.get_splits(fs, fs.cluster):
        for _, record in fmt.open_reader(fs, split, ctx):
            if record.get("day") >= min_day:
                matches += 1
    return matches, ctx.metrics


def run(records: int = 12000) -> PruningResult:
    fs = harness.single_node_fs()
    schema = reading_schema()
    data = reading_records(records)
    write_dataset(fs, "/pr/shuffled", schema, data, split_bytes=16 * 1024)
    sort_dataset(
        fs, ColumnInputFormat("/pr/shuffled"), schema, "day", "/pr/sorted",
        partitions=4, split_bytes=16 * 1024,
    )
    result = PruningResult(records=records)
    for fraction in SELECTED_FRACTIONS:
        min_day = int(DAYS * (1 - fraction))
        expected = None
        for layout, dataset in (("shuffled", "/pr/shuffled"),
                                ("sorted", "/pr/sorted")):
            matches, metrics = _query(fs, dataset, min_day)
            if expected is None:
                expected = matches
            elif matches != expected:
                raise AssertionError("pruning changed the answer")
            result.bytes_read.setdefault(layout, {})[fraction] = (
                metrics.total_bytes_read
            )
            result.records_scanned.setdefault(layout, {})[fraction] = (
                metrics.records
            )
        result.answers[fraction] = expected
    return result


def format_table(result: PruningResult) -> str:
    headers = [f"top {f:.0%}" for f in SELECTED_FRACTIONS]
    rows = []
    for layout in ("shuffled", "sorted"):
        rows.append(harness.Row(
            f"{layout}: records scanned",
            {h: result.records_scanned[layout][f]
             for h, f in zip(headers, SELECTED_FRACTIONS)},
        ))
        rows.append(harness.Row(
            f"{layout}: bytes read",
            {h: result.bytes_read[layout][f]
             for h, f in zip(headers, SELECTED_FRACTIONS)},
        ))
    return harness.format_table(
        f"Ablation - zone-map pruning vs selected fraction "
        f"({result.records} records, {DAYS} days)",
        headers,
        rows,
    )


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()
