"""Section 6.4: the impact of co-location (CPP vs default placement).

Re-runs the Table 1 job over CIF twice: once with the
ColumnPlacementPolicy installed before loading (every split-directory
fully co-located) and once with HDFS's default random placement (column
files scattered, so map tasks must read most columns remotely).

Paper shape target: map time with CPP ~5.1x better than without.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench import harness
from repro.core import ColumnInputFormat, write_dataset
from repro.mapreduce.runner import run_job
from repro.workloads.crawl import crawl_records, crawl_schema
from repro.workloads.jobs import distinct_content_types_job


@dataclass
class ColocationResult:
    records: int
    map_time_cpp: float
    map_time_default: float
    local_fraction_cpp: float
    local_fraction_default: float

    @property
    def speedup(self) -> float:
        return self.map_time_default / self.map_time_cpp


def _run_one(use_cpp: bool, records: int, content_bytes: int) -> "tuple[float, float]":
    fs = harness.cluster_fs(num_nodes=40, block_size=harness.MICRO_BLOCK)
    if use_cpp:
        fs.use_column_placement()
    data = crawl_records(records, content_bytes=content_bytes)
    write_dataset(
        fs, "/colo/cif", crawl_schema(), data,
        split_bytes=harness.MICRO_BLOCK // 2,
    )
    fmt = ColumnInputFormat("/colo/cif", columns=["url", "metadata"], lazy=False)
    result = run_job(
        fs, distinct_content_types_job(fmt, num_reducers=40, name="colo")
    )
    return result.map_time, result.data_local_fraction


def run(records: int = 800, content_bytes: int = 32768) -> ColocationResult:
    cpp_time, cpp_local = _run_one(True, records, content_bytes)
    default_time, default_local = _run_one(False, records, content_bytes)
    return ColocationResult(
        records=records,
        map_time_cpp=cpp_time,
        map_time_default=default_time,
        local_fraction_cpp=cpp_local,
        local_fraction_default=default_local,
    )


def format_table(result: ColocationResult) -> str:
    rows = [
        harness.Row(
            "CIF with CPP",
            {
                "Map time (ms)": round(result.map_time_cpp * 1e3, 3),
                "Data-local tasks": f"{result.local_fraction_cpp:.0%}",
            },
        ),
        harness.Row(
            "CIF default placement",
            {
                "Map time (ms)": round(result.map_time_default * 1e3, 3),
                "Data-local tasks": f"{result.local_fraction_default:.0%}",
            },
        ),
    ]
    table = harness.format_table(
        "Section 6.4 - impact of co-location",
        ["Map time (ms)", "Data-local tasks"],
        rows,
    )
    return table + f"\nCPP speedup: {result.speedup:.1f}x (paper: 5.1x)"


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()
