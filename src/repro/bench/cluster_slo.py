"""Monitoring-overhead benchmark: the observer must not perturb.

The acceptance experiment for the continuous-monitoring layer: draw
one seeded traffic trace (the same 3-tenant mix as
:mod:`repro.bench.cluster_load`, whose sample profile declares
per-tenant SLOs) and run it twice under the fair-share policy — once
bare, once with the full :class:`~repro.obs.alerts.ClusterMonitor`
attached (time-series store folding every event, SLO evaluation and
burn-rate alerting on every watermark step).

Because the monitor is strictly an event-bus observer, the simulated
timeline must be **identical** in both runs: the headline
``ratio.monitoring_efficiency`` (bare makespan over monitored
makespan) is gated at exactly 1.0, and the folded store must reconcile
exactly — zero tolerance — against the monitored run's
:class:`~repro.cluster.report.ClusterReport` per-tenant percentiles.
The alert-transition and series counts pin the rule engine's output so
a change in alerting behaviour shows up as a bench diff, not a silent
drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.report import ClusterReport
from repro.cluster.traffic import TrafficProfile, run_traffic, sample_profile
from repro.obs import EventBus, MetricRegistry, NULL_TRACER, Observability
from repro.obs.alerts import ClusterMonitor
from repro.obs.slo import SloStatus
from repro.obs.tsdb import TimeSeriesStore, reconcile_tsdb

VARIANTS = ("bare", "monitored")


@dataclass
class ClusterSloResult:
    """Bare vs monitored runs of one seeded SLO-declaring trace."""

    profile: TrafficProfile
    reports: Dict[str, ClusterReport] = field(default_factory=dict)
    store: Optional[TimeSeriesStore] = None
    statuses: List[SloStatus] = field(default_factory=list)
    mismatches: List[str] = field(default_factory=list)

    @property
    def monitoring_efficiency(self) -> float:
        """Bare makespan over monitored — exactly 1.0 when the monitor
        is the pure observer it claims to be."""
        monitored = self.reports["monitored"].makespan
        if not monitored:
            return 1.0
        return self.reports["bare"].makespan / monitored

    @property
    def alert_transitions(self) -> int:
        return len(self.store.alerts) if self.store is not None else 0

    @property
    def firing_transitions(self) -> int:
        if self.store is None:
            return 0
        return sum(
            1 for a in self.store.alerts if a.get("transition") == "firing"
        )


def run(
    duration: float = 1.0,
    seed: int = 20110401,
    profile: Optional[TrafficProfile] = None,
) -> ClusterSloResult:
    """Run the sample load bare and under the continuous monitor."""
    if profile is None:
        profile = sample_profile()
        profile.duration = duration
        profile.seed = seed
    result = ClusterSloResult(profile=profile)
    result.reports["bare"] = run_traffic(profile, policy="fair")

    policy = profile.cluster_policy("fair")
    bus = EventBus()
    monitor = ClusterMonitor.for_policy(policy).attach(bus)
    obs = Observability(NULL_TRACER, MetricRegistry(), enabled=True, bus=bus)
    result.reports["monitored"] = run_traffic(
        profile, policy="fair", obs=obs,
    )
    result.store = monitor.store
    result.statuses = monitor.statuses()
    result.mismatches = reconcile_tsdb(
        monitor.store, result.reports["monitored"]
    )
    return result


def format_table(result: ClusterSloResult) -> str:
    from repro.obs.alerts import render_alert_timeline
    from repro.obs.slo import render_slo_table

    lines = []
    for variant in VARIANTS:
        lines.append(f"== {variant} ==")
        lines.append(result.reports[variant].render())
        lines.append("")
    lines.append(render_slo_table(result.statuses))
    lines.append("")
    lines.append(render_alert_timeline(
        result.store.alerts if result.store is not None else []
    ))
    lines.append("")
    lines.append(
        f"monitoring efficiency (bare/monitored makespan) = "
        f"{result.monitoring_efficiency:.4f}x"
    )
    series = len(result.store) if result.store is not None else 0
    lines.append(
        f"store: {series} series, {result.alert_transitions} alert "
        f"transition(s), {len(result.mismatches)} reconcile mismatch(es)"
    )
    return "\n".join(lines)
