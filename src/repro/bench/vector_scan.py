"""Wall-clock benchmark for the vectorized scan hot path (Fig 10).

Every other benchmark in this package reports *simulated* cost — the
deterministic arithmetic of :mod:`repro.sim.cost`.  This one is
different: it times the **real Python wall clock** of the Fig-10
selectivity scan under both execution engines, because the vectorized
batch layer exists precisely to make the reproduction itself faster
without changing a single simulated charge.

Four legs, all computing the identical aggregate over the identical
data:

- ``scalar_eager``    — record-at-a-time over plain CIF (the classic
  reference scan, the paper's "CIF" line in Figure 10),
- ``vectorized_eager`` — batched frames over the same plain CIF files,
- ``scalar_lazy``     — record-at-a-time over skip-list CIF-SL,
- ``vectorized_lazy`` — batched frames + selection vectors + late
  materialization over CIF-SL (the full scan hot path this engine
  was built for; the paper's "CIF-SL" line, vectorized).

The **headline speedup** pairs the two ends of that spectrum —
``scalar_eager / vectorized_lazy`` — mirroring the paper's own Fig-10
framing (CIF vs CIF-SL on the same low-selectivity query), amplified
by batch execution.  The same-layout ratios are reported too, and the
differential layer separately proves each pairing charge-identical.

Wall time is machine-dependent, so raw milliseconds are exported under
the ``wall.*`` metric prefix, which the regression checker records but
never gates.  What *is* gated are deterministic facts about the run:

- ``count.speedup_floor_met`` — headline speedup >= 5x,
- ``count.same_layout_floor_met`` — vectorized beats scalar by >= 1.5x
  on both the eager and the lazy layout,
- ``count.reconcile_mismatches`` — zero-tolerance metric reconcile
  between the scalar and vectorized engines on both layouts,
- ``count.answer`` / ``count.matches`` — the query's logical result,
- ``time.simulated.*`` — the simulated task time of each leg (the
  scalar/vectorized pairs are byte-identical by construction).

Timing uses min-of-reps: the minimum over ``reps`` repetitions is the
least noisy estimator of the true cost on a shared machine (first-rep
import and allocator warm-up never pollute it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

from repro.bench import harness
from repro.bench.fig10_selectivity import _dataset, aggregate_metrics
from repro.core import ColumnSpec, write_dataset
from repro.core.vector import reconcile_metrics
from repro.obs import OperatorProfiler, reconcile_profiles
from repro.workloads.micro import micro_schema

#: headline floor: vectorized CIF-SL must beat the scalar eager CIF
#: reference scan by at least this factor on the low-selectivity query.
SPEEDUP_FLOOR = 5.0

#: same-layout floor: on each layout, vectorized must beat scalar by
#: at least this factor (measured ~3x; the slack absorbs CI noise).
SAME_LAYOUT_FLOOR = 1.5

_LEGS = (
    ("scalar_eager", "/vs/cif", False, "scalar"),
    ("vectorized_eager", "/vs/cif", False, "vectorized"),
    ("scalar_lazy", "/vs/sl", True, "scalar"),
    ("vectorized_lazy", "/vs/sl", True, "vectorized"),
)


@dataclass
class VectorScanResult:
    records: int
    selectivity: float
    reps: int
    #: leg -> min-of-reps wall milliseconds
    wall_ms: Dict[str, float] = field(default_factory=dict)
    #: leg -> simulated task seconds (deterministic)
    simulated: Dict[str, float] = field(default_factory=dict)
    #: metric reconcile failures across both layouts (must be empty)
    mismatches: List[str] = field(default_factory=list)
    #: operator-profile reconcile failures across both layouts
    profile_mismatches: List[str] = field(default_factory=list)
    #: leg -> {operator -> stats dict} from the profiled rep
    profiles: Dict[str, Dict[str, dict]] = field(default_factory=dict)
    answer: int = 0
    matches: int = 0

    @property
    def speedup(self) -> float:
        """Headline: scalar eager CIF over vectorized lazy CIF-SL."""
        return self.wall_ms["scalar_eager"] / self.wall_ms["vectorized_lazy"]

    @property
    def speedup_eager(self) -> float:
        return self.wall_ms["scalar_eager"] / self.wall_ms["vectorized_eager"]

    @property
    def speedup_lazy(self) -> float:
        return self.wall_ms["scalar_lazy"] / self.wall_ms["vectorized_lazy"]


def run(
    records: int = 3000, selectivity: float = 0.05, reps: int = 3,
    seed: int = 10,
) -> VectorScanResult:
    result = VectorScanResult(
        records=records, selectivity=selectivity, reps=reps
    )
    fs = harness.single_node_fs()
    data = _dataset(records, selectivity, seed=seed)
    schema = micro_schema()
    write_dataset(
        fs, "/vs/cif", schema, data, split_bytes=harness.MICRO_SPLIT_BYTES,
    )
    write_dataset(
        fs, "/vs/sl", schema, data,
        default_spec=ColumnSpec("skiplist"),
        split_bytes=harness.MICRO_SPLIT_BYTES,
    )
    answers = {}
    metrics_by_leg = {}
    profiler_by_leg = {}
    for leg, dataset, lazy, execution in _LEGS:
        best = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            metrics, total, matches = aggregate_metrics(
                fs, dataset, lazy, execution
            )
            best = min(best, time.perf_counter() - start)
        result.wall_ms[leg] = best * 1000.0
        result.simulated[leg] = metrics.task_time
        answers[leg] = (total, matches)
        metrics_by_leg[leg] = metrics
        # One extra *profiled* rep per leg, outside the timed loop so
        # the operator hooks never pollute the wall numbers.
        profiler = OperatorProfiler(execution, meta={"leg": leg})
        aggregate_metrics(fs, dataset, lazy, execution, profiler=profiler)
        profiler_by_leg[leg] = profiler
        result.profiles[leg] = {
            op: stats.as_dict() for op, stats in profiler.stats.items()
        }
    if len(set(answers.values())) != 1:
        raise AssertionError(f"legs disagree on the answer: {answers}")
    result.answer, result.matches = answers["scalar_eager"]
    for layout in ("eager", "lazy"):
        for line in reconcile_metrics(
            metrics_by_leg[f"scalar_{layout}"],
            metrics_by_leg[f"vectorized_{layout}"],
        ):
            result.mismatches.append(f"{layout}: {line}")
        for line in reconcile_profiles(
            profiler_by_leg[f"scalar_{layout}"],
            profiler_by_leg[f"vectorized_{layout}"],
        ):
            result.profile_mismatches.append(f"{layout}: {line}")
    return result


def format_table(result: VectorScanResult) -> str:
    headers = ["wall ms", "simulated s"]
    rows = [
        harness.Row(leg, {
            "wall ms": round(result.wall_ms[leg], 2),
            "simulated s": round(result.simulated[leg], 6),
        })
        for leg, _, _, _ in _LEGS
    ]
    table = harness.format_table(
        f"Vectorized scan wall clock ({result.records} records, "
        f"{result.selectivity:.0%} selectivity, min of {result.reps})",
        headers,
        rows,
    )
    return (
        f"{table}\n"
        f"headline speedup (scalar eager / vectorized lazy): "
        f"{result.speedup:.2f}x  "
        f"[eager {result.speedup_eager:.2f}x, "
        f"lazy {result.speedup_lazy:.2f}x]"
    )


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()
