"""Figure 11 / Appendix B.5: CIF and RCFile as record width grows.

Datasets of 20, 40 and 80 string columns (30 chars each), roughly equal
total size, scanned with SEQ, and with CIF/RCFile projecting 1 column,
10% of the columns, or all columns.  RCFile uses the 16 MB (scaled)
row-group setting, as in the paper.

Reported metric: effective read bandwidth — bytes fetched from disk per
second of task time.

Paper shape targets:
- CIF beats RCFile whenever a small number of columns is projected,
- single-column bandwidth stays stable for CIF as width grows but
  degrades for RCFile (per-column chunks shrink, so row-group overheads
  amortize over fewer records),
- CIF's all-columns overhead relative to SEQ grows with width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.bench import harness
from repro.core import ColumnInputFormat, write_dataset
from repro.formats.rcfile import RCFileInputFormat, write_rcfile
from repro.formats.sequence_file import SequenceFileInputFormat, write_sequence_file
from repro.sim.metrics import Metrics
from repro.workloads.wide import column_names, wide_records, wide_schema

WIDTHS = (20, 40, 80)
SERIES = ("SEQ", "CIF_1", "CIF_10%", "CIF_all", "RCFile_1", "RCFile_10%", "RCFile_all")


def _bandwidth(metrics: Metrics) -> float:
    return metrics.total_bytes_read / metrics.task_time / 1e6


@dataclass
class Fig11Result:
    total_bytes: int
    #: bandwidth[series][width] -> MB/s
    bandwidth: Dict[str, Dict[int, float]] = field(default_factory=dict)


def run(total_bytes: int = 6 * 1024 * 1024) -> Fig11Result:
    result = Fig11Result(total_bytes=total_bytes)
    for width in WIDTHS:
        record_bytes = width * 31
        n = max(200, total_bytes // record_bytes)
        fs = harness.single_node_fs()
        schema = wide_schema(width)
        data = list(wide_records(width, n))
        write_sequence_file(fs, "/f11/seq", schema, data)
        write_dataset(
            fs, "/f11/cif", schema, data,
            split_bytes=harness.MICRO_SPLIT_BYTES,
        )
        write_rcfile(
            fs, "/f11/rc", schema, data,
            row_group_bytes=harness.MICRO_ROW_GROUP * 4,  # the 16 MB setting
        )
        names = column_names(width)
        projections = {
            "_1": [names[0]],
            "_10%": names[: max(1, width // 10)],
            "_all": None,
        }
        seq_metrics = harness.scan(fs, SequenceFileInputFormat("/f11/seq"))
        result.bandwidth.setdefault("SEQ", {})[width] = _bandwidth(seq_metrics)
        for suffix, columns in projections.items():
            cif = harness.scan(
                fs, ColumnInputFormat("/f11/cif", columns=columns, lazy=False)
            )
            rc = harness.scan(
                fs, RCFileInputFormat("/f11/rc", columns=columns)
            )
            result.bandwidth.setdefault(f"CIF{suffix}", {})[width] = (
                _bandwidth(cif)
            )
            result.bandwidth.setdefault(f"RCFile{suffix}", {})[width] = (
                _bandwidth(rc)
            )
    return result


def format_table(result: Fig11Result) -> str:
    headers = [f"{w} cols" for w in WIDTHS]
    rows: List[harness.Row] = []
    for series, by_width in result.bandwidth.items():
        rows.append(
            harness.Row(
                series,
                {h: round(by_width[w], 2) for h, w in zip(headers, WIDTHS)},
            )
        )
    return harness.format_table(
        "Figure 11 - read bandwidth (MB/s) vs number of columns",
        headers,
        rows,
    )


def format_chart(result: Fig11Result) -> str:
    from repro.bench.ascii_plot import line_chart

    series = {
        name: {float(w): bw for w, bw in by_width.items()}
        for name, by_width in result.bandwidth.items()
    }
    return line_chart(
        series,
        title="Figure 11 - read bandwidth vs record width",
        x_label="columns",
        y_label="MB/s",
        height=14,
    )


def main() -> None:
    result = run()
    print(format_table(result))
    print()
    print(format_chart(result))


if __name__ == "__main__":
    main()
