"""Figure 10 / Appendix B.4: lazy materialization benefit vs selectivity.

The job aggregates the value under a given key of the map-typed column
for every record whose string column matches a pattern, at predicate
selectivities from 0% to 100%.  ``CIF`` uses eager records over plain
column files; ``CIF-SL`` uses lazy records over skip-list files.

Paper shape targets:
- at low selectivity CIF-SL is clearly faster (unreferenced map values
  are neither read nor deserialized),
- as selectivity approaches 100% CIF-SL converges to CIF,
- CIF-SL's overhead at 100% selectivity is minor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.bench import harness
from repro.core import ColumnInputFormat, ColumnSpec, write_dataset
from repro.serde.record import Record
from repro.workloads.micro import micro_records, micro_schema

PATTERN = "=HIT="
MAP_KEY = "kk"
SELECTIVITIES = (0.0, 0.05, 0.2, 0.5, 0.8, 1.0)


def _dataset(records: int, selectivity: float, seed: int = 10):
    """Microbenchmark records with ``selectivity`` of str0 matching."""
    rng = random.Random(seed)
    out: List[Record] = []
    for record in micro_records(records, seed=seed):
        if rng.random() < selectivity:
            record.put("str0", record.get("str0")[:10] + PATTERN)
        attrs = dict(record.get("attrs"))
        attrs[MAP_KEY] = rng.randint(0, 100)  # the aggregated key
        record.put("attrs", attrs)
        out.append(record)
    return out


def _aggregate(
    fs, dataset: str, lazy: bool, execution: "str | None" = None
) -> "tuple[float, int, int]":
    metrics, total, matches = aggregate_metrics(fs, dataset, lazy, execution)
    return metrics.task_time, total, matches


def aggregate_metrics(
    fs, dataset: str, lazy: bool, execution: "str | None" = None,
    profiler=None,
):
    """The Fig-10 aggregation; returns ``(Metrics, sum, match_count)``.

    Both executions compute the identical answer and charge identical
    simulated cost; the vectorized path pushes the pattern filter down
    as a selection kernel and folds the surviving map values.

    When an :class:`~repro.obs.OperatorProfiler` is passed, it is
    installed for the scan and finished before returning; both branches
    mark operator boundaries at logically identical points so the two
    engines' profiles reconcile exactly on rows and cells.
    """
    from repro.core.vector import resolve_execution
    from repro.obs import NULL_PROFILER

    execution = resolve_execution(execution)
    fmt = ColumnInputFormat(
        dataset, columns=["str0", "attrs"], lazy=lazy, execution=execution
    )
    ctx = harness.make_context(fs)
    if profiler is None:
        profiler = NULL_PROFILER
    else:
        ctx.profiler = profiler.bind(ctx.metrics).install()
    total = 0
    matches = 0
    try:
        if execution == "vectorized":
            from repro.core.vector import fold_aggregate
            from repro.query.aggregates import sum_
            from repro.query.expr import col

            fmt.set_filter(col("str0").contains(PATTERN))
            folder = sum_(col("attrs"))
            for split in fmt.get_splits(fs, fs.cluster):
                reader = fmt.open_reader(fs, split, ctx)
                profiler.switch("scan")
                while True:
                    frame = reader.read_batch()
                    if frame is None:
                        break
                    survivors = frame.selection
                    n = len(survivors)
                    profiler.switch("materialize")
                    profiler.add_rows("materialize", n, n)
                    values = [
                        frame.get_value("attrs", i)[MAP_KEY]
                        for i in survivors
                    ]
                    profiler.switch("aggregate")
                    profiler.add_rows("aggregate", n, n)
                    total = fold_aggregate(folder, values, total)
                    matches += n
                    profiler.switch("scan")
        else:
            for split in fmt.get_splits(fs, fs.cluster):
                reader = fmt.open_reader(fs, split, ctx)
                profiler.switch("scan")
                for _, record in reader:
                    profiler.switch("filter")
                    text = record.get("str0")
                    ctx.charge_predicate(text)
                    matched = PATTERN in text
                    profiler.add_rows("filter", 1, 1 if matched else 0)
                    if matched:
                        profiler.switch("materialize")
                        profiler.add_rows("materialize", 1, 1)
                        value = record.get("attrs")[MAP_KEY]
                        profiler.switch("aggregate")
                        profiler.add_rows("aggregate", 1, 1)
                        total += value
                        matches += 1
                    profiler.switch("scan")
    finally:
        profiler.finish(ctx.obs)
    return ctx.metrics, total, matches


@dataclass
class Fig10Result:
    records: int
    #: times[layout][selectivity] -> simulated seconds
    times: Dict[str, Dict[float, float]] = field(default_factory=dict)
    #: sums agree between layouts (correctness cross-check)
    sums: Dict[float, int] = field(default_factory=dict)


def run(records: int = 10000) -> Fig10Result:
    result = Fig10Result(records=records)
    for selectivity in SELECTIVITIES:
        fs = harness.single_node_fs()
        data = _dataset(records, selectivity)
        schema = micro_schema()
        write_dataset(
            fs, "/f10/cif", schema, data,
            split_bytes=harness.MICRO_SPLIT_BYTES,
        )
        write_dataset(
            fs, "/f10/sl", schema, data,
            default_spec=ColumnSpec("skiplist"),
            split_bytes=harness.MICRO_SPLIT_BYTES,
        )
        t_cif, sum_cif, _ = _aggregate(fs, "/f10/cif", lazy=False)
        t_sl, sum_sl, _ = _aggregate(fs, "/f10/sl", lazy=True)
        if sum_cif != sum_sl:
            raise AssertionError(
                f"CIF and CIF-SL disagree at selectivity {selectivity}"
            )
        result.times.setdefault("CIF", {})[selectivity] = t_cif
        result.times.setdefault("CIF-SL", {})[selectivity] = t_sl
        result.sums[selectivity] = sum_cif
    return result


def format_table(result: Fig10Result) -> str:
    headers = [f"{s:.0%}" for s in SELECTIVITIES]
    rows = [
        harness.Row(
            layout,
            {h: round(times[s], 4) for h, s in zip(headers, SELECTIVITIES)},
        )
        for layout, times in result.times.items()
    ]
    return harness.format_table(
        f"Figure 10 - aggregation time vs selectivity "
        f"(simulated seconds, {result.records} records)",
        headers,
        rows,
    )


def format_chart(result: Fig10Result) -> str:
    from repro.bench.ascii_plot import line_chart

    return line_chart(
        result.times,
        title="Figure 10 - lazy materialization benefit vs selectivity",
        x_label="selectivity",
        y_label="seconds (simulated)",
        height=12,
    )


def main() -> None:
    result = run()
    print(format_table(result))
    print()
    print(format_chart(result))


if __name__ == "__main__":
    main()
