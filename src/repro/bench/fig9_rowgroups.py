"""Figure 9 / Appendix B.2: tuning the RCFile row-group size.

Scans the Section 6.2 microbenchmark dataset with RCFile at three
row-group sizes (the paper's 1 MB / 4 MB / 16 MB, scaled) against CIF,
for the same projections as Figure 7.

Paper shape targets:
- larger row groups improve RCFile's I/O elimination (fewer bytes read
  for narrow projections) but never reach CIF,
- the single-integer scan is RCFile's worst case at every setting,
- CIF needs no tuning parameter and beats every RCFile configuration
  on narrow projections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.bench import harness
from repro.core import ColumnInputFormat, write_dataset
from repro.formats.rcfile import RCFileInputFormat, write_rcfile
from repro.workloads.micro import micro_records, micro_schema

#: The paper's 1/4/16 MB row groups, scaled with the readahead window.
ROW_GROUPS = {
    "1M RCFile": harness.MICRO_ROW_GROUP // 4,
    "4M RCFile": harness.MICRO_ROW_GROUP,
    "16M RCFile": harness.MICRO_ROW_GROUP * 4,
}

PROJECTIONS = {
    "AllColumns": None,
    "1 Integer": ["int0"],
    "1 String": ["str0"],
    "1 Map": ["attrs"],
    "1 String+1 Map": ["str0", "attrs"],
}


@dataclass
class Fig9Result:
    records: int
    times: Dict[str, Dict[str, float]] = field(default_factory=dict)
    bytes_read: Dict[str, Dict[str, int]] = field(default_factory=dict)


def run(records: int = 20000) -> Fig9Result:
    fs = harness.single_node_fs()
    schema = micro_schema()
    data = list(micro_records(records))
    write_dataset(
        fs, "/fig9/cif", schema, data, split_bytes=harness.MICRO_SPLIT_BYTES
    )
    for label, row_group in ROW_GROUPS.items():
        write_rcfile(
            fs, f"/fig9/{label}", schema, data, row_group_bytes=row_group
        )

    result = Fig9Result(records=records)
    for proj_name, columns in PROJECTIONS.items():
        metrics = harness.scan(
            fs, ColumnInputFormat("/fig9/cif", columns=columns, lazy=False)
        )
        result.times.setdefault("CIF", {})[proj_name] = metrics.task_time
        result.bytes_read.setdefault("CIF", {})[proj_name] = (
            metrics.total_bytes_read
        )
        for label in ROW_GROUPS:
            metrics = harness.scan(
                fs, RCFileInputFormat(f"/fig9/{label}", columns=columns)
            )
            result.times.setdefault(label, {})[proj_name] = metrics.task_time
            result.bytes_read.setdefault(label, {})[proj_name] = (
                metrics.total_bytes_read
            )
    return result


def format_table(result: Fig9Result) -> str:
    headers = list(PROJECTIONS)
    rows = [
        harness.Row(fmt, {h: round(times[h], 4) for h in headers})
        for fmt, times in result.times.items()
    ]
    table = harness.format_table(
        f"Figure 9 - RCFile row-group tuning vs CIF "
        f"(simulated seconds, {result.records} records)",
        headers,
        rows,
    )
    byte_rows = [
        harness.Row(fmt, {h: reads[h] for h in headers})
        for fmt, reads in result.bytes_read.items()
    ]
    return table + "\n\n" + harness.format_table(
        "Bytes read per scan", headers, byte_rows
    )


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()
