"""Benchmark regression pipeline: canonical ``BENCH_*.json`` + checks.

Every benchmark scenario (one per ``benchmarks/bench_*.py`` module)
gets an entry in :data:`SCENARIOS` pairing a runner at **smoke size**
with an extractor that flattens its result dataclass into a canonical
metric dict.  ``repro bench run`` serializes those as
``BENCH_<name>.json``; ``repro bench check`` re-runs (or loads) fresh
results and compares them against committed baselines with noise
tolerances, failing on any regression.

Because every cost in the reproduction is *simulated* (seeks, transfer,
CPU are arithmetic over the cost model, not wall time), the numbers are
deterministic across machines and Python versions — which is what makes
committing baselines and comparing in CI sound.

Metric-key conventions (direction is encoded in the key prefix):

- ``time.*``, ``bytes.*``, ``seeks.*`` — simulated seconds / bytes
  moved; **lower is better**, growth beyond tolerance is a regression.
- ``ratio.*``, ``bandwidth.*``, ``fraction.*`` — paper-headline ratios
  (oriented so higher = the column-store advantage the paper claims),
  scan bandwidth, locality fractions; **higher is better**.
- ``count.*`` — logical results (records scanned, query answers);
  compared **exactly**, any change is a regression (it means the
  reproduction's *answers* changed, not just its speed).
- ``wall.*`` — real wall-clock milliseconds/ratios (the one exception
  to "everything is simulated": the vectorized-engine benchmark times
  actual Python execution).  Machine-dependent, so these are
  **recorded but never gated**; the deterministic gate for wall-time
  scenarios is a ``count.*_floor_met`` flag computed at run time.

File schema (``BENCH_<name>.json``)::

    {"benchmark": "<name>", "schema_version": 1,
     "params": {...smoke-size kwargs...},
     "metrics": {"<key>": <number>, ...}}

See ``docs/benchmarking.md`` for the baseline-update workflow.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

SCHEMA_VERSION = 1

#: default relative noise tolerance for directional (float) metrics
DEFAULT_REL_TOL = 0.02

_LOWER_BETTER = ("time.", "bytes.", "seeks.")
_HIGHER_BETTER = ("ratio.", "bandwidth.", "fraction.")
_EXACT = ("count.",)
_INFO = ("wall.",)


def direction_of(key: str) -> str:
    """``lower`` | ``higher`` | ``exact`` | ``info`` from the prefix."""
    if key.startswith(_LOWER_BETTER):
        return "lower"
    if key.startswith(_HIGHER_BETTER):
        return "higher"
    if key.startswith(_INFO):
        return "info"
    if key.startswith(_EXACT):
        return "exact"
    return "exact"


def _slug(value) -> str:
    """Canonical metric-key segment: lowercase, ``_``-separated."""
    text = str(value).strip().lower().replace("%", "pct")
    text = re.sub(r"[^a-z0-9]+", "_", text)
    return text.strip("_")


def _fraction_slug(fraction: float) -> str:
    return f"{int(round(fraction * 100))}pct"


# ---------------------------------------------------------------------------
# scenario registry


@dataclass
class Scenario:
    """One benchmark scenario: a smoke-size runner plus an extractor."""

    name: str
    runner: Callable[..., object]
    params: Dict[str, object]
    extract: Callable[[object], Dict[str, float]]
    description: str = ""

    def run(self):
        return self.runner(**self.params)


def _extract_fig7(result) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for fmt, by_proj in sorted(result.times.items()):
        for proj, seconds in sorted(by_proj.items()):
            out[f"time.{_slug(fmt)}.{_slug(proj)}"] = seconds
            out[f"bytes.{_slug(fmt)}.{_slug(proj)}"] = (
                result.bytes_read[fmt][proj]
            )
    out["ratio.txt_over_seq"] = (
        result.time("TXT") / result.time("SEQ")
    )
    out["ratio.seq_over_cif_1int"] = (
        result.time("SEQ") / result.time("CIF", "1 Integer")
    )
    out["ratio.rcfile_over_cif_1int_bytes"] = (
        result.bytes_read["RCFile"]["1 Integer"]
        / result.bytes_read["CIF"]["1 Integer"]
    )
    return out


def _extract_fig8(result) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for profile, by_type in sorted(result.bandwidth.items()):
        for typed, series in sorted(by_type.items()):
            for fraction, mbps in sorted(series.items()):
                key = (
                    f"bandwidth.{_slug(profile)}.{_slug(typed)}"
                    f".{_fraction_slug(fraction)}"
                )
                out[key] = mbps
    out["ratio.native_over_managed_integers"] = (
        result.bandwidth["native"]["integers"][1.0]
        / result.bandwidth["managed"]["integers"][1.0]
    )
    return out


def _extract_fig9(result) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for fmt, by_proj in sorted(result.times.items()):
        for proj, seconds in sorted(by_proj.items()):
            out[f"time.{_slug(fmt)}.{_slug(proj)}"] = seconds
            out[f"bytes.{_slug(fmt)}.{_slug(proj)}"] = (
                result.bytes_read[fmt][proj]
            )
    out["ratio.rc4m_over_cif_1int"] = (
        result.times["4M RCFile"]["1 Integer"]
        / result.times["CIF"]["1 Integer"]
    )
    return out


def _extract_fig10(result) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for layout, by_sel in sorted(result.times.items()):
        for selectivity, seconds in sorted(by_sel.items()):
            key = f"time.{_slug(layout)}.{_fraction_slug(selectivity)}"
            out[key] = seconds
    for selectivity, answer in sorted(result.sums.items()):
        out[f"count.answer.{_fraction_slug(selectivity)}"] = answer
    out["ratio.cif_over_sl_low_selectivity"] = (
        result.times["CIF"][0.05] / result.times["CIF-SL"][0.05]
    )
    return out


def _extract_fig11(result) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for series, by_width in sorted(result.bandwidth.items()):
        for width, mbps in sorted(by_width.items()):
            out[f"bandwidth.{_slug(series)}.w{width}"] = mbps
    out["ratio.cif1_over_seq_w80"] = (
        result.bandwidth["CIF_1"][80] / result.bandwidth["SEQ"][80]
    )
    return out


def _extract_table1(result) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for row in result.rows:
        layout = _slug(row.layout)
        out[f"bytes.read_mb.{layout}"] = row.data_read_mb
        out[f"time.map.{layout}"] = row.map_time
        out[f"time.total.{layout}"] = row.total_time
    out["ratio.seq_over_cif_map"] = (
        result.row("SEQ-uncomp").map_time / result.row("CIF").map_time
    )
    return out


def _extract_table2(result) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for layout, seconds in sorted(result.load_times.items()):
        out[f"time.load.{_slug(layout)}"] = seconds
        out[f"bytes.written.{_slug(layout)}"] = (
            result.bytes_written[layout]
        )
    return out


def _extract_colocation(result) -> Dict[str, float]:
    return {
        "time.map.cpp": result.map_time_cpp,
        "time.map.default": result.map_time_default,
        "fraction.local.cpp": result.local_fraction_cpp,
        "fraction.local.default": result.local_fraction_default,
        "ratio.colocation_speedup": result.speedup,
    }


def _extract_addcolumn(result) -> Dict[str, float]:
    return {
        "bytes.cif": result.cif_bytes,
        "bytes.rcfile": result.rcfile_bytes,
        "time.cif": result.cif_time,
        "time.rcfile": result.rcfile_time,
        "ratio.rcfile_over_cif_bytes": result.io_ratio,
    }


def _extract_buffers(result) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for buffer_label, by_fmt in sorted(result.single_int.items()):
        for fmt, seconds in sorted(by_fmt.items()):
            out[f"time.1int.{_slug(buffer_label)}.{_slug(fmt)}"] = seconds
    for buffer_label, by_fmt in sorted(result.all_columns.items()):
        for fmt, seconds in sorted(by_fmt.items()):
            out[f"time.all.{_slug(buffer_label)}.{_slug(fmt)}"] = seconds
    for buffer_label, nbytes in sorted(
        result.rcfile_bytes_single_int.items()
    ):
        out[f"bytes.rcfile_1int.{_slug(buffer_label)}"] = nbytes
    return out


def _extract_encodings(result) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for row in result.rows:
        key = f"{_slug(row.column)}.{_slug(row.layout)}"
        out[f"bytes.{key}"] = row.file_bytes
        out[f"time.full.{key}"] = row.full_scan
        out[f"time.selective.{key}"] = row.selective_scan
    return out


def _extract_pruning(result) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for layout, by_fraction in sorted(result.bytes_read.items()):
        for fraction, nbytes in sorted(by_fraction.items()):
            out[f"bytes.{_slug(layout)}.{_fraction_slug(fraction)}"] = nbytes
    for layout, by_fraction in sorted(result.records_scanned.items()):
        for fraction, n in sorted(by_fraction.items()):
            key = f"count.scanned.{_slug(layout)}.{_fraction_slug(fraction)}"
            out[key] = n
    for fraction, answer in sorted(result.answers.items()):
        out[f"count.answer.{_fraction_slug(fraction)}"] = answer
    return out


def _run_scale_stability(small: int = 1000, large: int = 4000):
    from repro.bench import fig7_microbenchmark as fig7

    return {"small": fig7.run(records=small), "large": fig7.run(records=large)}


def _extract_scale_stability(result) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for size, res in sorted(result.items()):
        out[f"ratio.txt_over_seq.{size}"] = (
            res.time("TXT") / res.time("SEQ")
        )
        out[f"ratio.seq_over_cif_1int.{size}"] = (
            res.time("SEQ") / res.time("CIF", "1 Integer")
        )
        out[f"ratio.rcfile_over_cif_1int_bytes.{size}"] = (
            res.bytes_read["RCFile"]["1 Integer"]
            / res.bytes_read["CIF"]["1 Integer"]
        )
    return out


def _extract_cluster_load(result) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for policy, report in sorted(result.reports.items()):
        out[f"time.makespan.{policy}"] = report.makespan
        out[f"fraction.slots_busy.{policy}"] = report.utilization
        out[f"count.completed.{policy}"] = len(report.completed)
        out[f"count.rejected.{policy}"] = len(report.rejected)
        out[f"count.failed.{policy}"] = len(report.failed)
        out[f"count.preemptions.{policy}"] = report.preemptions
        for tenant, summary in report.tenant_summaries().items():
            base = f"time.latency.{policy}.{_slug(tenant)}"
            out[f"{base}.p50"] = summary.p50
            out[f"{base}.p95"] = summary.p95
            out[f"{base}.p99"] = summary.p99
    out["ratio.fifo_over_fair_interactive_p95"] = (
        result.interactive_p95_ratio
    )
    return out


def _extract_cluster_recovery(result) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for variant, report in sorted(result.reports.items()):
        out[f"time.makespan.{variant}"] = report.makespan
        out[f"time.interactive_p95.{variant}"] = (
            result.interactive_p95(variant)
        )
        out[f"count.completed.{variant}"] = len(report.completed)
        out[f"count.rejected.{variant}"] = len(report.rejected)
        out[f"count.failed.{variant}"] = len(report.failed)
        out[f"count.speculative_attempts.{variant}"] = (
            report.speculative_attempts
        )
    faulted = result.reports["faulted"]
    out["count.map_output_losses"] = faulted.map_output_losses
    # Oriented so higher = cheaper recovery (1.0 == a free node kill);
    # a drop means the fault-tolerance machinery got more expensive.
    out["ratio.recovery_efficiency"] = 1.0 / result.makespan_overhead
    return out


def _extract_cluster_slo(result) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for variant, report in sorted(result.reports.items()):
        out[f"time.makespan.{variant}"] = report.makespan
        out[f"count.completed.{variant}"] = len(report.completed)
    # The monitor is a pure observer: bare/monitored makespan must be
    # exactly 1.0, and the folded store must reconcile exactly against
    # the monitored report (mismatches gate at 0).
    out["ratio.monitoring_efficiency"] = result.monitoring_efficiency
    out["count.reconcile_mismatches"] = len(result.mismatches)
    out["count.series"] = (
        len(result.store) if result.store is not None else 0
    )
    out["count.alert_transitions"] = result.alert_transitions
    out["count.alerts_firing"] = result.firing_transitions
    for status in result.statuses:
        out[f"fraction.compliance.{status.slo.tenant}"] = status.compliance
    return out


def _extract_vector_scan(result) -> Dict[str, float]:
    from repro.bench.vector_scan import SAME_LAYOUT_FLOOR, SPEEDUP_FLOOR

    out: Dict[str, float] = {}
    for leg, ms in sorted(result.wall_ms.items()):
        out[f"wall.{leg}_ms"] = ms
    out["wall.speedup"] = result.speedup
    out["wall.speedup_eager"] = result.speedup_eager
    out["wall.speedup_lazy"] = result.speedup_lazy
    # The deterministic gates: floors met, answers, zero reconcile
    # mismatches between the scalar and vectorized engines.
    out["count.speedup_floor_met"] = int(result.speedup >= SPEEDUP_FLOOR)
    out["count.same_layout_floor_met"] = int(
        result.speedup_eager >= SAME_LAYOUT_FLOOR
        and result.speedup_lazy >= SAME_LAYOUT_FLOOR
    )
    out["count.reconcile_mismatches"] = len(result.mismatches)
    out["count.profile_reconcile_mismatches"] = len(result.profile_mismatches)
    out["count.answer"] = result.answer
    out["count.matches"] = result.matches
    for leg, seconds in sorted(result.simulated.items()):
        out[f"time.simulated.{leg}"] = seconds
    return out


def _lazy(module: str):
    """Defer the scenario import so ``repro bench --help`` stays fast."""

    def runner(**params):
        import importlib

        return importlib.import_module(f"repro.bench.{module}").run(**params)

    return runner


SCENARIOS: Dict[str, Scenario] = {}


def _register(name, module_or_runner, params, extract, description):
    runner = (
        module_or_runner
        if callable(module_or_runner)
        else _lazy(module_or_runner)
    )
    SCENARIOS[name] = Scenario(name, runner, params, extract, description)


_register(
    "fig7", "fig7_microbenchmark", {"records": 600}, _extract_fig7,
    "single-node scan times/bytes per format and projection",
)
_register(
    "fig8", "fig8_deserialization", {"records": 40, "seed": 8}, _extract_fig8,
    "deserialization bandwidth by type mix and runtime profile",
)
_register(
    "fig9", "fig9_rowgroups", {"records": 600}, _extract_fig9,
    "RCFile row-group size sweep vs CIF",
)
_register(
    "fig10", "fig10_selectivity", {"records": 500}, _extract_fig10,
    "lazy record construction / skip-list selectivity sweep",
)
_register(
    "fig11", "fig11_wide_records", {"total_bytes": 400_000}, _extract_fig11,
    "scan bandwidth vs record width",
)
_register(
    "table1", "table1_crawl",
    {"records": 120, "content_bytes": 2048, "num_nodes": 8}, _extract_table1,
    "crawl workload: data read, map and total times per layout",
)
_register(
    "table2", "table2_load_times", {"records": 500}, _extract_table2,
    "load times and bytes written per target layout",
)
_register(
    "colocation", "colocation", {"records": 60, "content_bytes": 1024},
    _extract_colocation,
    "column placement policy: locality fraction and map-time speedup",
)
_register(
    "addcolumn", "addcolumn_ablation", {"records": 400}, _extract_addcolumn,
    "adding a column after the fact: CIF vs RCFile rewrite cost",
)
_register(
    "buffers", "buffer_ablation", {"records": 400}, _extract_buffers,
    "io-buffer size ablation per format",
)
_register(
    "encodings", "encodings_ablation", {"records": 400}, _extract_encodings,
    "column encoding sweep: file bytes, full and selective scans",
)
_register(
    "pruning", "pruning_ablation", {"records": 500}, _extract_pruning,
    "range-predicate pruning on sorted vs shuffled data",
)
_register(
    "scale_stability", _run_scale_stability, {"small": 1000, "large": 4000},
    _extract_scale_stability,
    "fig7 headline ratios measured at two sizes 4x apart",
)
_register(
    "cluster_load", "cluster_load", {"duration": 1.0, "seed": 20110401},
    _extract_cluster_load,
    "multi-tenant traffic: fair-share+preemption vs FIFO job latency",
)
_register(
    "cluster_recovery", "cluster_recovery",
    {"duration": 1.0, "seed": 20110401, "kill_time": 0.35, "kill_node": 1},
    _extract_cluster_recovery,
    "mid-run node kill: map-output re-execution + speculation overhead",
)
_register(
    "vector_scan", "vector_scan",
    {"records": 3000, "selectivity": 0.05, "reps": 3},
    _extract_vector_scan,
    "vectorized vs scalar scan wall clock on the Fig-10 query",
)
_register(
    "cluster_slo", "cluster_slo",
    {"duration": 1.0, "seed": 20110401},
    _extract_cluster_slo,
    "continuous monitoring overhead: tsdb + SLO/alerting as pure observer",
)


# ---------------------------------------------------------------------------
# running and serializing


def result_filename(name: str) -> str:
    return f"BENCH_{name}.json"


def canonical(name: str, result, params: Dict[str, object]) -> dict:
    """The canonical JSON payload for one scenario result."""
    metrics = SCENARIOS[name].extract(result)
    return {
        "benchmark": name,
        "schema_version": SCHEMA_VERSION,
        "params": dict(params),
        "metrics": {
            key: (
                round(value, 10) if isinstance(value, float) else value
            )
            for key, value in sorted(metrics.items())
        },
    }


def run_scenario(name: str, trace_dir: Optional[str] = None) -> dict:
    """Run one scenario at smoke size and return its canonical payload.

    With ``trace_dir``, the run happens under a
    :class:`~repro.obs.recorder.FlightRecorder` and the JSONL trace is
    written alongside (``BENCH_<name>.trace.jsonl``) — the artifact CI
    uploads when a check fails, so the regression can be diagnosed with
    ``repro perf`` without re-running anything.
    """
    scenario = SCENARIOS[name]
    if trace_dir is None:
        result = scenario.run()
    else:
        from repro.obs import FlightRecorder

        recorder = FlightRecorder(meta={"benchmark": name})
        with recorder.activate():
            with recorder.tracer.span("bench", kind="bench", benchmark=name):
                result = scenario.run()
        os.makedirs(trace_dir, exist_ok=True)
        recorder.report().write_jsonl(
            os.path.join(trace_dir, f"BENCH_{name}.trace.jsonl")
        )
    return canonical(name, result, scenario.params)


def write_result(payload: dict, out_dir: str) -> str:
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, result_filename(payload["benchmark"]))
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_result(path: str) -> dict:
    with open(path) as handle:
        payload = json.load(handle)
    for key in ("benchmark", "metrics"):
        if key not in payload:
            raise ValueError(f"{path} is not a BENCH result: missing {key!r}")
    return payload


def run_all(
    out_dir: str,
    names: Optional[List[str]] = None,
    trace_dir: Optional[str] = None,
    log: Callable[[str], None] = lambda line: None,
) -> List[str]:
    """Run scenarios at smoke size, writing ``BENCH_*.json`` to
    ``out_dir``; returns the written paths."""
    paths = []
    for name in names or sorted(SCENARIOS):
        if name not in SCENARIOS:
            raise KeyError(
                f"unknown scenario {name!r} "
                f"(have: {', '.join(sorted(SCENARIOS))})"
            )
        log(f"bench {name}: running at smoke size {SCENARIOS[name].params}")
        payload = run_scenario(name, trace_dir=trace_dir)
        path = write_result(payload, out_dir)
        log(f"bench {name}: wrote {path} ({len(payload['metrics'])} metrics)")
        paths.append(path)
    return paths


# ---------------------------------------------------------------------------
# comparison


@dataclass
class RegressEntry:
    """One compared metric between baseline and fresh."""

    key: str
    direction: str
    baseline: Optional[float]
    fresh: Optional[float]
    severity: str  # "regression" | "improvement" | "new" | "ok"

    def render(self) -> str:
        if self.baseline is None:
            return f"[new] {self.key}: (no baseline) -> {self.fresh:g}"
        if self.fresh is None:
            return f"[regression] {self.key}: metric disappeared"
        delta = self.fresh - self.baseline
        rel = delta / abs(self.baseline) if self.baseline else float("inf")
        return (
            f"[{self.severity}] {self.key} ({self.direction}-is-better): "
            f"{self.baseline:g} -> {self.fresh:g} ({rel * 100:+.2f}%)"
        )


@dataclass
class ScenarioDiff:
    """Baseline-vs-fresh comparison for one scenario."""

    name: str
    entries: List[RegressEntry] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def regressions(self) -> List[RegressEntry]:
        return [e for e in self.entries if e.severity == "regression"]

    @property
    def ok(self) -> bool:
        return self.error is None and not self.regressions

    def render(self, pal=None) -> str:
        from repro.util.term import PLAIN

        pal = pal if pal is not None else PLAIN
        if self.error:
            return pal.red(f"{self.name}: ERROR — {self.error}")
        compared = len(self.entries)
        notable = [e for e in self.entries if e.severity != "ok"]
        verdict = (
            pal.green("OK") if self.ok else pal.red("REGRESSED")
        )
        header = (
            f"{self.name}: {verdict} "
            f"({compared} metrics, {len(self.regressions)} regression(s))"
        )
        lines = [header]
        for entry in notable:
            lines.append("  " + entry.render())
        return "\n".join(lines)


def compare(
    baseline: dict, fresh: dict, rel_tol: float = DEFAULT_REL_TOL
) -> ScenarioDiff:
    """Compare one fresh payload against its committed baseline.

    ``exact`` metrics must match bit-for-bit; directional metrics may
    drift within ``rel_tol`` of the baseline, and moves *in the good
    direction* beyond tolerance are reported as improvements (worth a
    baseline refresh), never failures.
    """
    name = baseline.get("benchmark", "?")
    diff = ScenarioDiff(name=name)
    if fresh.get("benchmark") != name:
        diff.error = (
            f"comparing different scenarios: baseline={name!r} "
            f"fresh={fresh.get('benchmark')!r}"
        )
        return diff
    if baseline.get("params") != fresh.get("params"):
        diff.error = (
            "smoke-size params changed "
            f"(baseline {baseline.get('params')} vs fresh "
            f"{fresh.get('params')}); re-record the baseline"
        )
        return diff
    base_metrics = baseline.get("metrics", {})
    fresh_metrics = fresh.get("metrics", {})
    for key in sorted(set(base_metrics) | set(fresh_metrics)):
        direction = direction_of(key)
        base = base_metrics.get(key)
        new = fresh_metrics.get(key)
        if base is None:
            severity = "new"
        elif direction == "info":
            # wall-clock numbers vary by machine; record, never gate
            severity = "ok"
        elif new is None:
            severity = "regression"
        elif direction == "exact":
            severity = "ok" if new == base else "regression"
        else:
            band = rel_tol * abs(base)
            if abs(new - base) <= band:
                severity = "ok"
            elif (new > base) == (direction == "lower"):
                severity = "regression"
            else:
                severity = "improvement"
        diff.entries.append(RegressEntry(key, direction, base, new, severity))
    return diff


@dataclass
class CheckReport:
    """Every scenario's diff, plus the overall verdict."""

    diffs: List[ScenarioDiff] = field(default_factory=list)
    rel_tol: float = DEFAULT_REL_TOL

    @property
    def ok(self) -> bool:
        return all(diff.ok for diff in self.diffs)

    def render(self, pal=None, quiet: bool = False) -> str:
        """``pal`` colors the verdicts; ``quiet`` keeps only scenarios
        that have something to say (errors or non-ok metrics)."""
        from repro.util.term import PLAIN

        pal = pal if pal is not None else PLAIN
        lines = [
            f"Benchmark regression check (rel_tol={self.rel_tol:g}, "
            f"{len(self.diffs)} scenario(s))"
        ]
        for diff in self.diffs:
            if quiet and diff.ok and not diff.error and not any(
                entry.severity != "ok" for entry in diff.entries
            ):
                continue
            lines.append(diff.render(pal=pal))
        lines.append(
            "RESULT: " + (
                pal.green("PASS") if self.ok
                else pal.red("FAIL — see regressions above")
            )
        )
        return "\n".join(lines)


def check(
    baseline_dir: str,
    names: Optional[List[str]] = None,
    fresh_dir: Optional[str] = None,
    rel_tol: float = DEFAULT_REL_TOL,
    log: Callable[[str], None] = lambda line: None,
) -> CheckReport:
    """Compare fresh results against the committed baselines.

    Scenarios default to every ``BENCH_*.json`` present in
    ``baseline_dir``.  With ``fresh_dir``, fresh payloads are loaded
    from files written by an earlier ``repro bench run`` (the CI flow:
    run once, check the same files); otherwise each scenario is re-run
    now at smoke size.
    """
    report = CheckReport(rel_tol=rel_tol)
    if names is None:
        names = sorted(
            match.group(1)
            for filename in os.listdir(baseline_dir)
            for match in [re.match(r"BENCH_(\w+)\.json$", filename)]
            if match
        )
        if not names:
            report.diffs.append(ScenarioDiff(
                name="(none)",
                error=f"no BENCH_*.json baselines in {baseline_dir}",
            ))
            return report
    for name in names:
        baseline_path = os.path.join(baseline_dir, result_filename(name))
        try:
            baseline = load_result(baseline_path)
        except (OSError, ValueError) as exc:
            report.diffs.append(ScenarioDiff(name=name, error=str(exc)))
            continue
        try:
            if fresh_dir is not None:
                fresh = load_result(
                    os.path.join(fresh_dir, result_filename(name))
                )
            else:
                log(f"bench {name}: re-running at smoke size")
                fresh = run_scenario(name)
        except (OSError, ValueError, KeyError) as exc:
            report.diffs.append(ScenarioDiff(name=name, error=str(exc)))
            continue
        report.diffs.append(compare(baseline, fresh, rel_tol=rel_tol))
    return report
