"""Experiment harness: one module per table/figure in the paper.

Each module exposes ``run(...) -> <Result>`` returning structured rows
and a ``format_table(result) -> str`` that prints the same rows/series
the paper reports.  The ``benchmarks/`` directory wires these into
pytest-benchmark and asserts the paper's *shape* (who wins, rough
factors, crossovers); EXPERIMENTS.md records paper-vs-measured values.

| Module                     | Paper content                               |
|----------------------------|---------------------------------------------|
| ``fig7_microbenchmark``    | Figure 7: scan-time microbenchmark          |
| ``fig8_deserialization``   | Figure 8: deserialization cost vs fraction  |
| ``fig9_rowgroups``         | Figure 9: RCFile row-group size tuning      |
| ``fig10_selectivity``      | Figure 10: CIF vs CIF-SL vs selectivity     |
| ``fig11_wide_records``     | Figure 11: bandwidth vs record width        |
| ``table1_crawl``           | Table 1: full-cluster crawl job             |
| ``table2_load_times``      | Table 2: load times                         |
| ``colocation``             | Section 6.4: CPP on/off                     |
| ``addcolumn_ablation``     | Section 4.3: add-a-column cost, CIF vs RCFile |
"""
