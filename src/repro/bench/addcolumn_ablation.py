"""Section 4.3 ablation: the cost of adding a column, CIF vs RCFile.

The paper argues this qualitatively: with CIF, adding a derived column
drops one new file into each split-directory; with RCFile, the whole
dataset must be read and every block rewritten.  This ablation measures
both — the I/O each approach performs — on the same dataset.

Shape target: CIF's cost is proportional to the *new column's* size;
RCFile's is proportional to the *whole dataset* (read + rewrite), i.e.
orders of magnitude more for wide records.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench import harness
from repro.core import add_column, write_dataset
from repro.formats.rcfile import add_column_rewrite, write_rcfile
from repro.serde.schema import Schema
from repro.sim.metrics import Metrics
from repro.workloads.micro import micro_records, micro_schema


@dataclass
class AddColumnResult:
    records: int
    cif_bytes: int
    cif_time: float
    rcfile_bytes: int
    rcfile_time: float

    @property
    def io_ratio(self) -> float:
        return self.rcfile_bytes / self.cif_bytes


def run(records: int = 10000) -> AddColumnResult:
    schema = micro_schema()
    data = list(micro_records(records))
    ranks = [float(i % 97) for i in range(records)]

    fs = harness.single_node_fs()
    write_dataset(
        fs, "/ac/cif", schema, data, split_bytes=harness.MICRO_SPLIT_BYTES
    )
    cif_metrics = Metrics()
    add_column(
        fs, "/ac/cif", "rank", Schema.double(), ranks, metrics=cif_metrics
    )

    fs2 = harness.single_node_fs()
    write_rcfile(
        fs2, "/ac/rc", schema, data, row_group_bytes=harness.MICRO_ROW_GROUP
    )
    rc_metrics = Metrics()
    add_column_rewrite(
        fs2, "/ac/rc", "/ac/rc2", "rank", Schema.double(), ranks,
        row_group_bytes=harness.MICRO_ROW_GROUP, metrics=rc_metrics,
    )

    return AddColumnResult(
        records=records,
        cif_bytes=cif_metrics.total_bytes_read + cif_metrics.disk_bytes,
        cif_time=cif_metrics.task_time,
        rcfile_bytes=rc_metrics.total_bytes_read + rc_metrics.disk_bytes,
        rcfile_time=rc_metrics.task_time,
    )


def format_table(result: AddColumnResult) -> str:
    rows = [
        harness.Row(
            "CIF add_column",
            {
                "I/O bytes": result.cif_bytes,
                "Time (s)": round(result.cif_time, 4),
            },
        ),
        harness.Row(
            "RCFile rewrite",
            {
                "I/O bytes": result.rcfile_bytes,
                "Time (s)": round(result.rcfile_time, 4),
            },
        ),
    ]
    table = harness.format_table(
        f"Section 4.3 - adding a derived column ({result.records} records)",
        ["I/O bytes", "Time (s)"],
        rows,
    )
    return table + f"\nRCFile does {result.io_ratio:.0f}x the I/O of CIF"


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()
