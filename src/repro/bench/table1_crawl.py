"""Table 1 / Section 6.3: the full-cluster crawl comparison.

Runs Figure 1's job — find the distinct content-types reported by pages
whose URL contains ``ibm.com/jp`` (~6% selectivity) — over a synthetic
intranet crawl (Figure 2's URLInfo schema) stored in each of the
paper's eleven layouts, on the 40-node / 6-map-slot cluster.

Reported per layout, exactly as in Table 1: data read (MB here, GB in
the paper), map time, map-time speedup vs SEQ-custom, total time, and
total-time speedup.

Paper shape targets (speedups vs SEQ-custom):
- SEQ-uncomp slowest; record/block compression ~1.7x better than
  uncompressed; SEQ-custom the fastest SEQ variant,
- RCFile ~1.1x, RCFile-comp ~3.7x,
- CIF ~60x, driven by ~30x less data read,
- CIF-ZLIB / CIF-LZO no better than plain CIF (decompression CPU eats
  the I/O saving),
- CIF-SL better than CIF-LZO despite reading more data (lazy records),
- CIF-DCSL best overall (~108x map time, ~12.8x total time),
- total-time speedups compressed by the format-independent
  shuffle/sort/reduce phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bench import harness
from repro.core import ColumnInputFormat, ColumnSpec, write_dataset
from repro.formats.rcfile import RCFileInputFormat, write_rcfile
from repro.formats.sequence_file import SequenceFileInputFormat, write_sequence_file
from repro.mapreduce.runner import JobResult, run_job
from repro.sim import calibration
from repro.workloads.crawl import (
    compress_content_column,
    crawl_records,
    crawl_schema,
)
from repro.workloads.jobs import distinct_content_types_job

PROJECTED = ["url", "metadata"]

#: layout name -> (kind, options)
LAYOUTS = [
    "SEQ-uncomp",
    "SEQ-record",
    "SEQ-block",
    "SEQ-custom",
    "RCFile",
    "RCFile-comp",
    "CIF-ZLIB",
    "CIF",
    "CIF-LZO",
    "CIF-SL",
    "CIF-DCSL",
]


@dataclass
class Table1Row:
    layout: str
    data_read_mb: float
    map_time: float
    total_time: float
    map_ratio: float = 0.0
    total_ratio: float = 0.0


@dataclass
class Table1Result:
    records: int
    rows: List[Table1Row] = field(default_factory=list)
    results: Dict[str, JobResult] = field(default_factory=dict)

    def row(self, layout: str) -> Table1Row:
        return next(r for r in self.rows if r.layout == layout)


def _load_all(fs, records, row_group: int, split_bytes: int) -> None:
    schema = crawl_schema()
    write_sequence_file(fs, "/t1/SEQ-uncomp", schema, records)
    write_sequence_file(fs, "/t1/SEQ-record", schema, records, compression="record")
    write_sequence_file(fs, "/t1/SEQ-block", schema, records, compression="block")
    write_sequence_file(
        fs, "/t1/SEQ-custom", schema, list(compress_content_column(records))
    )
    write_rcfile(fs, "/t1/RCFile", schema, records, row_group_bytes=row_group)
    write_rcfile(
        fs, "/t1/RCFile-comp", schema, records,
        row_group_bytes=row_group, codec="zlib",
    )
    # CIF variants: the metadata column's layout varies; everything else
    # is a plain column file (Section 6.3).
    cif_variants = {
        "CIF": None,
        "CIF-ZLIB": ColumnSpec("cblock", codec="zlib", block_bytes=4 * 1024),
        "CIF-LZO": ColumnSpec("cblock", codec="lzo", block_bytes=4 * 1024),
        "CIF-SL": ColumnSpec("skiplist"),
        "CIF-DCSL": ColumnSpec("dcsl"),
    }
    for name, metadata_spec in cif_variants.items():
        specs = {"metadata": metadata_spec} if metadata_spec else None
        write_dataset(
            fs, f"/t1/{name}", schema, records,
            specs=specs, split_bytes=split_bytes,
        )


def _input_format(layout: str):
    if layout.startswith("SEQ"):
        return SequenceFileInputFormat(f"/t1/{layout}")
    if layout.startswith("RCFile"):
        return RCFileInputFormat(f"/t1/{layout}", columns=PROJECTED)
    # Lazy record construction for the skip-list variants, eager for the
    # rest — matching how the paper pairs the techniques.
    lazy = layout in ("CIF-SL", "CIF-DCSL")
    return ColumnInputFormat(f"/t1/{layout}", columns=PROJECTED, lazy=lazy)


def run(
    records: int = 800,
    content_bytes: int = 32768,
    selectivity: float = 0.06,
    use_cpp: bool = True,
    num_nodes: int = 40,
    layouts: Optional[List[str]] = None,
) -> Table1Result:
    fs = harness.cluster_fs(num_nodes=num_nodes, block_size=harness.MICRO_BLOCK)
    if use_cpp:
        fs.use_column_placement()
    data = list(
        crawl_records(records, selectivity=selectivity, content_bytes=content_bytes)
    )
    # Split-directories hold roughly half an HDFS block of data here
    # (the paper's are "typically 64 MB", i.e. one block).
    _load_all(
        fs, data,
        row_group=harness.MICRO_ROW_GROUP,
        split_bytes=harness.MICRO_BLOCK // 2,
    )

    result = Table1Result(records=records)
    for layout in layouts if layouts is not None else LAYOUTS:
        job = distinct_content_types_job(
            _input_format(layout), num_reducers=num_nodes, name=layout
        )
        job_result = run_job(fs, job)
        result.results[layout] = job_result
        # Total time is composed the way the paper's fully-loaded
        # cluster behaves: the map phase's wall clock equals its
        # slot-normalized time (tasks >> slots there, unlike in this
        # scaled-down run where a single fat task would dominate the
        # literal makespan), plus the format-independent reduce phase.
        result.rows.append(
            Table1Row(
                layout=layout,
                data_read_mb=job_result.bytes_read / 1e6,
                map_time=job_result.map_time,
                total_time=job_result.map_time + job_result.reduce_time,
            )
        )
    if "SEQ-custom" in result.results:
        base = result.row("SEQ-custom")
        # The remaining non-map phases (job setup, scheduling, sort)
        # cost the same regardless of storage format; Table 1 shows them
        # as a near-constant total-minus-map gap of ~66 s against a
        # 754 s SEQ-custom map phase.  We add the same *relative*
        # constant, so total-time speedups compress as in the paper.
        overhead = (
            calibration.JOB_OVERHEAD_SECONDS / 754.0
        ) * result.row("SEQ-custom").map_time
        for row in result.rows:
            row.total_time += overhead
        for row in result.rows:
            row.map_ratio = base.map_time / row.map_time if row.map_time else 0
            row.total_ratio = (
                base.total_time / row.total_time if row.total_time else 0
            )
    return result


def format_table(result: Table1Result) -> str:
    headers = ["Data Read (MB)", "Map Time (ms)", "Map Ratio",
               "Total Time (s)", "Total Ratio"]
    rows = [
        harness.Row(
            r.layout,
            {
                "Data Read (MB)": round(r.data_read_mb, 2),
                "Map Time (ms)": round(r.map_time * 1e3, 3),
                "Map Ratio": f"{r.map_ratio:.1f}x",
                "Total Time (s)": round(r.total_time, 3),
                "Total Ratio": f"{r.total_ratio:.1f}x",
            },
        )
        for r in result.rows
    ]
    return harness.format_table(
        f"Table 1 - crawl job, {result.records} URLInfo records "
        f"(speedups vs SEQ-custom)",
        headers,
        rows,
    )


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()
