"""Figure 7: single-node scan microbenchmark.

Compares TXT, SEQ, CIF, and RCFile (compressed and uncompressed) on the
synthetic dataset of Section 6.2 (6 strings, 6 integers, 1 map), for
the projections the paper plots: all columns, 1 integer, 1 string,
1 map, and 1 string + 1 map.

Paper shape targets:
- SEQ ~3x faster than TXT (parsing makes TXT CPU-bound),
- CIF 2.5x-95x faster than SEQ on single-column scans (integer best),
- CIF ~25% slower than SEQ when scanning all columns (extra seeks),
- CIF ~38x faster than uncompressed RCFile on the single-integer scan,
  with RCFile reading ~20x more bytes than CIF.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.bench import harness
from repro.core import ColumnInputFormat, write_dataset
from repro.formats.rcfile import RCFileInputFormat, write_rcfile
from repro.formats.sequence_file import SequenceFileInputFormat, write_sequence_file
from repro.formats.text import TextInputFormat, write_text
from repro.sim.metrics import Metrics
from repro.workloads.micro import micro_records, micro_schema

PROJECTIONS = {
    "AllColumns": None,
    "1 Integer": ["int0"],
    "1 String": ["str0"],
    "1 Map": ["attrs"],
    "1 String+1 Map": ["str0", "attrs"],
}


@dataclass
class Fig7Result:
    records: int
    #: seconds per (format, projection); TXT/SEQ have only "AllColumns"
    times: Dict[str, Dict[str, float]] = field(default_factory=dict)
    bytes_read: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def time(self, fmt: str, projection: str = "AllColumns") -> float:
        return self.times[fmt][projection]


def _prepare(fs, records):
    schema = micro_schema()
    write_text(fs, "/fig7/txt", schema, records)
    write_sequence_file(fs, "/fig7/seq", schema, records)
    write_dataset(
        fs, "/fig7/cif", schema, records, split_bytes=harness.MICRO_SPLIT_BYTES
    )
    write_rcfile(
        fs, "/fig7/rc", schema, records,
        row_group_bytes=harness.MICRO_ROW_GROUP,
    )
    write_rcfile(
        fs, "/fig7/rcz", schema, records,
        row_group_bytes=harness.MICRO_ROW_GROUP, codec="zlib",
    )


def run(records: int = 20000) -> Fig7Result:
    fs = harness.single_node_fs()
    data = list(micro_records(records))
    _prepare(fs, data)
    result = Fig7Result(records=records)

    def note(fmt: str, projection: str, metrics: Metrics) -> None:
        result.times.setdefault(fmt, {})[projection] = metrics.task_time
        result.bytes_read.setdefault(fmt, {})[projection] = (
            metrics.total_bytes_read
        )

    # TXT and SEQ scan everything regardless of the projection.
    note("TXT", "AllColumns", harness.scan(fs, TextInputFormat("/fig7/txt")))
    note(
        "SEQ",
        "AllColumns",
        harness.scan(fs, SequenceFileInputFormat("/fig7/seq")),
    )
    for name, columns in PROJECTIONS.items():
        note(
            "CIF",
            name,
            harness.scan(
                fs, ColumnInputFormat("/fig7/cif", columns=columns, lazy=False)
            ),
        )
        note(
            "RCFile",
            name,
            harness.scan(fs, RCFileInputFormat("/fig7/rc", columns=columns)),
        )
        note(
            "RCFile-comp",
            name,
            harness.scan(fs, RCFileInputFormat("/fig7/rcz", columns=columns)),
        )
    return result


def format_table(result: Fig7Result) -> str:
    headers = list(PROJECTIONS)
    rows: List[harness.Row] = []
    for fmt, times in result.times.items():
        rows.append(
            harness.Row(
                fmt,
                {h: round(times.get(h, times.get("AllColumns")), 4) for h in headers},
            )
        )
    return harness.format_table(
        f"Figure 7 - scan times (simulated seconds, {result.records} records)",
        headers,
        rows,
    )


def format_chart(result: Fig7Result) -> str:
    from repro.bench.ascii_plot import grouped_bar_chart

    groups = {}
    for projection in PROJECTIONS:
        groups[projection] = {
            fmt: times.get(projection, times["AllColumns"])
            for fmt, times in result.times.items()
        }
    return grouped_bar_chart(
        groups,
        title="Figure 7 - scan time by projection (shorter is better)",
        unit=" s",
    )


def main() -> None:
    result = run()
    print(format_table(result))
    print()
    print(format_chart(result))


if __name__ == "__main__":
    main()
