"""Ablation: sensitivity to ``io.file.buffer.size`` (Section 6.2 remark).

The paper sets the I/O transfer size to 128 KB and notes "Repeating the
experiment with 4KB and 1MB produced similar results and are omitted."
This ablation runs the Figure 7 single-integer and all-columns scans at
three readahead sizes (the paper's 4 KB / 128 KB / 1 MB, scaled) and
checks the conclusions are robust:

- CIF's single-column advantage over SEQ holds at every buffer size,
- RCFile's I/O elimination *is* buffer-sensitive (bigger readahead
  drags in more of the row group for narrow projections) — the very
  coupling CIF avoids by storing columns in separate files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.bench import harness
from repro.core import ColumnInputFormat, write_dataset
from repro.formats.rcfile import RCFileInputFormat, write_rcfile
from repro.formats.sequence_file import SequenceFileInputFormat, write_sequence_file
from repro.workloads.micro import micro_records, micro_schema

#: The paper's 4 KB / 128 KB / 1 MB sweep, scaled like MICRO_IO_BUFFER.
BUFFER_SIZES = {
    "4K-equivalent": harness.MICRO_IO_BUFFER // 32,
    "128K-equivalent": harness.MICRO_IO_BUFFER,
    "1M-equivalent": harness.MICRO_IO_BUFFER * 8,
}


@dataclass
class BufferAblationResult:
    records: int
    #: times[buffer_label][format] for the single-integer scan
    single_int: Dict[str, Dict[str, float]] = field(default_factory=dict)
    all_columns: Dict[str, Dict[str, float]] = field(default_factory=dict)
    rcfile_bytes_single_int: Dict[str, int] = field(default_factory=dict)


def run(records: int = 8000) -> BufferAblationResult:
    result = BufferAblationResult(records=records)
    schema = micro_schema()
    data = list(micro_records(records))
    for label, buffer_size in BUFFER_SIZES.items():
        fs = harness.single_node_fs(io_buffer=buffer_size)
        write_sequence_file(fs, "/ba/seq", schema, data)
        write_dataset(
            fs, "/ba/cif", schema, data, split_bytes=harness.MICRO_SPLIT_BYTES
        )
        write_rcfile(
            fs, "/ba/rc", schema, data, row_group_bytes=harness.MICRO_ROW_GROUP
        )
        seq = harness.scan(fs, SequenceFileInputFormat("/ba/seq"))
        cif_int = harness.scan(
            fs, ColumnInputFormat("/ba/cif", columns=["int0"], lazy=False)
        )
        rc_int = harness.scan(fs, RCFileInputFormat("/ba/rc", columns=["int0"]))
        cif_all = harness.scan(fs, ColumnInputFormat("/ba/cif", lazy=False))
        rc_all = harness.scan(fs, RCFileInputFormat("/ba/rc"))
        result.single_int[label] = {
            "SEQ": seq.task_time,
            "CIF": cif_int.task_time,
            "RCFile": rc_int.task_time,
        }
        result.all_columns[label] = {
            "SEQ": seq.task_time,
            "CIF": cif_all.task_time,
            "RCFile": rc_all.task_time,
        }
        result.rcfile_bytes_single_int[label] = rc_int.total_bytes_read
    return result


def format_table(result: BufferAblationResult) -> str:
    headers = list(BUFFER_SIZES)
    rows = []
    for fmt in ("SEQ", "CIF", "RCFile"):
        rows.append(
            harness.Row(
                f"{fmt} (1 int)",
                {h: round(result.single_int[h][fmt], 4) for h in headers},
            )
        )
    for fmt in ("SEQ", "CIF", "RCFile"):
        rows.append(
            harness.Row(
                f"{fmt} (all)",
                {h: round(result.all_columns[h][fmt], 4) for h in headers},
            )
        )
    rows.append(
        harness.Row(
            "RCFile bytes (1 int)",
            {h: result.rcfile_bytes_single_int[h] for h in headers},
        )
    )
    return harness.format_table(
        f"Ablation - io.file.buffer.size sweep ({result.records} records, "
        "simulated seconds)",
        headers,
        rows,
    )


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()
