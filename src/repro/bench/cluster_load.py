"""Multi-tenant load benchmark: fair-share + preemption vs FIFO.

The acceptance experiment for :mod:`repro.cluster`: draw one seeded
open-loop traffic trace (three tenants, mixed crawl / analytics /
point-query jobs) and run the *same* trace through the cluster manager
twice — once under the hierarchical fair-share policy with preemption,
once under the Hadoop-default FIFO baseline.  Because arrivals, job
inputs and the cost model are all seeded, the two runs differ only in
scheduling policy, so per-tenant latency deltas are attributable to the
policy alone.

The headline number is the interactive tenants' pooled p95 job latency
under FIFO divided by the same under fair share: long batch scans park
on every slot under FIFO and point queries wait behind them, while fair
share's ``preempts`` queue evicts scans the moment an interactive job
arrives.  The paper-shaped claim (asserted by ``tests/test_cluster.py``
and gated in CI) is that fair share cuts interactive p95 to at most
half of FIFO's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.report import ClusterReport, percentile
from repro.cluster.traffic import TrafficProfile, run_traffic, sample_profile

POLICIES = ("fair", "fifo")


@dataclass
class ClusterLoadResult:
    """Both policies' reports over one seeded traffic trace."""

    profile: TrafficProfile
    reports: Dict[str, ClusterReport] = field(default_factory=dict)

    @property
    def interactive_tenants(self) -> List[str]:
        preempting = {
            q.name for q in self.profile.queues if q.preempts
        }
        return sorted(
            t.name for t in self.profile.tenants if t.queue in preempting
        )

    def interactive_p95(self, policy: str) -> float:
        """Pooled p95 latency of every interactive tenant's jobs."""
        report = self.reports[policy]
        pooled = [
            o.latency for o in report.completed
            if o.tenant in self.interactive_tenants
        ]
        return percentile(pooled, 95)

    @property
    def interactive_p95_ratio(self) -> float:
        """FIFO p95 over fair p95 — higher = fair share's advantage."""
        fair = self.interactive_p95("fair")
        fifo = self.interactive_p95("fifo")
        return fifo / fair if fair > 0 else float("inf")


def run(
    duration: float = 1.0,
    seed: int = 20110401,
    profile: Optional[TrafficProfile] = None,
) -> ClusterLoadResult:
    """Run the sample 3-tenant load under both policies."""
    if profile is None:
        profile = sample_profile()
        profile.duration = duration
        profile.seed = seed
    result = ClusterLoadResult(profile=profile)
    for policy in POLICIES:
        result.reports[policy] = run_traffic(profile, policy=policy)
    return result


def format_table(result: ClusterLoadResult) -> str:
    lines = []
    for policy in POLICIES:
        lines.append(result.reports[policy].render())
        lines.append("")
    ratio = result.interactive_p95_ratio
    tenants = ", ".join(result.interactive_tenants) or "(none)"
    lines.append(
        f"interactive p95 ({tenants}): fifo/fair = {ratio:.1f}x"
    )
    return "\n".join(lines)
