"""Fault-recovery benchmark: kill a node mid-trace, measure the tax.

The acceptance experiment for the cluster's fault-tolerance layer:
draw one seeded traffic trace (the same 3-tenant mix as
:mod:`repro.bench.cluster_load`) and run it twice under the fair-share
policy with speculative execution enabled — once fault-free, once with
a single ``kill_node`` fired mid-run.  Because the trace, the cost
model and the fault plan are all seeded, every delta between the two
reports is attributable to the recovery machinery: map-output loss
re-execution through the shuffle window, retry backoff, straggler
cloning onto the surviving nodes.

The headline numbers are the makespan and interactive-p95 overhead
ratios (faulted over fault-free) plus the exact recovery counters —
``map_output_losses`` must be non-zero or the kill missed the shuffle
window and the scenario is not exercising re-execution at all (the
shape test below and ``repro bench check`` both gate on it).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.cluster.report import ClusterReport, percentile
from repro.cluster.traffic import TrafficProfile, run_traffic, sample_profile
from repro.faults import FaultEvent, FaultPlan

VARIANTS = ("faultfree", "faulted")


@dataclass
class ClusterRecoveryResult:
    """Fault-free vs faulted reports over one seeded traffic trace."""

    profile: TrafficProfile
    plan: FaultPlan
    reports: Dict[str, ClusterReport] = field(default_factory=dict)

    @property
    def interactive_tenants(self) -> List[str]:
        preempting = {
            q.name for q in self.profile.queues if q.preempts
        }
        return sorted(
            t.name for t in self.profile.tenants if t.queue in preempting
        )

    def interactive_p95(self, variant: str) -> float:
        """Pooled p95 latency of every interactive tenant's jobs."""
        report = self.reports[variant]
        pooled = [
            o.latency for o in report.completed
            if o.tenant in self.interactive_tenants
        ]
        return percentile(pooled, 95)

    @property
    def makespan_overhead(self) -> float:
        """Faulted makespan over fault-free — 1.0 = free recovery."""
        base = self.reports["faultfree"].makespan
        return self.reports["faulted"].makespan / base if base else 1.0

    @property
    def interactive_p95_overhead(self) -> float:
        base = self.interactive_p95("faultfree")
        faulted = self.interactive_p95("faulted")
        return faulted / base if base > 0 else 1.0


def run(
    duration: float = 1.0,
    seed: int = 20110401,
    kill_time: float = 0.35,
    kill_node: int = 1,
    profile: Optional[TrafficProfile] = None,
) -> ClusterRecoveryResult:
    """Run the sample load fault-free and with one mid-run node kill."""
    if profile is None:
        profile = sample_profile()
        profile.duration = duration
        profile.seed = seed
    profile.speculation = replace(profile.speculation, enabled=True)
    plan = FaultPlan(
        [FaultEvent("kill_node", node=kill_node, at_time=kill_time)],
        seed=seed,
    )
    result = ClusterRecoveryResult(profile=profile, plan=plan)
    result.reports["faultfree"] = run_traffic(profile, policy="fair")
    result.reports["faulted"] = run_traffic(
        profile, policy="fair", faults=plan,
    )
    return result


def format_table(result: ClusterRecoveryResult) -> str:
    lines = []
    for variant in VARIANTS:
        lines.append(f"== {variant} ==")
        lines.append(result.reports[variant].render())
        lines.append("")
    faulted = result.reports["faulted"]
    tenants = ", ".join(result.interactive_tenants) or "(none)"
    lines.append(
        f"makespan overhead (faulted/faultfree) = "
        f"{result.makespan_overhead:.2f}x"
    )
    lines.append(
        f"interactive p95 overhead ({tenants}) = "
        f"{result.interactive_p95_overhead:.2f}x"
    )
    lines.append(
        f"recovery: {faulted.map_output_losses} map output(s) lost and "
        f"re-executed, {faulted.speculative_attempts} speculative "
        f"attempt(s)"
    )
    return "\n".join(lines)
