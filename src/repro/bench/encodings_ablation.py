"""Ablation: per-column lightweight encodings (Section 3.3 / 5.3).

The paper's CIF variants in Table 1 all choose a layout for the
*metadata* column; this ablation sweeps the full per-column design
space the library offers on a log-shaped dataset where each encoding
has a natural target:

- ``delta``  on the monotone ``ts`` timestamp column,
- ``rle``    on the low-cardinality ``level`` column,
- ``dcsl``   on the map-typed ``headers`` column,
- plus plain, skip-list and LZO blocks for comparison.

Reported per layout: the column's file size and the simulated time of a
full scan and of a 5%-selectivity lazy scan.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.bench import harness
from repro.core import ColumnInputFormat, ColumnSpec, write_dataset
from repro.core.cof import split_dirs_of
from repro.serde.record import Record
from repro.serde.schema import Schema

#: column -> candidate layouts swept for it
SWEEPS: Dict[str, List[ColumnSpec]] = {
    "ts": [ColumnSpec("plain"), ColumnSpec("delta"), ColumnSpec("skiplist")],
    "level": [ColumnSpec("plain"), ColumnSpec("rle"),
              ColumnSpec("cblock", codec="lzo", block_bytes=4096)],
    "headers": [ColumnSpec("plain"), ColumnSpec("dcsl"),
                ColumnSpec("cblock", codec="lzo", block_bytes=4096)],
}


def event_schema() -> Schema:
    return Schema.record(
        "Event",
        [
            ("ts", Schema.time()),
            ("level", Schema.string()),
            ("headers", Schema.map(Schema.string())),
            ("message", Schema.string()),
        ],
    )


def event_records(n: int, seed: int = 33) -> List[Record]:
    rng = random.Random(seed)
    schema = event_schema()
    keys = [f"h{k}" for k in range(12)]
    out = []
    ts = 1_600_000_000
    for i in range(n):
        ts += rng.randint(1, 40)
        out.append(Record(schema, {
            "ts": ts,
            "level": rng.choices(
                ["INFO", "WARN", "ERROR"], weights=[90, 8, 2]
            )[0],
            "headers": {
                k: f"v{rng.randint(0, 30)}"
                for k in rng.sample(keys, rng.randint(4, 8))
            },
            "message": f"event {i} " + "x" * rng.randint(10, 60),
        }))
    return out


@dataclass
class EncodingRow:
    column: str
    layout: str
    file_bytes: int
    full_scan: float
    selective_scan: float


@dataclass
class EncodingsResult:
    records: int
    rows: List[EncodingRow] = field(default_factory=list)

    def row(self, column: str, layout: str) -> EncodingRow:
        return next(
            r for r in self.rows if r.column == column and r.layout == layout
        )


def _column_bytes(fs, dataset: str, column: str) -> int:
    return sum(
        fs.file_length(f"{split_dir}/{column}")
        for split_dir in split_dirs_of(fs, dataset)
    )


def run(records: int = 8000) -> EncodingsResult:
    data = event_records(records)
    schema = event_schema()
    result = EncodingsResult(records=records)
    for column, specs in SWEEPS.items():
        for spec in specs:
            fs = harness.single_node_fs()
            write_dataset(
                fs, "/enc", schema, data,
                specs={column: spec},
                split_bytes=harness.MICRO_SPLIT_BYTES,
            )
            full = harness.scan(
                fs, ColumnInputFormat("/enc", columns=[column], lazy=False)
            )
            # Selective lazy scan: touch the column for ~5% of records.
            fmt = ColumnInputFormat("/enc", columns=["ts", column], lazy=True)
            ctx = harness.make_context(fs)
            for split in fmt.get_splits(fs, fs.cluster):
                for i, (_, record) in enumerate(fmt.open_reader(fs, split, ctx)):
                    if i % 20 == 0:
                        record.get(column)
            label = spec.format + (
                f"-{spec.codec}" if spec.format == "cblock" else ""
            )
            result.rows.append(EncodingRow(
                column=column,
                layout=label,
                file_bytes=_column_bytes(fs, "/enc", column),
                full_scan=full.task_time,
                selective_scan=ctx.metrics.task_time,
            ))
    return result


def format_table(result: EncodingsResult) -> str:
    headers = ["File bytes", "Full scan (ms)", "5% lazy scan (ms)"]
    rows = [
        harness.Row(
            f"{r.column} / {r.layout}",
            {
                "File bytes": r.file_bytes,
                "Full scan (ms)": round(r.full_scan * 1e3, 3),
                "5% lazy scan (ms)": round(r.selective_scan * 1e3, 3),
            },
        )
        for r in result.rows
    ]
    return harness.format_table(
        f"Ablation - per-column encodings ({result.records} records)",
        headers,
        rows,
    )


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()
