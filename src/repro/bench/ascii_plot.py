"""Terminal plotting for the figure experiments.

The paper's figures are line and bar charts; these helpers render the
same series as ASCII so ``python -m repro experiment fig8`` (etc.) can
show the curve shapes, not just the numbers.  No plotting dependency is
available offline, and the shapes — crossovers, plateaus, orderings —
are exactly what the reproduction targets.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

_MARKERS = "*o+x#@%&"


def _scale(value: float, lo: float, hi: float, size: int) -> int:
    if hi <= lo:
        return 0
    position = (value - lo) / (hi - lo)
    return min(size - 1, max(0, round(position * (size - 1))))


def line_chart(
    series: Dict[str, Dict[float, float]],
    title: str = "",
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Plot ``label -> {x: y}`` series on one shared-axes ASCII grid."""
    if not series:
        raise ValueError("no series to plot")
    xs = sorted({x for points in series.values() for x in points})
    ys = [y for points in series.values() for y in points.values()]
    lo_x, hi_x = min(xs), max(xs)
    lo_y, hi_y = min(min(ys), 0.0), max(ys)
    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    for index, (label, points) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        previous = None
        for x in sorted(points):
            col = _scale(x, lo_x, hi_x, width)
            row = height - 1 - _scale(points[x], lo_y, hi_y, height)
            if previous is not None:
                # Straight-line interpolation between adjacent points.
                prev_col, prev_row = previous
                steps = max(abs(col - prev_col), abs(row - prev_row), 1)
                for step in range(1, steps):
                    c = prev_col + (col - prev_col) * step // steps
                    r = prev_row + (row - prev_row) * step // steps
                    if grid[r][c] == " ":
                        grid[r][c] = "."
            grid[row][col] = marker
            previous = (col, row)

    lines = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(y_label)
    top = f"{hi_y:,.6g}"
    bottom = f"{lo_y:,.6g}"
    gutter = max(len(top), len(bottom)) + 1
    for r, row in enumerate(grid):
        if r == 0:
            prefix = top.rjust(gutter)
        elif r == height - 1:
            prefix = bottom.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(prefix + "|" + "".join(row))
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = f"{lo_x:,.6g}".ljust(width - 8) + f"{hi_x:,.6g}"
    lines.append(" " * (gutter + 1) + x_axis + ("  " + x_label if x_label else ""))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}"
        for i, label in enumerate(series)
    )
    lines.append(" " * (gutter + 1) + legend)
    return "\n".join(lines)


def bar_chart(
    values: Dict[str, float],
    title: str = "",
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bars for ``label -> value`` (e.g. Figure 7's groups)."""
    if not values:
        raise ValueError("no bars to plot")
    peak = max(values.values())
    label_width = max(len(label) for label in values)
    lines = [title] if title else []
    for label, value in values.items():
        length = 0 if value <= 0 else max(1, _scale(value, 0, peak, width) + 1)
        bar = "#" * length
        lines.append(
            f"{label.ljust(label_width)} |{bar.ljust(width)} "
            f"{value:,.4g}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Dict[str, Dict[str, float]],
    title: str = "",
    width: int = 40,
    unit: str = "",
) -> str:
    """Bars grouped the way Figures 7/9/11 group them (by projection)."""
    lines = [title] if title else []
    peak = max(
        value for bars in groups.values() for value in bars.values()
    )
    label_width = max(len(label) for bars in groups.values() for label in bars)
    for group, bars in groups.items():
        lines.append(f"{group}:")
        for label, value in bars.items():
            bar = "#" * (_scale(value, 0, peak, width) + 1)
            lines.append(
                f"  {label.ljust(label_width)} |{bar.ljust(width)} "
                f"{value:,.4g}{unit}"
            )
    return "\n".join(lines)


def series_from_rows(rows: Sequence, x_of, y_of) -> Dict[float, float]:
    """Helper to build a series dict from arbitrary row objects."""
    return {x_of(row): y_of(row) for row in rows}
